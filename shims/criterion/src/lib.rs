//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace wires
//! `criterion` to this shim. It keeps the API the bench targets use
//! (`criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `bench_function`, `BenchmarkId`, `Throughput`, `sample_size`) and runs
//! a simple wall-clock measurement loop: warm up once, time a fixed batch,
//! print mean time per iteration. No statistics, plots, or baselines —
//! enough to keep `cargo bench` working and the numbers comparable
//! run-to-run on the same machine.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (accepted, reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Passed to the closure given to `bench_function`; `iter` runs and
/// times the workload.
pub struct Bencher {
    iters: u64,
    nanos: u128,
}

impl Bencher {
    /// Times `routine` over a fixed batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then the measured batch.
        std_black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.nanos = start.elapsed().as_nanos();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the measured batch size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Records the per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            nanos: 0,
        };
        f(&mut b);
        let per_iter = b.nanos as f64 / b.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:.1} Melem/s", n as f64 / per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if per_iter > 0.0 => {
                format!(
                    "  {:.1} MiB/s",
                    n as f64 / per_iter * 1e9 / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:.3} us/iter ({} iters){}",
            self.name,
            id.id,
            per_iter / 1e3,
            b.iters,
            rate
        );
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_function(BenchmarkId::new("sum", 4), |b| {
            b.iter(|| (0u64..4).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(shim_group, sample_bench);

    #[test]
    fn harness_runs() {
        shim_group();
    }
}

//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace wires
//! `rand` to this shim via a path dependency. It implements exactly the
//! surface the workspace uses — `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen` / `Rng::gen_range` — on top of a splitmix64-seeded
//! xoshiro256** generator, which is more than good enough for the
//! statistical assertions in `skadi-dcsim`'s seed tests (uniformity of
//! Zipf theta=0 buckets, exponential sample means, seed divergence).
//!
//! Determinism is part of the contract: the same seed always yields the
//! same stream on every platform, which the simulator's reproducibility
//! tests rely on.

/// Core trait: a source of random 64-bit words plus typed helpers.
pub trait Rng {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Generates a value of type `T` from the full distribution
    /// (`Standard` in real rand).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value inside `range` (half-open).
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Seeding constructor trait (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Full-range sampling for primitive types (rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform sampling over a half-open range (rand's `SampleRange`).
pub trait UniformRange {
    type Output;
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Maps a raw word into `[0, width)` without modulo bias (Lemire's
/// multiply-shift; the residual bias of width/2^64 is far below anything
/// the seed tests can detect).
fn scale_u64(word: u64, width: u64) -> u64 {
    ((word as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as i128 - self.start as i128) as u64;
                let off = scale_u64(rng.next_u64(), width);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = scale_u64(rng.next_u64(), width + 1);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u: f64 = rng.gen();
        self.start + u * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator standing in for rand's `StdRng`.
    ///
    /// xoshiro256** state, seeded by four rounds of splitmix64 so that
    /// nearby integer seeds produce uncorrelated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5u64..17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(4);
        let mut counts = [0u64; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.1, "max {max} min {min}");
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace wires
//! `proptest` to this shim. It keeps the macro surface the tests use —
//! `proptest! { fn name(x in strategy) { .. } }`, `prop_assert!`,
//! `prop_assert_eq!`, `ProptestConfig::with_cases`, `any::<T>()`,
//! `prop::collection::vec`, `prop::option::of`, string-regex strategies —
//! but runs generate-and-check only: no shrinking, no persisted failure
//! regressions. Inputs are derived deterministically from the test's
//! module path and name, so a failing case reproduces on every run.

pub mod test_runner {
    /// Per-test configuration (subset of proptest's `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator feeding all strategies.
    ///
    /// splitmix64-seeded xoshiro256++; the seed is a hash of the test
    /// name, so every test sees its own stable stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test's full path).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives the base seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        /// Seeds from a 64-bit value.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform integer in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator (proptest's `Strategy`, minus shrinking).
    pub trait Strategy {
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy yielding a constant.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    ((self.start as i128) + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128) as u64;
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    ((lo as i128) + rng.below(width + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (core::ops::Range {
                start: self.start as f64,
                end: self.end as f64,
            })
            .generate(rng) as f32
        }
    }

    /// String strategies from a regex-like pattern.
    ///
    /// Supports the subset the tests use: literal characters, character
    /// classes (`[a-z0-9_]`), and quantifiers `{n}`, `{m,n}`, `?`, `*`,
    /// `+` (unbounded forms capped at 8 repeats). Anything fancier is
    /// treated as literal text.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a char class or a (possibly escaped) literal.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or(chars.len() - 1);
                let class = expand_class(&chars[i + 1..close]);
                i = close + 1;
                class
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or(chars.len() - 1);
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().unwrap_or(0),
                        n.trim().parse().unwrap_or(8usize),
                    ),
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };
            let reps = if hi > lo {
                lo + rng.below((hi - lo + 1) as u64) as usize
            } else {
                lo
            };
            if alphabet.is_empty() {
                continue;
            }
            for _ in 0..reps {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (a, b) = (body[i] as u32, body[i + 2] as u32);
                for c in a..=b {
                    if let Some(c) = char::from_u32(c) {
                        out.push(c);
                    }
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        out
    }

    macro_rules! impl_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types that have a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated text debuggable.
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('?')
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-balanced values; full bit patterns would yield
            // NaNs that break ordinary assertions.
            (rng.unit() - 0.5) * 2.0e9
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a vec-length specification.
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `Vec` strategy with lengths drawn from `size` (exact or half-open).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty size range for vec strategy");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option` values; `None` with probability 1/4
    /// (mirroring proptest's default weighting toward `Some`).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps a strategy to sometimes yield `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a plain function running `cases` deterministic iterations.
/// Callers attach `#[test]` themselves (as with real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Property assertion; panics (failing the test) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn exact_vec_length(v in prop::collection::vec(any::<bool>(), 6)) {
            prop_assert_eq!(v.len(), 6);
        }

        #[test]
        fn regex_class_with_counts(s in "[a-z0-9]{2,5}") {
            prop_assert!((2..=5).contains(&s.chars().count()), "bad len: {s:?}");
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_cases_apply(pair in (0u64..4, 10u64..20)) {
            prop_assert!(pair.0 < 4 && pair.1 >= 10);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let s = crate::collection::vec(0u64..100, 1..50);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}

//! Offline stand-in for the `bytes` crate (the subset this workspace uses).
//!
//! [`Bytes`] is a cheaply cloneable, immutable byte buffer backed by an
//! `Arc<[u8]>`. [`Bytes::slice`] returns a view that *aliases* the parent's
//! storage — same allocation, offset pointer — which the arrow crate's
//! zero-copy IPC decode path depends on (its tests assert pointer identity
//! between a slice and `base + offset`).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer with O(1) clone and slice.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Wraps a static slice (copies into shared storage; semantics match).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_vec(bytes.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            offset: 0,
            len,
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a sub-buffer sharing this buffer's storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn slice_aliases_parent_storage() {
        let base = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let sub = base.slice(3..7);
        assert_eq!(sub.as_ref(), &[3, 4, 5, 6]);
        let base_ptr = base.as_ref().as_ptr() as usize;
        let sub_ptr = sub.as_ref().as_ptr() as usize;
        assert_eq!(sub_ptr, base_ptr + 3, "slice must alias, not copy");
    }

    #[test]
    fn slice_of_slice_composes_offsets() {
        let base = Bytes::from((0u8..=99).collect::<Vec<_>>());
        let a = base.slice(10..90);
        let b = a.slice(5..15);
        assert_eq!(b.as_ref(), (15u8..25).collect::<Vec<_>>().as_slice());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8, 2, 3]).slice(1..5);
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(
            Bytes::from(vec![1u8, 2]),
            Bytes::from(vec![0u8, 1, 2]).slice(1..3)
        );
    }
}

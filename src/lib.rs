//! Workspace umbrella crate hosting the cross-crate integration tests and
//! runnable examples. The public API lives in the [`skadi`] crate.

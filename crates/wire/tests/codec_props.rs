//! Property tests for the wire codec: every packet type round-trips
//! through a frame, and arbitrary junk bytes fed to the decoder either
//! decode to a valid packet or error — never panic, never over-read.

use proptest::prelude::*;

use bytes::Bytes;
use skadi_wire::codec::{decode_frame, encode_packet, DEFAULT_MAX_FRAME};
use skadi_wire::packet::Packet;

fn assert_round_trip(p: Packet) {
    let frame = encode_packet(&p);
    let (back, used) = decode_frame(&frame, DEFAULT_MAX_FRAME)
        .unwrap_or_else(|e| panic!("{} did not decode: {e}", p.name()));
    assert_eq!(back, p);
    assert_eq!(used, frame.len());
    // With trailing bytes appended, the decoder consumes exactly one
    // frame and leaves the rest.
    let mut extended = frame.clone();
    extended.extend_from_slice(&[0xAB; 7]);
    let (back2, used2) = decode_frame(&extended, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(back2, back);
    assert_eq!(used2, frame.len());
}

proptest! {
    /// ClientHello round-trips for any version/capabilities/name.
    #[test]
    fn round_trip_client_hello(
        version in proptest::arbitrary::any::<u16>(),
        capabilities in proptest::arbitrary::any::<u32>(),
        client_name in "[ -~]*",
    ) {
        assert_round_trip(Packet::ClientHello { version, capabilities, client_name });
    }

    /// ServerHello round-trips for any version/capabilities/name.
    #[test]
    fn round_trip_server_hello(
        version in proptest::arbitrary::any::<u16>(),
        capabilities in proptest::arbitrary::any::<u32>(),
        server_name in "[ -~]*",
    ) {
        assert_round_trip(Packet::ServerHello { version, capabilities, server_name });
    }

    /// Query round-trips for any id and SQL text, including quotes and
    /// non-ASCII.
    #[test]
    fn round_trip_query(
        id in proptest::arbitrary::any::<u64>(),
        sql in "[ -~]*",
        suffix in prop::collection::vec(proptest::arbitrary::any::<char>(), 0..8),
    ) {
        let sql = format!("{sql}{}", suffix.into_iter().collect::<String>());
        assert_round_trip(Packet::Query { id, sql });
    }

    /// Data round-trips for any payload bytes.
    #[test]
    fn round_trip_data(
        query_id in proptest::arbitrary::any::<u64>(),
        payload in prop::collection::vec(proptest::arbitrary::any::<u8>(), 0..256),
    ) {
        assert_round_trip(Packet::Data { query_id, payload: Bytes::from(payload) });
    }

    /// Progress round-trips for any counters.
    #[test]
    fn round_trip_progress(
        query_id in proptest::arbitrary::any::<u64>(),
        rows in proptest::arbitrary::any::<u64>(),
        bytes in proptest::arbitrary::any::<u64>(),
    ) {
        assert_round_trip(Packet::Progress { query_id, rows, bytes });
    }

    /// Exception round-trips for any code and message.
    #[test]
    fn round_trip_exception(
        query_id in proptest::arbitrary::any::<u64>(),
        code in proptest::arbitrary::any::<u16>(),
        message in "[ -~]*",
    ) {
        assert_round_trip(Packet::Exception { query_id, code, message });
    }

    /// EndOfStream round-trips for any chunk count.
    #[test]
    fn round_trip_end_of_stream(
        query_id in proptest::arbitrary::any::<u64>(),
        chunks in proptest::arbitrary::any::<u32>(),
    ) {
        assert_round_trip(Packet::EndOfStream { query_id, chunks });
    }

    /// Arbitrary junk either decodes to some packet or errors; the call
    /// never panics (a panic fails this test) and, on success, consumes
    /// no more bytes than it was given.
    #[test]
    fn junk_bytes_never_panic(
        junk in prop::collection::vec(proptest::arbitrary::any::<u8>(), 0..512),
    ) {
        if let Ok((packet, used)) = decode_frame(&junk, DEFAULT_MAX_FRAME) {
            prop_assert!(used <= junk.len());
            // Whatever decoded must re-encode to a decodable frame.
            let re = encode_packet(&packet);
            let (again, _) = decode_frame(&re, DEFAULT_MAX_FRAME).expect("re-encode decodes");
            prop_assert_eq!(again, packet);
        }
    }

    /// Every proper prefix of a valid frame is an error, not a panic.
    #[test]
    fn truncated_frames_error(
        id in proptest::arbitrary::any::<u64>(),
        sql in "[ -~]{1,64}",
        keep in proptest::arbitrary::any::<u16>(),
    ) {
        let frame = encode_packet(&Packet::Query { id, sql });
        let cut = (keep as usize) % frame.len();
        prop_assert!(decode_frame(&frame[..cut], DEFAULT_MAX_FRAME).is_err());
    }

    /// Flipping any single byte of a valid frame never panics the
    /// decoder (it may still decode — e.g. a flipped id bit — but most
    /// flips corrupt the structure).
    #[test]
    fn single_byte_corruption_never_panics(
        code in proptest::arbitrary::any::<u16>(),
        message in "[ -~]{0,48}",
        pos in proptest::arbitrary::any::<u16>(),
        xor in 1u8..=255,
    ) {
        let mut frame = encode_packet(&Packet::Exception { query_id: 9, code, message });
        let at = (pos as usize) % frame.len();
        frame[at] ^= xor;
        let _ = decode_frame(&frame, DEFAULT_MAX_FRAME);
    }
}

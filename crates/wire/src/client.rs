//! A blocking protocol client over any `Read + Write` stream.

use std::io::{Read, Write};

use skadi_arrow::batch::RecordBatch;
use skadi_arrow::{compression, ipc};

use crate::codec::{read_packet, write_packet, WireError, DEFAULT_MAX_FRAME};
use crate::packet::{Packet, CAP_COMPRESSION, CAP_PROGRESS, PROTOCOL_VERSION};

/// One successful query's reassembled result.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// All data blocks concatenated, in stream order.
    pub batch: RecordBatch,
    /// Number of data blocks the server sent (>= 1).
    pub chunks: u32,
    /// Number of progress events observed mid-stream.
    pub progress_events: usize,
    /// Total encoded payload bytes received.
    pub payload_bytes: u64,
}

/// A connected, handshaken client session.
///
/// Works over any byte stream: a `TcpStream` against `skadi-cli serve`,
/// or one end of [`crate::duplex`] against an in-process server (the
/// deterministic test path). The client is strictly request-response:
/// one query in flight at a time.
pub struct Client<S: Read + Write> {
    stream: S,
    max_frame: usize,
    next_id: u64,
    /// The server's advertised name.
    pub server_name: String,
    /// The negotiated capability bits.
    pub capabilities: u32,
}

impl<S: Read + Write> Client<S> {
    /// Performs the handshake with default capabilities
    /// ([`CAP_PROGRESS`] | [`CAP_COMPRESSION`]) and frame bound.
    pub fn connect(stream: S, client_name: &str) -> Result<Self, WireError> {
        Client::connect_with(
            stream,
            client_name,
            CAP_PROGRESS | CAP_COMPRESSION,
            DEFAULT_MAX_FRAME,
        )
    }

    /// Performs the handshake advertising the given capability set.
    pub fn connect_with(
        mut stream: S,
        client_name: &str,
        capabilities: u32,
        max_frame: usize,
    ) -> Result<Self, WireError> {
        write_packet(
            &mut stream,
            &Packet::ClientHello {
                version: PROTOCOL_VERSION,
                capabilities,
                client_name: client_name.to_string(),
            },
        )?;
        match read_packet(&mut stream, max_frame)? {
            Packet::ServerHello {
                version,
                capabilities,
                server_name,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(WireError::VersionMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    });
                }
                Ok(Client {
                    stream,
                    max_frame,
                    next_id: 1,
                    server_name,
                    capabilities,
                })
            }
            Packet::Exception { code, message, .. } => Err(WireError::Server { code, message }),
            other => Err(WireError::Corrupt(format!(
                "expected ServerHello, got {}",
                other.name()
            ))),
        }
    }

    /// Runs one SQL statement, blocking until the full result streamed
    /// in (or the server answered with an exception, surfaced as
    /// [`WireError::Server`]).
    pub fn query(&mut self, sql: &str) -> Result<QueryResult, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        write_packet(
            &mut self.stream,
            &Packet::Query {
                id,
                sql: sql.to_string(),
            },
        )?;

        let mut blocks: Vec<RecordBatch> = Vec::new();
        let mut progress_events = 0;
        let mut payload_bytes = 0u64;
        loop {
            match read_packet(&mut self.stream, self.max_frame)? {
                Packet::Data { query_id, payload } => {
                    self.check_id(query_id, id)?;
                    payload_bytes += payload.len() as u64;
                    // Compressed payloads announce themselves by magic;
                    // plain frames keep the zero-copy decode path.
                    let frame = if compression::is_compressed(&payload) {
                        bytes::Bytes::from(
                            compression::decompress(&payload)
                                .map_err(|e| WireError::Arrow(e.to_string()))?,
                        )
                    } else {
                        payload
                    };
                    let batch = ipc::decode(frame).map_err(|e| WireError::Arrow(e.to_string()))?;
                    blocks.push(batch);
                }
                Packet::Progress { query_id, .. } => {
                    self.check_id(query_id, id)?;
                    progress_events += 1;
                }
                Packet::Exception {
                    query_id,
                    code,
                    message,
                } => {
                    self.check_id(query_id, id)?;
                    return Err(WireError::Server { code, message });
                }
                Packet::EndOfStream { query_id, chunks } => {
                    self.check_id(query_id, id)?;
                    if chunks as usize != blocks.len() {
                        return Err(WireError::Corrupt(format!(
                            "end of stream claims {chunks} chunks, received {}",
                            blocks.len()
                        )));
                    }
                    if blocks.is_empty() {
                        return Err(WireError::Corrupt(
                            "result stream carried no data blocks".into(),
                        ));
                    }
                    // A single block passes through untouched (zero-copy
                    // from the frame), so its re-encoding is bit-for-bit
                    // the server's payload.
                    let batch = if blocks.len() == 1 {
                        blocks.pop().expect("one block")
                    } else {
                        RecordBatch::concat(&blocks).map_err(|e| WireError::Arrow(e.to_string()))?
                    };
                    return Ok(QueryResult {
                        batch,
                        chunks,
                        progress_events,
                        payload_bytes,
                    });
                }
                other => {
                    return Err(WireError::Corrupt(format!(
                        "unexpected {} inside a result stream",
                        other.name()
                    )))
                }
            }
        }
    }

    fn check_id(&self, got: u64, want: u64) -> Result<(), WireError> {
        if got != want {
            return Err(WireError::Corrupt(format!(
                "response for query {got} while query {want} is in flight"
            )));
        }
        Ok(())
    }

    /// Consumes the client, returning the underlying stream.
    pub fn into_inner(self) -> S {
        self.stream
    }
}

//! Framing and packet encode/decode.
//!
//! A frame is `len: u32 | tag: u8 | body`, all little-endian; `len`
//! counts the tag plus the body. Decoding is defensive end to end: every
//! claimed length is validated against the bytes actually present
//! *before* any allocation, so junk input — truncated frames, absurd
//! length prefixes, corrupt string lengths — yields a [`WireError`],
//! never a panic or an unbounded allocation.

use std::fmt;
use std::io::{Read, Write};

use bytes::Bytes;

use crate::packet::Packet;

/// Default upper bound on one frame's length (tag + body), 16 MiB.
/// Result blocks are chunked well below this by the server.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// Errors from the codec, transports, and client.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The bytes do not form a valid frame/packet.
    Corrupt(String),
    /// A frame's length prefix exceeds the negotiated maximum. The
    /// connection cannot be resynchronized and must be dropped.
    TooLarge {
        /// Claimed frame length.
        len: usize,
        /// The configured bound.
        max: usize,
    },
    /// Handshake failed: the peer speaks a different protocol version.
    VersionMismatch {
        /// Our version.
        ours: u16,
        /// The peer's version.
        theirs: u16,
    },
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The server answered with an [`Packet::Exception`].
    Server {
        /// Machine-readable code ([`crate::packet::code`]).
        code: u16,
        /// Human-readable message.
        message: String,
    },
    /// A data block's payload failed to decode as a record batch.
    Arrow(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
            WireError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            WireError::Closed => write!(f, "connection closed"),
            WireError::Server { code, message } => {
                write!(f, "server exception (code {code}): {message}")
            }
            WireError::Arrow(msg) => write!(f, "payload decode: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Bounds-checked reader over a frame body.
struct BodyCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Corrupt(format!(
                "truncated body: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// A length-prefixed UTF-8 string. The claimed length is validated
    /// against the remaining body before anything is copied.
    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| WireError::Corrupt("string is not UTF-8".into()))
    }

    /// A length-prefixed opaque byte payload.
    fn blob(&mut self) -> Result<Bytes, WireError> {
        let len = self.u32()? as usize;
        Ok(Bytes::from(self.take(len)?.to_vec()))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after packet body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes one packet as a complete frame (length prefix included).
pub fn encode_packet(p: &Packet) -> Vec<u8> {
    let mut body = Vec::new();
    match p {
        Packet::ClientHello {
            version,
            capabilities,
            client_name,
        } => {
            body.extend_from_slice(&version.to_le_bytes());
            body.extend_from_slice(&capabilities.to_le_bytes());
            put_string(&mut body, client_name);
        }
        Packet::ServerHello {
            version,
            capabilities,
            server_name,
        } => {
            body.extend_from_slice(&version.to_le_bytes());
            body.extend_from_slice(&capabilities.to_le_bytes());
            put_string(&mut body, server_name);
        }
        Packet::Query { id, sql } => {
            body.extend_from_slice(&id.to_le_bytes());
            put_string(&mut body, sql);
        }
        Packet::Data { query_id, payload } => {
            body.extend_from_slice(&query_id.to_le_bytes());
            body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            body.extend_from_slice(payload);
        }
        Packet::Progress {
            query_id,
            rows,
            bytes,
        } => {
            body.extend_from_slice(&query_id.to_le_bytes());
            body.extend_from_slice(&rows.to_le_bytes());
            body.extend_from_slice(&bytes.to_le_bytes());
        }
        Packet::Exception {
            query_id,
            code,
            message,
        } => {
            body.extend_from_slice(&query_id.to_le_bytes());
            body.extend_from_slice(&code.to_le_bytes());
            put_string(&mut body, message);
        }
        Packet::EndOfStream { query_id, chunks } => {
            body.extend_from_slice(&query_id.to_le_bytes());
            body.extend_from_slice(&chunks.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(5 + body.len());
    out.extend_from_slice(&(1 + body.len() as u32).to_le_bytes());
    out.push(p.tag());
    out.extend_from_slice(&body);
    out
}

/// Decodes a tag + body (one frame, length prefix already stripped).
fn decode_body(tag: u8, body: &[u8]) -> Result<Packet, WireError> {
    let mut cur = BodyCursor { buf: body, pos: 0 };
    let packet = match tag {
        1 => Packet::ClientHello {
            version: cur.u16()?,
            capabilities: cur.u32()?,
            client_name: cur.string()?,
        },
        2 => Packet::ServerHello {
            version: cur.u16()?,
            capabilities: cur.u32()?,
            server_name: cur.string()?,
        },
        3 => Packet::Query {
            id: cur.u64()?,
            sql: cur.string()?,
        },
        4 => Packet::Data {
            query_id: cur.u64()?,
            payload: cur.blob()?,
        },
        5 => Packet::Progress {
            query_id: cur.u64()?,
            rows: cur.u64()?,
            bytes: cur.u64()?,
        },
        6 => Packet::Exception {
            query_id: cur.u64()?,
            code: cur.u16()?,
            message: cur.string()?,
        },
        7 => Packet::EndOfStream {
            query_id: cur.u64()?,
            chunks: cur.u32()?,
        },
        other => return Err(WireError::Corrupt(format!("unknown packet tag {other}"))),
    };
    cur.finish()?;
    Ok(packet)
}

/// Decodes the first complete frame in `buf`, returning the packet and
/// the number of bytes consumed. Errors if the buffer holds no complete,
/// valid frame — truncated input is [`WireError::Corrupt`], an oversized
/// length prefix is [`WireError::TooLarge`]. Never panics on any input.
pub fn decode_frame(buf: &[u8], max_frame: usize) -> Result<(Packet, usize), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Corrupt(format!(
            "truncated length prefix: have {} of 4 bytes",
            buf.len()
        )));
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 {
        return Err(WireError::Corrupt("zero-length frame".into()));
    }
    if len > max_frame {
        return Err(WireError::TooLarge {
            len,
            max: max_frame,
        });
    }
    if buf.len() - 4 < len {
        return Err(WireError::Corrupt(format!(
            "truncated frame: length prefix says {len}, have {}",
            buf.len() - 4
        )));
    }
    let packet = decode_body(buf[4], &buf[5..4 + len])?;
    Ok((packet, 4 + len))
}

/// Writes one packet as a frame and flushes.
pub fn write_packet<W: Write>(w: &mut W, p: &Packet) -> Result<(), WireError> {
    w.write_all(&encode_packet(p))?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from the stream. A clean EOF before the first prefix
/// byte is [`WireError::Closed`]; EOF mid-frame is [`WireError::Corrupt`].
/// An oversized length prefix is reported *without* reading (or
/// allocating) the claimed bytes; the caller must drop the connection.
pub fn read_packet<R: Read>(r: &mut R, max_frame: usize) -> Result<Packet, WireError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..])? {
            0 if got == 0 => return Err(WireError::Closed),
            0 => {
                return Err(WireError::Corrupt(format!(
                    "eof inside length prefix after {got} bytes"
                )))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 {
        return Err(WireError::Corrupt("zero-length frame".into()));
    }
    if len > max_frame {
        return Err(WireError::TooLarge {
            len,
            max: max_frame,
        });
    }
    let mut frame = vec![0u8; len];
    r.read_exact(&mut frame).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => {
            WireError::Corrupt(format!("eof inside {len}-byte frame body"))
        }
        _ => WireError::Io(e),
    })?;
    decode_body(frame[0], &frame[1..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{code, CAP_PROGRESS, PROTOCOL_VERSION};

    fn samples() -> Vec<Packet> {
        vec![
            Packet::ClientHello {
                version: PROTOCOL_VERSION,
                capabilities: CAP_PROGRESS,
                client_name: "test-client".into(),
            },
            Packet::ServerHello {
                version: PROTOCOL_VERSION,
                capabilities: 0,
                server_name: "skadi".into(),
            },
            Packet::Query {
                id: 7,
                sql: "SELECT name FROM people WHERE name = 'O''Brien'".into(),
            },
            Packet::Data {
                query_id: 7,
                payload: Bytes::from(vec![1, 2, 3, 255, 0]),
            },
            Packet::Progress {
                query_id: 7,
                rows: 1024,
                bytes: 65536,
            },
            Packet::Exception {
                query_id: 7,
                code: code::SQL,
                message: "unterminated string literal starting at offset 3".into(),
            },
            Packet::EndOfStream {
                query_id: 7,
                chunks: 3,
            },
        ]
    }

    #[test]
    fn round_trip_every_packet_type() {
        for p in samples() {
            let frame = encode_packet(&p);
            let (back, used) = decode_frame(&frame, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(back, p);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn stream_round_trip() {
        let mut buf = Vec::new();
        for p in samples() {
            write_packet(&mut buf, &p).unwrap();
        }
        let mut r = &buf[..];
        for p in samples() {
            assert_eq!(read_packet(&mut r, DEFAULT_MAX_FRAME).unwrap(), p);
        }
        assert!(matches!(
            read_packet(&mut r, DEFAULT_MAX_FRAME),
            Err(WireError::Closed)
        ));
    }

    #[test]
    fn truncation_at_every_length_errors_never_panics() {
        for p in samples() {
            let frame = encode_packet(&p);
            for cut in 0..frame.len() {
                assert!(
                    decode_frame(&frame[..cut], DEFAULT_MAX_FRAME).is_err(),
                    "{} truncated to {cut} bytes decoded",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let frame = u32::MAX.to_le_bytes();
        match decode_frame(&frame, DEFAULT_MAX_FRAME) {
            Err(WireError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, DEFAULT_MAX_FRAME);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Same through the stream path: the reader must report the bound
        // violation without trying to read 4 GiB.
        let mut r = &frame[..];
        assert!(matches!(
            read_packet(&mut r, DEFAULT_MAX_FRAME),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn corrupt_string_length_rejected() {
        // A Query frame whose sql-length field claims more bytes than the
        // body holds.
        let mut frame = encode_packet(&Packet::Query {
            id: 1,
            sql: "SELECT 1".into(),
        });
        // The string length lives right after prefix(4) + tag(1) + id(8).
        frame[13] = 0xFF;
        frame[14] = 0xFF;
        assert!(matches!(
            decode_frame(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut frame = encode_packet(&Packet::Query {
            id: 1,
            sql: "SELECT 1".into(),
        });
        let body_start = 4 + 1 + 8 + 4;
        frame[body_start] = 0xFF; // invalid UTF-8 lead byte
        assert!(matches!(
            decode_frame(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = encode_packet(&Packet::EndOfStream {
            query_id: 1,
            chunks: 1,
        });
        // Grow the body by one byte and fix the prefix to match.
        frame.push(0);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let frame = [2u8, 0, 0, 0, 99, 0];
        assert!(matches!(
            decode_frame(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn zero_length_frame_rejected() {
        let frame = [0u8, 0, 0, 0];
        assert!(matches!(
            decode_frame(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::Corrupt(_))
        ));
    }
}

//! # skadi-wire — the native wire protocol
//!
//! The network front door for the Skadi runtime: a length-prefixed framed
//! codec with typed packets, modelled on native database protocols
//! (handshake with version + capability negotiation, queries, result
//! blocks streamed incrementally as columnar IPC frames, progress events,
//! exceptions, end-of-stream markers).
//!
//! - [`packet`]: the packet grammar ([`Packet`]) plus protocol constants
//!   (version, capability bits, exception codes).
//! - [`codec`]: framing — [`encode_packet`]/[`decode_frame`] over byte
//!   slices, [`read_packet`]/[`write_packet`] over any `Read`/`Write`.
//!   Decoding untrusted bytes either yields a valid packet or a
//!   [`WireError`]; it never panics and never allocates more than the
//!   frame's bounded length.
//! - [`transport`]: an in-memory duplex byte stream ([`duplex`]) that
//!   implements `Read`/`Write` with TCP-like close semantics, so the
//!   server and its tests run the *same* codec deterministically without
//!   sockets.
//! - [`client`]: a blocking [`Client`] that handshakes and runs queries
//!   over any `Read + Write` stream (a `TcpStream` or one end of
//!   [`duplex`]), reassembling streamed data blocks into one
//!   [`RecordBatch`](skadi_arrow::batch::RecordBatch).
//!
//! Frame layout (little-endian):
//!
//! ```text
//! len u32 | tag u8 | body (len - 1 bytes)
//! ```
//!
//! `len` counts the tag byte plus the body and is bounded by the
//! negotiated maximum ([`DEFAULT_MAX_FRAME`] by default); a frame whose
//! prefix exceeds the bound is rejected before any allocation, and the
//! connection must be dropped (there is no way to resynchronize).

pub mod client;
pub mod codec;
pub mod packet;
pub mod transport;

pub use client::{Client, QueryResult};
pub use codec::{
    decode_frame, encode_packet, read_packet, write_packet, WireError, DEFAULT_MAX_FRAME,
};
pub use packet::{Packet, CAP_PROGRESS, PROTOCOL_VERSION};
pub use transport::{duplex, DuplexStream};

//! An in-memory duplex byte stream with TCP-like semantics.
//!
//! [`duplex`] returns two connected [`DuplexStream`] ends. Bytes written
//! to one end are read from the other, in order. Dropping (or
//! [`DuplexStream::shutdown`]-ing) either end closes the connection in
//! both directions: the peer's reads drain buffered bytes then return
//! EOF, and the peer's writes fail with `BrokenPipe` — exactly the
//! failure surface a TCP server sees on client disconnect, which is what
//! makes the adversarial tests deterministic.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// One direction of the connection: a bounded-by-usage byte queue.
struct Pipe {
    state: Mutex<PipeState>,
    cond: Condvar,
}

struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn new() -> Arc<Self> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        })
    }

    fn close(&self) {
        self.state.lock().expect("pipe lock").closed = true;
        self.cond.notify_all();
    }
}

/// One end of an in-memory duplex connection. Implements [`Read`] and
/// [`Write`]; reads block until data arrives or the peer closes.
pub struct DuplexStream {
    /// The pipe this end reads from (peer writes into it).
    rx: Arc<Pipe>,
    /// The pipe this end writes into (peer reads from it).
    tx: Arc<Pipe>,
}

/// Creates a connected pair of in-memory streams.
pub fn duplex() -> (DuplexStream, DuplexStream) {
    let a_to_b = Pipe::new();
    let b_to_a = Pipe::new();
    (
        DuplexStream {
            rx: Arc::clone(&b_to_a),
            tx: Arc::clone(&a_to_b),
        },
        DuplexStream {
            rx: a_to_b,
            tx: b_to_a,
        },
    )
}

impl DuplexStream {
    /// Closes both directions immediately (like `TcpStream::shutdown`):
    /// the peer reads EOF once it drains buffered bytes, and further
    /// writes on either end fail.
    pub fn shutdown(&self) {
        self.rx.close();
        self.tx.close();
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Read for DuplexStream {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut st = self.rx.state.lock().expect("pipe lock");
        while st.buf.is_empty() && !st.closed {
            st = self.rx.cond.wait(st).expect("pipe lock");
        }
        if st.buf.is_empty() {
            return Ok(0); // closed and drained: EOF
        }
        let n = out.len().min(st.buf.len());
        for slot in out.iter_mut().take(n) {
            *slot = st.buf.pop_front().expect("n <= buf.len()");
        }
        Ok(n)
    }
}

impl Write for DuplexStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.tx.state.lock().expect("pipe lock");
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed the connection",
            ));
        }
        st.buf.extend(data.iter().copied());
        self.tx.cond.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bytes_cross_in_order() {
        let (mut a, mut b) = duplex();
        a.write_all(b"hello ").unwrap();
        a.write_all(b"world").unwrap();
        let mut got = [0u8; 11];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello world");
    }

    #[test]
    fn blocking_read_wakes_on_write() {
        let (mut a, mut b) = duplex();
        let t = thread::spawn(move || {
            let mut one = [0u8; 1];
            b.read_exact(&mut one).unwrap();
            one[0]
        });
        a.write_all(&[42]).unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn drop_closes_both_directions() {
        let (mut a, mut b) = duplex();
        a.write_all(b"tail").unwrap();
        drop(a);
        // Buffered bytes still drain, then EOF.
        let mut got = Vec::new();
        b.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"tail");
        // Writes toward the dropped end fail.
        assert!(b.write_all(b"x").is_err());
    }

    #[test]
    fn shutdown_unblocks_reader() {
        let (a, mut b) = duplex();
        let t = thread::spawn(move || {
            let mut buf = [0u8; 8];
            b.read(&mut buf).unwrap()
        });
        a.shutdown();
        assert_eq!(t.join().unwrap(), 0);
    }
}

//! The packet grammar: every message that crosses a Skadi connection.

use bytes::Bytes;

/// Protocol version spoken by this build. The handshake rejects a client
/// whose version differs — there is exactly one version so far, so no
/// downgrade path exists yet.
pub const PROTOCOL_VERSION: u16 = 1;

/// Capability bit: the peer wants [`Packet::Progress`] events between
/// data blocks. Capabilities are a bitset; the handshake intersects the
/// client's and server's sets and both sides honour the result.
pub const CAP_PROGRESS: u32 = 1 << 0;

/// Capability bit: [`Packet::Data`] payloads may be block-compressed
/// (`skadi_arrow::compression`). The server compresses only when both
/// sides advertise this bit; the receiver distinguishes compressed from
/// plain frames by magic, so a payload that didn't shrink travels raw
/// even after negotiation. Old clients that never set the bit keep
/// receiving plain IPC frames.
pub const CAP_COMPRESSION: u32 = 1 << 1;

/// Exception codes carried by [`Packet::Exception`].
pub mod code {
    /// The SQL frontend rejected the statement (lex/parse/plan).
    pub const SQL: u16 = 1;
    /// Execution failed after planning succeeded.
    pub const EXEC: u16 = 2;
    /// The admission queue is full; retry later.
    pub const ADMISSION: u16 = 3;
    /// The peer violated the protocol (malformed frame, unexpected
    /// packet, oversized frame). The connection closes after this.
    pub const PROTOCOL: u16 = 4;
    /// Handshake version mismatch. The connection closes after this.
    pub const VERSION: u16 = 5;
}

/// One protocol message.
///
/// The lifecycle of a connection: client sends [`Packet::ClientHello`],
/// server answers [`Packet::ServerHello`] (or an [`Packet::Exception`]
/// and closes). Then any number of [`Packet::Query`] round trips, each
/// answered by one or more [`Packet::Data`] blocks (interleaved with
/// [`Packet::Progress`] when negotiated) terminated by
/// [`Packet::EndOfStream`] — or by a single [`Packet::Exception`].
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// Client's opening message.
    ClientHello {
        /// Protocol version the client speaks.
        version: u16,
        /// Capability bits the client supports.
        capabilities: u32,
        /// Free-form client name, for logs.
        client_name: String,
    },
    /// Server's handshake answer.
    ServerHello {
        /// Protocol version the server speaks.
        version: u16,
        /// Intersection of client and server capability bits.
        capabilities: u32,
        /// Free-form server name, for logs.
        server_name: String,
    },
    /// One SQL statement. `id` is chosen by the client and echoed on
    /// every response packet belonging to this query.
    Query {
        /// Client-chosen query id.
        id: u64,
        /// The SQL text.
        sql: String,
    },
    /// One result block: a self-describing columnar IPC frame
    /// ([`skadi_arrow::ipc`]). A result is split into row-chunks; even an
    /// empty result sends one block so the schema always arrives.
    Data {
        /// The query this block answers.
        query_id: u64,
        /// One encoded [`RecordBatch`](skadi_arrow::batch::RecordBatch).
        payload: Bytes,
    },
    /// Progress so far for a streaming result (rows and encoded bytes
    /// already sent). Only sent when [`CAP_PROGRESS`] was negotiated.
    Progress {
        /// The query this progress report belongs to.
        query_id: u64,
        /// Result rows sent so far.
        rows: u64,
        /// Encoded payload bytes sent so far.
        bytes: u64,
    },
    /// The query (or the connection, when `query_id` is 0 during
    /// handshake) failed. Carries a [`code`] and a human-readable
    /// message — for frontend errors this is the SQL error's `Display`
    /// rendering, e.g. "unterminated string literal starting at
    /// offset 24".
    Exception {
        /// The query that failed (0 when no query was in flight).
        query_id: u64,
        /// Machine-readable [`code`].
        code: u16,
        /// Human-readable message.
        message: String,
    },
    /// Terminates a successful result stream.
    EndOfStream {
        /// The query this stream answered.
        query_id: u64,
        /// Number of [`Packet::Data`] blocks that were sent (>= 1).
        chunks: u32,
    },
}

impl Packet {
    /// The frame tag byte identifying this packet variant.
    pub fn tag(&self) -> u8 {
        match self {
            Packet::ClientHello { .. } => 1,
            Packet::ServerHello { .. } => 2,
            Packet::Query { .. } => 3,
            Packet::Data { .. } => 4,
            Packet::Progress { .. } => 5,
            Packet::Exception { .. } => 6,
            Packet::EndOfStream { .. } => 7,
        }
    }

    /// Short variant name, for logs and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Packet::ClientHello { .. } => "ClientHello",
            Packet::ServerHello { .. } => "ServerHello",
            Packet::Query { .. } => "Query",
            Packet::Data { .. } => "Data",
            Packet::Progress { .. } => "Progress",
            Packet::Exception { .. } => "Exception",
            Packet::EndOfStream { .. } => "EndOfStream",
        }
    }
}

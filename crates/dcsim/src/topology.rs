//! Cluster topology: racks of servers, DPU-fronted accelerator devices,
//! disaggregated memory blades, and durable cloud storage.
//!
//! The model follows the paper's Figure 2/3 hardware picture:
//!
//! - **Servers** are conventional hosts (CPU slots + DRAM) running a host
//!   raylet, workers, and a local object store.
//! - **Accelerator devices** are *physically disaggregated* devices: a
//!   dominant resource (GPU or FPGA with HBM) fronted by a DPU that handles
//!   networking and control. Whether control messages must detour through
//!   the DPU is a runtime decision (Gen-1 vs Gen-2), not a topology one, so
//!   the topology only records the DPU's per-message processing delay and
//!   the internal PCIe-class hop cost.
//! - **Memory blades** are disaggregated memory: a DPU plus a large pool of
//!   DRAM, no general-purpose compute.
//! - **Durable storage** is the cloud object store (S3-class latency), used
//!   by stateless serverless deployments to bounce data between functions.
//!
//! Topologies are immutable once built; identity is positional, so a given
//! builder program always produces the same IDs — another determinism
//! anchor.

use std::fmt;

use crate::time::SimDuration;

/// Identifies a node (server, device, blade, or durable store) in the
/// cluster. IDs are dense indices assigned in build order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a rack. The durable store lives in a synthetic extra "rack"
/// so that every node has a rack and cross-rack costs apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId(pub u16);

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// Coarse classification of a node, used for placement and link costing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// Conventional server (CPUs + DRAM).
    Server,
    /// Physically-disaggregated accelerator device (DPU + GPU/FPGA + HBM).
    AccelDevice,
    /// Disaggregated memory blade (DPU + DRAM pool).
    MemoryBlade,
    /// Durable cloud storage endpoint.
    DurableStorage,
}

impl fmt::Display for NodeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeClass::Server => "server",
            NodeClass::AccelDevice => "accel-device",
            NodeClass::MemoryBlade => "memory-blade",
            NodeClass::DurableStorage => "durable-storage",
        };
        f.write_str(s)
    }
}

/// The dominant resource of an accelerator device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelKind {
    /// GPU-class device: high throughput, HBM-backed.
    Gpu,
    /// FPGA-class device: lower clock, pipeline-friendly.
    Fpga,
}

impl fmt::Display for AccelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelKind::Gpu => f.write_str("gpu"),
            AccelKind::Fpga => f.write_str("fpga"),
        }
    }
}

/// DPU characteristics: how long the DPU takes to process one control or
/// data message that transits it, and the internal device hop (PCIe-class)
/// between the DPU and its companion resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpuSpec {
    /// Per-message processing delay on the DPU's cores.
    pub proc_delay: SimDuration,
    /// One-way latency of the internal hop between DPU and the dominant
    /// resource (accelerator cores / DRAM pool).
    pub internal_hop: SimDuration,
}

impl Default for DpuSpec {
    fn default() -> Self {
        // BlueField-class DPUs add single-digit microseconds per message;
        // the internal PCIe hop is ~1-2 us one way.
        DpuSpec {
            proc_delay: SimDuration::from_micros(3),
            internal_hop: SimDuration::from_nanos(1_500),
        }
    }
}

/// Server hardware description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerSpec {
    /// Number of concurrently-runnable CPU worker slots.
    pub cpu_slots: u32,
    /// Host DRAM capacity in bytes.
    pub dram_bytes: u64,
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec {
            cpu_slots: 16,
            dram_bytes: 64 << 30,
        }
    }
}

/// Accelerator device hardware description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelSpec {
    /// HBM capacity in bytes.
    pub hbm_bytes: u64,
    /// Number of concurrently-runnable op slots on the accelerator.
    pub op_slots: u32,
    /// Relative compute speed vs a CPU slot (used by op cost models).
    pub speedup_vs_cpu: u32,
    /// The fronting DPU.
    pub dpu: DpuSpec,
}

impl Default for AccelSpec {
    fn default() -> Self {
        AccelSpec {
            hbm_bytes: 16 << 30,
            op_slots: 4,
            speedup_vs_cpu: 20,
            dpu: DpuSpec::default(),
        }
    }
}

/// Disaggregated memory blade description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBladeSpec {
    /// DRAM pool capacity in bytes.
    pub dram_bytes: u64,
    /// The fronting DPU.
    pub dpu: DpuSpec,
}

impl Default for MemoryBladeSpec {
    fn default() -> Self {
        MemoryBladeSpec {
            dram_bytes: 512 << 30,
            dpu: DpuSpec::default(),
        }
    }
}

/// Durable cloud storage description (S3-class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableSpec {
    /// First-byte latency of a durable read or write.
    pub latency: SimDuration,
    /// Sustained per-stream bandwidth in bytes/second.
    pub bandwidth_bps: u64,
}

impl Default for DurableSpec {
    fn default() -> Self {
        DurableSpec {
            // Cloud object stores: ~10 ms first byte, ~100 MB/s per stream.
            latency: SimDuration::from_millis(10),
            bandwidth_bps: 100 << 20,
        }
    }
}

/// Full description of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A conventional server.
    Server(ServerSpec),
    /// A physically-disaggregated accelerator device.
    AccelDevice(AccelKind, AccelSpec),
    /// A disaggregated memory blade.
    MemoryBlade(MemoryBladeSpec),
    /// Durable cloud storage.
    DurableStorage(DurableSpec),
}

impl NodeKind {
    /// The coarse class of this node.
    pub fn class(&self) -> NodeClass {
        match self {
            NodeKind::Server(_) => NodeClass::Server,
            NodeKind::AccelDevice(..) => NodeClass::AccelDevice,
            NodeKind::MemoryBlade(_) => NodeClass::MemoryBlade,
            NodeKind::DurableStorage(_) => NodeClass::DurableStorage,
        }
    }

    /// Memory capacity of the node's primary store in bytes.
    pub fn memory_bytes(&self) -> u64 {
        match self {
            NodeKind::Server(s) => s.dram_bytes,
            NodeKind::AccelDevice(_, a) => a.hbm_bytes,
            NodeKind::MemoryBlade(m) => m.dram_bytes,
            NodeKind::DurableStorage(_) => u64::MAX,
        }
    }

    /// The DPU spec, if this node is fronted by a DPU.
    pub fn dpu(&self) -> Option<DpuSpec> {
        match self {
            NodeKind::AccelDevice(_, a) => Some(a.dpu),
            NodeKind::MemoryBlade(m) => Some(m.dpu),
            _ => None,
        }
    }
}

/// One node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// This node's identifier.
    pub id: NodeId,
    /// The rack the node lives in.
    pub rack: RackId,
    /// Hardware description.
    pub kind: NodeKind,
}

/// An immutable cluster topology.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    rack_count: u16,
}

impl Topology {
    /// All nodes, in ID order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes in the cluster.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of racks (including the synthetic durable-storage rack).
    pub fn rack_count(&self) -> u16 {
        self.rack_count
    }

    /// Looks up a node by ID.
    ///
    /// # Panics
    ///
    /// Panics if the ID is not part of this topology.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The rack a node lives in.
    pub fn rack_of(&self, id: NodeId) -> RackId {
        self.node(id).rack
    }

    /// True if both nodes are in the same rack.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// All node IDs with the given class, in ID order.
    pub fn nodes_of_kind(&self, class: NodeClass) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.class() == class)
            .map(|n| n.id)
            .collect()
    }

    /// All server node IDs.
    pub fn servers(&self) -> Vec<NodeId> {
        self.nodes_of_kind(NodeClass::Server)
    }

    /// All accelerator device node IDs, optionally filtered by kind.
    pub fn accel_devices(&self, kind: Option<AccelKind>) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::AccelDevice(k, _) if kind.is_none() || kind == Some(k) => Some(n.id),
                _ => None,
            })
            .collect()
    }

    /// All disaggregated memory blade IDs.
    pub fn memory_blades(&self) -> Vec<NodeId> {
        self.nodes_of_kind(NodeClass::MemoryBlade)
    }

    /// The durable storage node, if one was declared.
    pub fn durable_storage(&self) -> Option<NodeId> {
        self.nodes_of_kind(NodeClass::DurableStorage)
            .first()
            .copied()
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        let s = self.servers().len();
        let g = self.accel_devices(Some(AccelKind::Gpu)).len();
        let f = self.accel_devices(Some(AccelKind::Fpga)).len();
        let m = self.memory_blades().len();
        format!(
            "{} racks: {s} servers, {g} GPUs, {f} FPGAs, {m} memory blades{}",
            self.rack_count,
            if self.durable_storage().is_some() {
                ", durable storage"
            } else {
                ""
            }
        )
    }
}

/// Builds one rack's worth of nodes.
#[derive(Debug)]
pub struct RackBuilder {
    rack: RackId,
    nodes: Vec<NodeKind>,
}

impl RackBuilder {
    /// Adds `count` identical servers to the rack.
    pub fn servers(&mut self, count: u32, spec: ServerSpec) -> &mut Self {
        for _ in 0..count {
            self.nodes.push(NodeKind::Server(spec));
        }
        self
    }

    /// Adds one accelerator device to the rack.
    pub fn accel_device(&mut self, kind: AccelKind, spec: AccelSpec) -> &mut Self {
        self.nodes.push(NodeKind::AccelDevice(kind, spec));
        self
    }

    /// Adds `count` identical accelerator devices to the rack.
    pub fn accel_devices(&mut self, count: u32, kind: AccelKind, spec: AccelSpec) -> &mut Self {
        for _ in 0..count {
            self.nodes.push(NodeKind::AccelDevice(kind, spec));
        }
        self
    }

    /// Adds one disaggregated memory blade to the rack.
    pub fn memory_blade(&mut self, spec: MemoryBladeSpec) -> &mut Self {
        self.nodes.push(NodeKind::MemoryBlade(spec));
        self
    }
}

/// Fluent builder for [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    racks: Vec<Vec<NodeKind>>,
    durable: Option<DurableSpec>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Adds a rack, populated by the closure.
    pub fn rack(mut self, f: impl FnOnce(&mut RackBuilder)) -> Self {
        let mut rb = RackBuilder {
            rack: RackId(self.racks.len() as u16),
            nodes: Vec::new(),
        };
        f(&mut rb);
        let _ = rb.rack;
        self.racks.push(rb.nodes);
        self
    }

    /// Declares the cluster's durable storage endpoint.
    pub fn durable_storage(mut self, spec: DurableSpec) -> Self {
        self.durable = Some(spec);
        self
    }

    /// Finalizes the topology, assigning dense node IDs in declaration
    /// order (rack by rack, then durable storage last).
    pub fn build(self) -> Topology {
        let mut nodes = Vec::new();
        let mut next = 0u32;
        for (r, rack_nodes) in self.racks.iter().enumerate() {
            for kind in rack_nodes {
                nodes.push(Node {
                    id: NodeId(next),
                    rack: RackId(r as u16),
                    kind: *kind,
                });
                next += 1;
            }
        }
        let mut rack_count = self.racks.len() as u16;
        if let Some(spec) = self.durable {
            nodes.push(Node {
                id: NodeId(next),
                rack: RackId(rack_count),
                kind: NodeKind::DurableStorage(spec),
            });
            rack_count += 1;
        }
        Topology { nodes, rack_count }
    }
}

/// Pre-canned topologies used by examples, tests, and the benchmark
/// harness, so every experiment references the same cluster shapes.
pub mod presets {
    use super::*;

    /// A small symmetric cluster: 2 racks x 4 servers, each rack also has
    /// one GPU device and one FPGA device, one shared memory blade, plus
    /// durable storage. This is the default cluster for most experiments.
    pub fn small_disagg_cluster() -> Topology {
        TopologyBuilder::new()
            .rack(|r| {
                r.servers(4, ServerSpec::default());
                r.accel_device(AccelKind::Gpu, AccelSpec::default());
                r.accel_device(AccelKind::Fpga, AccelSpec::default());
            })
            .rack(|r| {
                r.servers(4, ServerSpec::default());
                r.accel_device(AccelKind::Gpu, AccelSpec::default());
                r.accel_device(AccelKind::Fpga, AccelSpec::default());
                r.memory_blade(MemoryBladeSpec::default());
            })
            .durable_storage(DurableSpec::default())
            .build()
    }

    /// A device-dense rack used by the Fig-3 experiments: one server and
    /// four accelerator devices (2 GPU + 2 FPGA) plus a memory blade.
    pub fn device_rack() -> Topology {
        TopologyBuilder::new()
            .rack(|r| {
                r.servers(1, ServerSpec::default());
                r.accel_devices(2, AccelKind::Gpu, AccelSpec::default());
                r.accel_devices(2, AccelKind::Fpga, AccelSpec::default());
                r.memory_blade(MemoryBladeSpec::default());
            })
            .durable_storage(DurableSpec::default())
            .build()
    }

    /// A server-only cluster (no physical disaggregation) for serverful and
    /// stateless-serverless baselines.
    pub fn server_cluster(racks: u16, servers_per_rack: u32) -> Topology {
        let mut b = TopologyBuilder::new();
        for _ in 0..racks {
            b = b.rack(|r| {
                r.servers(servers_per_rack, ServerSpec::default());
            });
        }
        b.durable_storage(DurableSpec::default()).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids_in_order() {
        let topo = TopologyBuilder::new()
            .rack(|r| {
                r.servers(2, ServerSpec::default());
            })
            .rack(|r| {
                r.accel_device(AccelKind::Gpu, AccelSpec::default());
            })
            .build();
        assert_eq!(topo.len(), 3);
        assert_eq!(topo.nodes()[0].id, NodeId(0));
        assert_eq!(topo.nodes()[2].id, NodeId(2));
        assert_eq!(topo.rack_of(NodeId(0)), RackId(0));
        assert_eq!(topo.rack_of(NodeId(2)), RackId(1));
    }

    #[test]
    fn durable_storage_gets_own_rack() {
        let topo = TopologyBuilder::new()
            .rack(|r| {
                r.servers(1, ServerSpec::default());
            })
            .durable_storage(DurableSpec::default())
            .build();
        let d = topo.durable_storage().expect("durable node");
        assert_eq!(topo.rack_of(d), RackId(1));
        assert_eq!(topo.rack_count(), 2);
        assert!(!topo.same_rack(NodeId(0), d));
    }

    #[test]
    fn kind_filters_work() {
        let topo = presets::small_disagg_cluster();
        assert_eq!(topo.servers().len(), 8);
        assert_eq!(topo.accel_devices(None).len(), 4);
        assert_eq!(topo.accel_devices(Some(AccelKind::Gpu)).len(), 2);
        assert_eq!(topo.accel_devices(Some(AccelKind::Fpga)).len(), 2);
        assert_eq!(topo.memory_blades().len(), 1);
        assert!(topo.durable_storage().is_some());
    }

    #[test]
    fn node_kind_reports_memory_and_dpu() {
        let blade = NodeKind::MemoryBlade(MemoryBladeSpec::default());
        assert!(blade.dpu().is_some());
        assert_eq!(blade.memory_bytes(), 512 << 30);
        let server = NodeKind::Server(ServerSpec::default());
        assert!(server.dpu().is_none());
    }

    #[test]
    fn identical_builders_produce_identical_topologies() {
        let a = presets::small_disagg_cluster();
        let b = presets::small_disagg_cluster();
        assert_eq!(a.nodes(), b.nodes());
    }

    #[test]
    fn summary_mentions_components() {
        let s = presets::device_rack().summary();
        assert!(s.contains("GPUs"), "summary was: {s}");
        assert!(s.contains("durable storage"), "summary was: {s}");
    }
}

//! Fabric model: latency, bandwidth, and NIC serialization queueing.
//!
//! The Skadi paper's performance arguments are about *message paths*: how
//! many hops a control message or data transfer takes (through a ToR
//! switch, across the spine, through a DPU, to durable storage), and what
//! each hop costs. This module prices those paths.
//!
//! The model is deliberately simple but captures the three effects the
//! experiments depend on:
//!
//! 1. **Latency per hop class** — loopback < intra-rack < cross-rack <<
//!    durable storage.
//! 2. **Bandwidth + serialization queueing** — a node's NIC is a serial
//!    resource: concurrent large transfers from the same source queue
//!    behind each other ([`Network::transfer`] tracks per-node egress and
//!    ingress availability).
//! 3. **DPU processing** — messages that transit a DPU pay its per-message
//!    processing delay (exposed as [`Network::dpu_delay`]; *whether* a
//!    message transits the DPU is a runtime routing decision — that is
//!    exactly the Gen-1 vs Gen-2 difference).

use std::fmt;

use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeClass, NodeId, NodeKind, Topology};

/// Tunable fabric parameters.
///
/// Defaults use public ballpark numbers for a modern data center hosting
/// disaggregated accelerators: ~5 us one-way intra-rack, ~15 us
/// cross-rack, 200 Gb/s-class effective NIC bandwidth (the paper's
/// premise is exactly that DSA pods ride high-speed fabrics, citing
/// Aquila-class networks), and S3-class durable storage from
/// [`crate::topology::DurableSpec`].
#[derive(Debug, Clone)]
pub struct LinkParams {
    /// One-way latency between two nodes in the same rack.
    pub intra_rack_latency: SimDuration,
    /// One-way latency between two nodes in different racks.
    pub cross_rack_latency: SimDuration,
    /// Effective NIC bandwidth in bytes/second (serialization rate).
    pub nic_bandwidth_bps: u64,
    /// Latency of a same-node (shared-memory) handoff.
    pub loopback_latency: SimDuration,
    /// Same-node memory copy bandwidth in bytes/second.
    pub memcpy_bandwidth_bps: u64,
    /// Size in bytes charged for one control message.
    pub control_msg_bytes: u64,
    /// Per-rack overrides for *intra-rack* latency and bandwidth —
    /// tightly-coupled pods (NVLink/ICI-class interconnects) live here.
    /// Entries are `(rack, latency, bandwidth_bps)`.
    pub rack_overrides: Vec<(u16, SimDuration, u64)>,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            intra_rack_latency: SimDuration::from_micros(5),
            cross_rack_latency: SimDuration::from_micros(15),
            nic_bandwidth_bps: 25 << 30, // ~200 Gb/s effective
            loopback_latency: SimDuration::from_nanos(200),
            memcpy_bandwidth_bps: 80 << 30,
            control_msg_bytes: 256,
            rack_overrides: Vec::new(),
        }
    }
}

impl LinkParams {
    /// Marks a rack as a tightly-coupled pod with the given internal
    /// latency and bandwidth (e.g. ~1 us / 100 GB/s for an NVLink-class
    /// fabric).
    pub fn with_pod(mut self, rack: u16, latency: SimDuration, bandwidth_bps: u64) -> Self {
        self.rack_overrides.push((rack, latency, bandwidth_bps));
        self
    }

    fn pod(&self, rack: u16) -> Option<(SimDuration, u64)> {
        self.rack_overrides
            .iter()
            .find(|(r, _, _)| *r == rack)
            .map(|(_, l, b)| (*l, *b))
    }
}

/// The outcome of pricing one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the payload finishes arriving at the destination.
    pub arrival: SimTime,
    /// Time spent waiting for the source NIC to become free.
    pub queued: SimDuration,
    /// Pure serialization time (bytes / bandwidth).
    pub serialization: SimDuration,
    /// Propagation latency of the chosen path.
    pub latency: SimDuration,
}

impl Transfer {
    /// Total elapsed time from request to arrival.
    pub fn total(&self) -> SimDuration {
        self.queued + self.serialization + self.latency
    }
}

/// Classification of a priced path, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopClass {
    /// Same node: shared memory.
    Loopback,
    /// Same rack: one ToR hop.
    IntraRack,
    /// Different racks: through the spine.
    CrossRack,
    /// To or from durable cloud storage.
    Durable,
}

impl fmt::Display for HopClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HopClass::Loopback => "loopback",
            HopClass::IntraRack => "intra-rack",
            HopClass::CrossRack => "cross-rack",
            HopClass::Durable => "durable",
        };
        f.write_str(s)
    }
}

/// Byte and message counters per hop class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Bytes moved over loopback.
    pub loopback_bytes: u64,
    /// Bytes moved within racks.
    pub intra_rack_bytes: u64,
    /// Bytes moved across racks.
    pub cross_rack_bytes: u64,
    /// Bytes moved to/from durable storage.
    pub durable_bytes: u64,
    /// Control messages sent.
    pub control_msgs: u64,
    /// Data transfers performed.
    pub data_transfers: u64,
}

impl NetStats {
    /// Total bytes that crossed any network link (excludes loopback).
    pub fn network_bytes(&self) -> u64 {
        self.intra_rack_bytes + self.cross_rack_bytes + self.durable_bytes
    }
}

/// The priced fabric. Holds per-node NIC availability, so it must be
/// threaded mutably through the simulation.
#[derive(Debug, Clone)]
pub struct Network {
    params: LinkParams,
    /// Per-node earliest time the egress NIC is free.
    egress_free: Vec<SimTime>,
    /// Per-node earliest time the ingress NIC is free.
    ingress_free: Vec<SimTime>,
    /// Cached per-node info to avoid topology lookups on the hot path.
    rack: Vec<u16>,
    class: Vec<NodeClass>,
    durable_latency: Vec<Option<SimDuration>>,
    durable_bw: Vec<Option<u64>>,
    dpu_delay: Vec<Option<SimDuration>>,
    internal_hop: Vec<Option<SimDuration>>,
    stats: NetStats,
}

impl Network {
    /// Builds the fabric for `topo` with the given parameters.
    pub fn new(topo: &Topology, params: LinkParams) -> Self {
        let n = topo.len();
        let mut rack = Vec::with_capacity(n);
        let mut class = Vec::with_capacity(n);
        let mut durable_latency = Vec::with_capacity(n);
        let mut durable_bw = Vec::with_capacity(n);
        let mut dpu_delay = Vec::with_capacity(n);
        let mut internal_hop = Vec::with_capacity(n);
        for node in topo.nodes() {
            rack.push(node.rack.0);
            class.push(node.kind.class());
            match node.kind {
                NodeKind::DurableStorage(spec) => {
                    durable_latency.push(Some(spec.latency));
                    durable_bw.push(Some(spec.bandwidth_bps));
                }
                _ => {
                    durable_latency.push(None);
                    durable_bw.push(None);
                }
            }
            match node.kind.dpu() {
                Some(d) => {
                    dpu_delay.push(Some(d.proc_delay));
                    internal_hop.push(Some(d.internal_hop));
                }
                None => {
                    dpu_delay.push(None);
                    internal_hop.push(None);
                }
            }
        }
        Network {
            params,
            egress_free: vec![SimTime::ZERO; n],
            ingress_free: vec![SimTime::ZERO; n],
            rack,
            class,
            durable_latency,
            durable_bw,
            dpu_delay,
            internal_hop,
            stats: NetStats::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets traffic statistics (NIC availability is kept).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Classifies the path between two nodes.
    pub fn hop_class(&self, src: NodeId, dst: NodeId) -> HopClass {
        if src == dst {
            HopClass::Loopback
        } else if self.class[src.index()] == NodeClass::DurableStorage
            || self.class[dst.index()] == NodeClass::DurableStorage
        {
            HopClass::Durable
        } else if self.rack[src.index()] == self.rack[dst.index()] {
            HopClass::IntraRack
        } else {
            HopClass::CrossRack
        }
    }

    /// One-way propagation latency between two nodes (no bandwidth term).
    pub fn path_latency(&self, src: NodeId, dst: NodeId) -> SimDuration {
        match self.hop_class(src, dst) {
            HopClass::Loopback => self.params.loopback_latency,
            HopClass::IntraRack => match self.params.pod(self.rack[src.index()]) {
                Some((latency, _)) => latency,
                None => self.params.intra_rack_latency,
            },
            HopClass::CrossRack => self.params.cross_rack_latency,
            HopClass::Durable => {
                let dl = self
                    .durable_latency(src)
                    .or_else(|| self.durable_latency(dst))
                    .unwrap_or(SimDuration::ZERO);
                self.params.cross_rack_latency + dl
            }
        }
    }

    fn durable_latency(&self, id: NodeId) -> Option<SimDuration> {
        self.durable_latency[id.index()]
    }

    fn path_bandwidth(&self, src: NodeId, dst: NodeId) -> u64 {
        match self.hop_class(src, dst) {
            HopClass::Loopback => self.params.memcpy_bandwidth_bps,
            HopClass::IntraRack => match self.params.pod(self.rack[src.index()]) {
                Some((_, bw)) => bw,
                None => self.params.nic_bandwidth_bps,
            },
            HopClass::Durable => {
                let bw = self.durable_bw[src.index()]
                    .or(self.durable_bw[dst.index()])
                    .unwrap_or(self.params.nic_bandwidth_bps);
                bw.min(self.params.nic_bandwidth_bps)
            }
            _ => self.params.nic_bandwidth_bps,
        }
    }

    /// The per-message DPU processing delay of a node, or zero if the node
    /// has no DPU. Callers add this for every message their routing policy
    /// sends *through* the DPU (the Gen-1 control path).
    pub fn dpu_delay(&self, id: NodeId) -> SimDuration {
        self.dpu_delay[id.index()].unwrap_or(SimDuration::ZERO)
    }

    /// One-way latency of the internal DPU <-> resource hop of a device, or
    /// zero for nodes without one.
    pub fn internal_hop(&self, id: NodeId) -> SimDuration {
        self.internal_hop[id.index()].unwrap_or(SimDuration::ZERO)
    }

    /// Prices a bulk data transfer of `bytes` from `src` to `dst` starting
    /// no earlier than `now`, consuming NIC serialization capacity on both
    /// ends.
    pub fn transfer(&mut self, now: SimTime, src: NodeId, dst: NodeId, bytes: u64) -> Transfer {
        let class = self.hop_class(src, dst);
        let latency = self.path_latency(src, dst);
        let bw = self.path_bandwidth(src, dst);
        let serialization = SimDuration::from_secs_f64(bytes as f64 / bw as f64);

        let (queued, arrival) = if class == HopClass::Loopback {
            // Shared memory: no NIC involved.
            (SimDuration::ZERO, now + latency + serialization)
        } else {
            let ready = self.egress_free[src.index()]
                .max(self.ingress_free[dst.index()])
                .max(now);
            let queued = ready.since(now);
            let done_serializing = ready + serialization;
            self.egress_free[src.index()] = done_serializing;
            self.ingress_free[dst.index()] = done_serializing;
            (queued, done_serializing + latency)
        };

        match class {
            HopClass::Loopback => self.stats.loopback_bytes += bytes,
            HopClass::IntraRack => self.stats.intra_rack_bytes += bytes,
            HopClass::CrossRack => self.stats.cross_rack_bytes += bytes,
            HopClass::Durable => self.stats.durable_bytes += bytes,
        }
        self.stats.data_transfers += 1;

        Transfer {
            arrival,
            queued,
            serialization,
            latency,
        }
    }

    /// Prices a small control message from `src` to `dst`. Control messages
    /// do not consume NIC serialization capacity (they are tiny), but they
    /// pay full path latency.
    pub fn control(&mut self, now: SimTime, src: NodeId, dst: NodeId) -> SimTime {
        let latency = self.path_latency(src, dst);
        let ser = SimDuration::from_secs_f64(
            self.params.control_msg_bytes as f64 / self.path_bandwidth(src, dst) as f64,
        );
        self.stats.control_msgs += 1;
        now + latency + ser
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{presets, DurableSpec, ServerSpec, TopologyBuilder};

    fn two_rack() -> Topology {
        TopologyBuilder::new()
            .rack(|r| {
                r.servers(2, ServerSpec::default());
            })
            .rack(|r| {
                r.servers(1, ServerSpec::default());
            })
            .durable_storage(DurableSpec::default())
            .build()
    }

    #[test]
    fn hop_classification() {
        let topo = two_rack();
        let net = Network::new(&topo, LinkParams::default());
        let d = topo.durable_storage().unwrap();
        assert_eq!(net.hop_class(NodeId(0), NodeId(0)), HopClass::Loopback);
        assert_eq!(net.hop_class(NodeId(0), NodeId(1)), HopClass::IntraRack);
        assert_eq!(net.hop_class(NodeId(0), NodeId(2)), HopClass::CrossRack);
        assert_eq!(net.hop_class(NodeId(0), d), HopClass::Durable);
    }

    #[test]
    fn latency_ordering_matches_hierarchy() {
        let topo = two_rack();
        let net = Network::new(&topo, LinkParams::default());
        let d = topo.durable_storage().unwrap();
        let lo = net.path_latency(NodeId(0), NodeId(0));
        let ir = net.path_latency(NodeId(0), NodeId(1));
        let cr = net.path_latency(NodeId(0), NodeId(2));
        let du = net.path_latency(NodeId(0), d);
        assert!(lo < ir && ir < cr && cr < du, "{lo} {ir} {cr} {du}");
    }

    #[test]
    fn serialization_scales_with_bytes() {
        let topo = two_rack();
        let mut net = Network::new(&topo, LinkParams::default());
        let small = net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 1 << 10);
        let mut net2 = Network::new(&topo, LinkParams::default());
        let big = net2.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 1 << 30);
        assert!(big.serialization > small.serialization * 1000);
    }

    #[test]
    fn concurrent_transfers_queue_on_egress() {
        let topo = two_rack();
        let mut net = Network::new(&topo, LinkParams::default());
        let a = net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 100 << 20);
        let b = net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 100 << 20);
        assert_eq!(a.queued, SimDuration::ZERO);
        assert!(b.queued >= a.serialization);
        assert!(b.arrival > a.arrival);
    }

    #[test]
    fn loopback_does_not_queue() {
        let topo = two_rack();
        let mut net = Network::new(&topo, LinkParams::default());
        let a = net.transfer(SimTime::ZERO, NodeId(0), NodeId(0), 1 << 30);
        let b = net.transfer(SimTime::ZERO, NodeId(0), NodeId(0), 1 << 30);
        assert_eq!(a.queued, SimDuration::ZERO);
        assert_eq!(b.queued, SimDuration::ZERO);
    }

    #[test]
    fn durable_path_is_slow() {
        let topo = two_rack();
        let mut net = Network::new(&topo, LinkParams::default());
        let d = topo.durable_storage().unwrap();
        let to_server = net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 1 << 20);
        let to_durable = net.transfer(SimTime::ZERO, NodeId(0), d, 1 << 20);
        assert!(to_durable.total() > to_server.total() * 5);
    }

    #[test]
    fn stats_accumulate_by_class() {
        let topo = two_rack();
        let mut net = Network::new(&topo, LinkParams::default());
        let d = topo.durable_storage().unwrap();
        net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 10);
        net.transfer(SimTime::ZERO, NodeId(0), NodeId(2), 20);
        net.transfer(SimTime::ZERO, NodeId(0), d, 30);
        net.transfer(SimTime::ZERO, NodeId(0), NodeId(0), 40);
        net.control(SimTime::ZERO, NodeId(0), NodeId(1));
        let s = net.stats();
        assert_eq!(s.intra_rack_bytes, 10);
        assert_eq!(s.cross_rack_bytes, 20);
        assert_eq!(s.durable_bytes, 30);
        assert_eq!(s.loopback_bytes, 40);
        assert_eq!(s.network_bytes(), 60);
        assert_eq!(s.control_msgs, 1);
        assert_eq!(s.data_transfers, 4);
    }

    #[test]
    fn dpu_delay_only_on_dpu_fronted_nodes() {
        let topo = presets::device_rack();
        let net = Network::new(&topo, LinkParams::default());
        let server = topo.servers()[0];
        let dev = topo.accel_devices(None)[0];
        assert_eq!(net.dpu_delay(server), SimDuration::ZERO);
        assert!(net.dpu_delay(dev) > SimDuration::ZERO);
        assert!(net.internal_hop(dev) > SimDuration::ZERO);
    }

    #[test]
    fn control_message_is_cheap() {
        let topo = two_rack();
        let mut net = Network::new(&topo, LinkParams::default());
        let t = net.control(SimTime::ZERO, NodeId(0), NodeId(2));
        // A control message should cost close to path latency only.
        let lat = net.path_latency(NodeId(0), NodeId(2));
        assert!(t.since(SimTime::ZERO) < lat * 2);
    }
}

#[cfg(test)]
mod pod_tests {
    use super::*;
    use crate::topology::{presets, AccelKind};

    #[test]
    fn pod_overrides_intra_rack_only() {
        let topo = presets::device_rack(); // Rack 0 devices + durable rack 1.
        let params = LinkParams::default().with_pod(0, SimDuration::from_micros(1), 100 << 30);
        let mut pod_net = Network::new(&topo, params);
        let mut base_net = Network::new(&topo, LinkParams::default());
        let devs = topo.accel_devices(Some(AccelKind::Gpu));
        let (a, b) = (devs[0], devs[1]);
        // Intra-pod: faster on both axes.
        assert!(pod_net.path_latency(a, b) < base_net.path_latency(a, b));
        let pod_t = pod_net.transfer(SimTime::ZERO, a, b, 64 << 20);
        let base_t = base_net.transfer(SimTime::ZERO, a, b, 64 << 20);
        assert!(pod_t.serialization < base_t.serialization);
        // Cross-rack paths (to durable) are untouched.
        let d = topo.durable_storage().unwrap();
        assert_eq!(pod_net.path_latency(a, d), base_net.path_latency(a, d));
    }

    #[test]
    fn non_pod_racks_unaffected() {
        let topo = presets::small_disagg_cluster();
        let params = LinkParams::default().with_pod(0, SimDuration::from_micros(1), 100 << 30);
        let net = Network::new(&topo, params);
        let base = Network::new(&topo, LinkParams::default());
        // Two rack-1 servers: same latency as without the pod.
        let servers = topo.servers();
        let (a, b) = (servers[4], servers[5]);
        assert_eq!(net.path_latency(a, b), base.path_latency(a, b));
    }
}

//! Virtual time for the simulator.
//!
//! All simulated activity is stamped with a [`SimTime`] measured in
//! nanoseconds since simulation start; intervals are [`SimDuration`]s. Both
//! are thin wrappers over `u64` with saturating/checked arithmetic where it
//! matters, so a runaway simulation wraps loudly instead of silently.
//!
//! Wall-clock time never appears in simulated code paths: determinism of
//! every experiment depends on it.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ns` nanoseconds after simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; that always indicates a
    /// causality bug in the caller.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        match self.0.checked_sub(earlier.0) {
            Some(d) => SimDuration(d),
            None => panic!("SimTime::since: {earlier} is after {self}"),
        }
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative or non-finite inputs clamp to zero: cost models occasionally
    /// produce tiny negative values from floating-point subtraction, and a
    /// zero-cost hop is the faithful interpretation.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds in this duration.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Multiplies by a non-negative float, rounding to nanoseconds.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        assert_eq!((t + d).as_micros(), 15);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 4);
    }

    #[test]
    #[should_panic(expected = "is after")]
    fn since_panics_on_causality_violation() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_micros(4);
        assert_eq!((d * 3).as_micros(), 12);
        assert_eq!((d / 2).as_micros(), 2);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 2_000);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}

//! # skadi-dcsim — deterministic simulator of a disaggregated data center
//!
//! This crate is the hardware substrate for the Skadi reproduction. The
//! paper's prototype runs on BlueField DPUs, FPGAs, GPUs, and disaggregated
//! memory blades; none of that hardware is assumed here. Instead, the crate
//! provides a *discrete-event* model of such a cluster:
//!
//! - [`time`]: virtual time ([`SimTime`], [`SimDuration`]) in nanoseconds.
//!   No wall-clock time ever enters a simulation.
//! - [`engine`]: a deterministic event queue ([`EventQueue`]) with total
//!   ordering by `(time, sequence)`.
//! - [`topology`]: racks, server nodes, DPU-fronted accelerator devices,
//!   disaggregated memory blades, and durable storage ([`Topology`],
//!   [`TopologyBuilder`]).
//! - [`network`]: a latency + bandwidth + serialization-queueing model of
//!   the fabric connecting them ([`Network`]).
//! - [`resources`]: compute-slot and memory accounting per node.
//! - [`rng`]: seeded random sources and workload samplers (Zipf,
//!   exponential) so every experiment is bit-reproducible.
//! - [`trace`]: labeled counters, histograms, and windowed gauges.
//! - [`span`]: causal span tracing over virtual time, with Chrome
//!   `trace_event` export and critical-path analysis.
//!
//! The simulator is single-threaded by design: determinism is a core
//! requirement of the reproduction (identical seeds must produce identical
//! traces across runs and machines).
//!
//! # Examples
//!
//! ```
//! use skadi_dcsim::prelude::*;
//!
//! // Build a two-rack cluster: servers plus one GPU device and one memory
//! // blade, then price a transfer across it.
//! let topo = TopologyBuilder::new()
//!     .rack(|r| {
//!         r.servers(2, ServerSpec::default());
//!         r.accel_device(AccelKind::Gpu, AccelSpec::default());
//!     })
//!     .rack(|r| {
//!         r.memory_blade(MemoryBladeSpec::default());
//!     })
//!     .durable_storage(DurableSpec::default())
//!     .build();
//!
//! let mut net = Network::new(&topo, LinkParams::default());
//! let servers = topo.nodes_of_kind(NodeClass::Server);
//! let t = net.transfer(SimTime::ZERO, servers[0], servers[1], 1 << 20);
//! assert!(t.arrival > SimTime::ZERO);
//! ```

pub mod engine;
pub mod network;
pub mod resources;
pub mod rng;
pub mod span;
pub mod time;
pub mod topology;
pub mod trace;

pub use engine::EventQueue;
pub use network::{LinkParams, Network, Transfer};
pub use resources::NodeResources;
pub use span::{Category, Span, SpanId, Trace, Tracer};
pub use time::{SimDuration, SimTime};
pub use topology::{
    AccelKind, AccelSpec, DurableSpec, MemoryBladeSpec, NodeClass, NodeId, RackId, ServerSpec,
    Topology, TopologyBuilder,
};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::engine::EventQueue;
    pub use crate::network::{LinkParams, Network, Transfer};
    pub use crate::resources::NodeResources;
    pub use crate::rng::DetRng;
    pub use crate::span::{Category, Span, SpanId, Trace, Tracer};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{
        AccelKind, AccelSpec, DurableSpec, MemoryBladeSpec, NodeClass, NodeId, RackId, ServerSpec,
        Topology, TopologyBuilder,
    };
    pub use crate::trace::Metrics;
}

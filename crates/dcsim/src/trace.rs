//! Measurement: named counters and latency histograms.
//!
//! Experiments record into a [`Metrics`] sink and read back counters,
//! means, and percentiles when printing tables. Percentiles use exact
//! order statistics over recorded samples (sample counts in these
//! experiments are small enough that sketches are unnecessary, and
//! exactness aids reproducibility).

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimDuration;

/// A latency histogram backed by raw samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of all samples, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|s| *s as u128).sum();
        SimDuration::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    /// Sum of all samples.
    pub fn total(&self) -> SimDuration {
        let sum: u128 = self.samples.iter().map(|s| *s as u128).sum();
        SimDuration::from_nanos(u64::try_from(sum).unwrap_or(u64::MAX))
    }

    /// Largest sample, or zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Smallest sample, or zero if empty.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// Exact percentile (`q` in `[0, 100]`) by nearest-rank, or zero if
    /// empty.
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0) * (self.samples.len() as f64 - 1.0)).round() as usize;
        SimDuration::from_nanos(self.samples[rank])
    }

    /// Median sample.
    pub fn p50(&mut self) -> SimDuration {
        self.percentile(50.0)
    }

    /// 99th percentile sample.
    pub fn p99(&mut self) -> SimDuration {
        self.percentile(99.0)
    }
}

/// A named collection of counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a duration sample into the named histogram.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// Mutable access to a histogram (created empty on first use).
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Read access to a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> Vec<&str> {
        self.counters.keys().map(String::as_str).collect()
    }

    /// Merges another sink into this one (counters add, samples append).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            mine.samples.extend_from_slice(&h.samples);
            mine.sorted = false;
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k}: {v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(f, "{k}: n={} mean={} max={}", h.count(), h.mean(), h.max())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.bump("tasks");
        m.add("tasks", 4);
        assert_eq!(m.counter("tasks"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for us in [1u64, 2, 3, 4, 100] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean().as_micros(), 22);
        assert_eq!(h.min().as_micros(), 1);
        assert_eq!(h.max().as_micros(), 100);
        assert_eq!(h.p50().as_micros(), 3);
        assert_eq!(h.total().as_micros(), 110);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut h = Histogram::new();
        for us in 1..=100u64 {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.percentile(0.0).as_micros(), 1);
        assert_eq!(h.percentile(100.0).as_micros(), 100);
        assert_eq!(h.p99().as_micros(), 99);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.p99(), SimDuration::ZERO);
        assert!(h.is_empty());
    }

    #[test]
    fn observe_via_metrics() {
        let mut m = Metrics::new();
        m.observe("lat", SimDuration::from_micros(10));
        m.observe("lat", SimDuration::from_micros(20));
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        assert_eq!(m.histogram_mut("lat").mean().as_micros(), 15);
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.add("x", 1);
        a.observe("h", SimDuration::from_micros(1));
        let mut b = Metrics::new();
        b.add("x", 2);
        b.observe("h", SimDuration::from_micros(3));
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn display_lists_everything() {
        let mut m = Metrics::new();
        m.add("c", 7);
        m.observe("h", SimDuration::from_micros(5));
        let s = m.to_string();
        assert!(s.contains("c: 7"));
        assert!(s.contains("h: n=1"));
    }
}

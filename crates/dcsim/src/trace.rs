//! Measurement: named counters and latency histograms.
//!
//! Experiments record into a [`Metrics`] sink and read back counters,
//! means, and percentiles when printing tables. Percentiles use exact
//! order statistics over recorded samples (sample counts in these
//! experiments are small enough that sketches are unnecessary, and
//! exactness aids reproducibility).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A latency histogram backed by raw samples.
///
/// Percentile reads take `&self`: the sorted order is cached in a
/// [`RefCell`] and rebuilt lazily after mutation, so read-only surfaces
/// (Display, the Prometheus exposition) never need `&mut` access.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: RefCell<Vec<u64>>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sorted.get_mut().clear();
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of all samples, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|s| *s as u128).sum();
        SimDuration::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    /// Exact sum of all samples, in nanoseconds.
    ///
    /// Returned as `u128`: long simulations can accumulate more than
    /// `u64::MAX` nanoseconds of samples, and the old `SimDuration`
    /// return silently saturated there.
    pub fn total(&self) -> u128 {
        self.samples.iter().map(|s| *s as u128).sum()
    }

    /// The sum as a `SimDuration`, or `None` if it overflows one.
    pub fn checked_total(&self) -> Option<SimDuration> {
        u64::try_from(self.total())
            .ok()
            .map(SimDuration::from_nanos)
    }

    /// Largest sample, or zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Smallest sample, or zero if empty.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// Exact percentile (`q` in `[0, 100]`) by nearest-rank, or zero if
    /// empty. The sorted order is computed on first read after a
    /// mutation and cached.
    pub fn percentile(&self, q: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        {
            let mut cache = self.sorted.borrow_mut();
            if cache.len() != self.samples.len() {
                cache.clear();
                cache.extend_from_slice(&self.samples);
                cache.sort_unstable();
            }
        }
        Self::percentile_of_sorted(&self.sorted.borrow(), q)
    }

    /// Alias of [`Histogram::percentile`], kept for callers from before
    /// percentiles took `&self`.
    pub fn percentile_ref(&self, q: f64) -> SimDuration {
        self.percentile(q)
    }

    /// Exact quantile (`q` in `[0, 1]`) by nearest-rank, or zero if
    /// empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        self.percentile(q * 100.0)
    }

    fn percentile_of_sorted(sorted: &[u64], q: f64) -> SimDuration {
        if sorted.is_empty() {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        SimDuration::from_nanos(sorted[rank])
    }

    /// Median sample.
    pub fn p50(&self) -> SimDuration {
        self.percentile(50.0)
    }

    /// 99th percentile sample.
    pub fn p99(&self) -> SimDuration {
        self.percentile(99.0)
    }
}

/// A windowed time-series gauge over `SimTime` buckets.
///
/// Samples recorded at a virtual time land in `floor(t / bucket)`; each
/// bucket keeps the sum and count, so readers get the bucket mean. Used
/// for quantities that vary over a run (device utilization, queue depth)
/// where one whole-job histogram would hide the shape.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    bucket: SimDuration,
    points: BTreeMap<u64, (f64, u64)>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(bucket > SimDuration::ZERO, "zero-width gauge bucket");
        TimeSeries {
            bucket,
            points: BTreeMap::new(),
        }
    }

    /// The bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// Records one sample at virtual time `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let idx = t.as_nanos() / self.bucket.as_nanos();
        let slot = self.points.entry(idx).or_insert((0.0, 0));
        slot.0 += value;
        slot.1 += 1;
    }

    /// Number of non-empty buckets.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates `(bucket_start, mean)` in time order.
    pub fn means(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().map(|(idx, (sum, n))| {
            (
                SimTime::from_nanos(idx * self.bucket.as_nanos()),
                sum / (*n).max(1) as f64,
            )
        })
    }

    /// Mean over every recorded sample, or zero if empty.
    pub fn overall_mean(&self) -> f64 {
        let (sum, n) = self
            .points
            .values()
            .fold((0.0, 0u64), |(s, c), (ps, pc)| (s + ps, c + pc));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Renders a label set as a canonical `{k=v,k2=v2}` suffix. Labels are
/// sorted by key so the same set always produces the same metric key.
fn labeled_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort();
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key.push('}');
    key
}

/// A named collection of counters, histograms, and windowed gauges.
///
/// Counters and histograms may carry **labels** (per-tier, per-node,
/// per-backend, ...): a labeled series is stored under the canonical key
/// `name{k=v,...}`, so it sorts next to its base name in listings and
/// merges across sinks like any other series.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    gauges: BTreeMap<String, TimeSeries>,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a duration sample into the named histogram.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// Mutable access to a histogram (created empty on first use).
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Read access to a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Adds `delta` to a labeled counter.
    pub fn add_labeled(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self.counters.entry(labeled_key(name, labels)).or_insert(0) += delta;
    }

    /// Increments a labeled counter by one.
    pub fn bump_labeled(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.add_labeled(name, labels, 1);
    }

    /// Reads a labeled counter (zero if never touched).
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&labeled_key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Sums a counter across every label combination (`name` and all
    /// `name{...}` series).
    pub fn counter_across_labels(&self, name: &str) -> u64 {
        let prefix = format!("{name}{{");
        self.counters
            .iter()
            .filter(|(k, _)| *k == name || k.starts_with(&prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Records a duration sample into a labeled histogram.
    pub fn observe_labeled(&mut self, name: &str, labels: &[(&str, &str)], d: SimDuration) {
        self.histograms
            .entry(labeled_key(name, labels))
            .or_default()
            .record(d);
    }

    /// Read access to a labeled histogram, if it exists.
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&labeled_key(name, labels))
    }

    /// Records a gauge sample at virtual time `t`; the series is created
    /// with `bucket` width on first use (later `bucket` values are
    /// ignored for an existing series).
    pub fn gauge_record(&mut self, name: &str, bucket: SimDuration, t: SimTime, value: f64) {
        self.gauges
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(bucket))
            .record(t, value);
    }

    /// Read access to a gauge series, if it exists.
    pub fn gauge(&self, name: &str) -> Option<&TimeSeries> {
        self.gauges.get(name)
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> Vec<&str> {
        self.counters.keys().map(String::as_str).collect()
    }

    /// All histogram names, sorted.
    pub fn histogram_names(&self) -> Vec<&str> {
        self.histograms.keys().map(String::as_str).collect()
    }

    /// All gauge names, sorted.
    pub fn gauge_names(&self) -> Vec<&str> {
        self.gauges.keys().map(String::as_str).collect()
    }

    /// Merges another sink into this one (counters add, samples append,
    /// gauge buckets combine).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            mine.samples.extend_from_slice(&h.samples);
            mine.sorted.get_mut().clear();
        }
        for (k, g) in &other.gauges {
            let mine = self
                .gauges
                .entry(k.clone())
                .or_insert_with(|| TimeSeries::new(g.bucket));
            for (idx, (sum, n)) in &g.points {
                let slot = mine.points.entry(*idx).or_insert((0.0, 0));
                slot.0 += sum;
                slot.1 += n;
            }
        }
    }
}

/// Sanitizes a metric or label name into the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format.
fn prom_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Splits a canonical `name{k=v,...}` series key back into its base name
/// and label pairs (both sanitized for exposition).
fn split_series(key: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = key.find('{') else {
        return (prom_name(key), Vec::new());
    };
    let name = prom_name(&key[..brace]);
    let body = key[brace + 1..].trim_end_matches('}');
    let labels = body
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (prom_name(k), prom_label_value(v)),
            None => (prom_name(pair), String::new()),
        })
        .collect();
    (name, labels)
}

/// Renders one exposition line: `name{labels} value`.
fn prom_line(out: &mut String, name: &str, labels: &[(String, String)], value: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

impl Metrics {
    /// Renders every series in the Prometheus text exposition format.
    ///
    /// Counters export as `counter`; histograms as `summary` series with
    /// `quantile="0.5"` / `quantile="0.99"` labels plus `_sum`/`_count`
    /// (values in nanoseconds); gauges as their overall mean. Names are
    /// sanitized into the Prometheus grammar (`.` becomes `_`), labeled
    /// series keep their labels, and output order follows the sinks'
    /// sorted key order, so the exposition is deterministic.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for (key, v) in &self.counters {
            let (name, labels) = split_series(key);
            if typed.insert(name.clone()) {
                out.push_str(&format!("# TYPE {name} counter\n"));
            }
            prom_line(&mut out, &name, &labels, &v.to_string());
        }
        for (key, h) in &self.histograms {
            let (name, labels) = split_series(key);
            if typed.insert(name.clone()) {
                out.push_str(&format!("# TYPE {name} summary\n"));
            }
            for (q, d) in [("0.5", h.quantile(0.5)), ("0.99", h.quantile(0.99))] {
                let mut with_q = labels.clone();
                with_q.push(("quantile".to_string(), q.to_string()));
                prom_line(&mut out, &name, &with_q, &d.as_nanos().to_string());
            }
            prom_line(
                &mut out,
                &format!("{name}_sum"),
                &labels,
                &h.total().to_string(),
            );
            prom_line(
                &mut out,
                &format!("{name}_count"),
                &labels,
                &h.count().to_string(),
            );
        }
        for (key, g) in &self.gauges {
            let (name, labels) = split_series(key);
            if typed.insert(name.clone()) {
                out.push_str(&format!("# TYPE {name} gauge\n"));
            }
            prom_line(
                &mut out,
                &name,
                &labels,
                &format!("{:.6}", g.overall_mean()),
            );
        }
        out
    }
}

/// Validates Prometheus text-exposition output: every non-comment line
/// must match the `name{label="value",...} value` grammar and no series
/// (name plus full label set) may repeat. Returns the series count.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
    }
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", ln + 1));
        // Split the series key from the value at the last space outside
        // braces (label values may contain spaces).
        let split = match line.rfind('}') {
            Some(close) => match line[close + 1..].strip_prefix(' ') {
                Some(_) => close + 1,
                None => return err("expected space after label set"),
            },
            None => match line.find(' ') {
                Some(sp) => sp,
                None => return err("expected `name value`"),
            },
        };
        let (series, value) = (&line[..split], line[split + 1..].trim());
        if value.is_empty() || value.parse::<f64>().is_err() {
            return err("value is not a number");
        }
        let (name, labels) = match series.find('{') {
            None => (series, ""),
            Some(b) => {
                if !series.ends_with('}') {
                    return err("unterminated label set");
                }
                (&series[..b], &series[b + 1..series.len() - 1])
            }
        };
        if !valid_name(name) {
            return err("bad metric name");
        }
        if !labels.is_empty() {
            for pair in labels.split("\",") {
                let pair = pair.strip_suffix('"').unwrap_or(pair);
                let Some((k, v)) = pair.split_once("=\"") else {
                    return err("label is not key=\"value\"");
                };
                if !valid_name(k) {
                    return err("bad label name");
                }
                if v.contains('"') {
                    return err("unescaped quote in label value");
                }
            }
        }
        if !seen.insert(series.to_string()) {
            return Err(format!("line {}: duplicate series {series:?}", ln + 1));
        }
    }
    Ok(seen.len())
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k}: {v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "{k}: n={} mean={} p50={} p99={} max={}",
                h.count(),
                h.mean(),
                h.percentile_ref(50.0),
                h.percentile_ref(99.0),
                h.max()
            )?;
        }
        for (k, g) in &self.gauges {
            writeln!(
                f,
                "{k}: buckets={} bucket_width={} mean={:.3}",
                g.len(),
                g.bucket(),
                g.overall_mean()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.bump("tasks");
        m.add("tasks", 4);
        assert_eq!(m.counter("tasks"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for us in [1u64, 2, 3, 4, 100] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean().as_micros(), 22);
        assert_eq!(h.min().as_micros(), 1);
        assert_eq!(h.max().as_micros(), 100);
        assert_eq!(h.p50().as_micros(), 3);
        assert_eq!(h.total(), SimDuration::from_micros(110).as_nanos() as u128);
        assert_eq!(h.checked_total(), Some(SimDuration::from_micros(110)));
    }

    #[test]
    fn total_does_not_saturate_past_u64() {
        // Regression: the old implementation clamped the sum to
        // u64::MAX nanoseconds, silently corrupting long-run totals.
        let mut h = Histogram::new();
        for _ in 0..4 {
            h.record(SimDuration::from_nanos(u64::MAX / 2));
        }
        let expected = (u64::MAX / 2) as u128 * 4;
        assert!(expected > u64::MAX as u128);
        assert_eq!(h.total(), expected);
        assert_eq!(h.checked_total(), None);
        // Small totals still fit.
        let mut small = Histogram::new();
        small.record(SimDuration::from_nanos(7));
        assert_eq!(small.checked_total(), Some(SimDuration::from_nanos(7)));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut h = Histogram::new();
        for us in 1..=100u64 {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.percentile(0.0).as_micros(), 1);
        assert_eq!(h.percentile(100.0).as_micros(), 100);
        assert_eq!(h.p99().as_micros(), 99);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.p99(), SimDuration::ZERO);
        assert!(h.is_empty());
    }

    #[test]
    fn observe_via_metrics() {
        let mut m = Metrics::new();
        m.observe("lat", SimDuration::from_micros(10));
        m.observe("lat", SimDuration::from_micros(20));
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        assert_eq!(m.histogram_mut("lat").mean().as_micros(), 15);
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.add("x", 1);
        a.observe("h", SimDuration::from_micros(1));
        let mut b = Metrics::new();
        b.add("x", 2);
        b.observe("h", SimDuration::from_micros(3));
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn display_lists_everything() {
        let mut m = Metrics::new();
        m.add("c", 7);
        m.observe("h", SimDuration::from_micros(5));
        let s = m.to_string();
        assert!(s.contains("c: 7"));
        assert!(s.contains("h: n=1"));
    }

    #[test]
    fn display_includes_percentiles() {
        let mut m = Metrics::new();
        for us in 1..=100u64 {
            m.observe("lat", SimDuration::from_micros(us));
        }
        let s = m.to_string();
        assert!(s.contains("p50=51.000us"), "missing p50 in {s:?}");
        assert!(s.contains("p99=99.000us"), "missing p99 in {s:?}");
    }

    #[test]
    fn histogram_names_listed() {
        let mut m = Metrics::new();
        m.observe("b", SimDuration::from_micros(1));
        m.observe("a", SimDuration::from_micros(1));
        m.bump("c");
        assert_eq!(m.histogram_names(), vec!["a", "b"]);
        assert_eq!(m.counter_names(), vec!["c"]);
    }

    #[test]
    fn labeled_counters_are_distinct_series() {
        let mut m = Metrics::new();
        m.bump_labeled("tier.hit", &[("tier", "hbm")]);
        m.add_labeled("tier.hit", &[("tier", "pooled")], 2);
        m.bump_labeled("tier.hit", &[("tier", "hbm")]);
        assert_eq!(m.counter_labeled("tier.hit", &[("tier", "hbm")]), 2);
        assert_eq!(m.counter_labeled("tier.hit", &[("tier", "pooled")]), 2);
        assert_eq!(m.counter_labeled("tier.hit", &[("tier", "local")]), 0);
        assert_eq!(m.counter_across_labels("tier.hit"), 4);
    }

    #[test]
    fn label_order_is_canonical() {
        let mut m = Metrics::new();
        m.bump_labeled("x", &[("b", "2"), ("a", "1")]);
        m.bump_labeled("x", &[("a", "1"), ("b", "2")]);
        assert_eq!(m.counter_labeled("x", &[("a", "1"), ("b", "2")]), 2);
        assert_eq!(m.counter_names(), vec!["x{a=1,b=2}"]);
    }

    #[test]
    fn labeled_histograms_record() {
        let mut m = Metrics::new();
        m.observe_labeled("stall", &[("node", "3")], SimDuration::from_micros(4));
        let h = m.histogram_labeled("stall", &[("node", "3")]).unwrap();
        assert_eq!(h.count(), 1);
        assert!(m.histogram_labeled("stall", &[("node", "4")]).is_none());
    }

    #[test]
    fn gauge_buckets_by_time() {
        let mut m = Metrics::new();
        let bucket = SimDuration::from_millis(1);
        m.gauge_record("util", bucket, SimTime::from_micros(100), 0.5);
        m.gauge_record("util", bucket, SimTime::from_micros(200), 1.0);
        m.gauge_record("util", bucket, SimTime::from_micros(1500), 0.0);
        let g = m.gauge("util").unwrap();
        assert_eq!(g.len(), 2);
        let means: Vec<(u64, f64)> = g.means().map(|(t, v)| (t.as_millis(), v)).collect();
        assert_eq!(means, vec![(0, 0.75), (1, 0.0)]);
        assert!((g.overall_mean() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_take_shared_ref() {
        let mut h = Histogram::new();
        for us in 1..=100u64 {
            h.record(SimDuration::from_micros(us));
        }
        let r = &h; // read-only access is enough
        assert_eq!(r.p50().as_micros(), 51);
        assert_eq!(r.p99().as_micros(), 99);
        assert_eq!(r.quantile(0.5), r.percentile(50.0));
        assert_eq!(r.quantile(1.0).as_micros(), 100);
        // The cache invalidates on further mutation.
        h.record(SimDuration::from_micros(1000));
        assert_eq!(h.percentile(100.0).as_micros(), 1000);
    }

    #[test]
    fn prometheus_exposition_round_trips() {
        let mut m = Metrics::new();
        m.add("control.msgs", 42);
        m.bump_labeled("tier.hit", &[("tier", "hbm")]);
        m.bump_labeled("tier.hit", &[("tier", "pooled")]);
        for us in 1..=10u64 {
            m.observe("query_latency", SimDuration::from_micros(us));
        }
        m.observe_labeled("stall", &[("node", "3")], SimDuration::from_micros(7));
        m.gauge_record(
            "util",
            SimDuration::from_millis(1),
            SimTime::from_micros(5),
            0.5,
        );
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE control_msgs counter"));
        assert!(text.contains("control_msgs 42"));
        assert!(text.contains("tier_hit{tier=\"hbm\"} 1"));
        assert!(text.contains("query_latency{quantile=\"0.5\"}"));
        assert!(text.contains("query_latency_count 10"));
        assert!(text.contains("stall{node=\"3\",quantile=\"0.99\"} 7000"));
        assert!(text.contains("util 0.500000"));
        let series = validate_prometheus(&text).expect("exposition validates");
        assert!(series >= 10, "expected many series, got {series}");
        // Determinism: rendering twice is byte-identical.
        assert_eq!(text, m.to_prometheus());
    }

    #[test]
    fn prometheus_validator_rejects_bad_lines() {
        assert!(
            validate_prometheus("ok 1\nok 2").is_err(),
            "duplicate series"
        );
        assert!(validate_prometheus("bad-name 1").is_err(), "bad name");
        assert!(validate_prometheus("x notanumber").is_err(), "bad value");
        assert!(validate_prometheus("x{k=v} 1").is_err(), "unquoted label");
        assert!(validate_prometheus("# HELP anything goes\nx{k=\"v\"} 1").is_ok());
    }

    #[test]
    fn merge_combines_gauges() {
        let bucket = SimDuration::from_millis(1);
        let mut a = Metrics::new();
        a.gauge_record("g", bucket, SimTime::from_micros(10), 1.0);
        let mut b = Metrics::new();
        b.gauge_record("g", bucket, SimTime::from_micros(20), 3.0);
        a.merge(&b);
        assert!((a.gauge("g").unwrap().overall_mean() - 2.0).abs() < 1e-9);
    }
}

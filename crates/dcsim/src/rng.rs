//! Seeded randomness and workload samplers.
//!
//! Every stochastic choice in the reproduction flows through [`DetRng`],
//! which wraps a seeded `StdRng`. The module also provides the samplers the
//! experiments need: Zipf-distributed key popularity (cache workloads) and
//! exponential inter-arrival times (bursty serverless arrivals), both
//! implemented here so their exact sequences are stable across `rand`
//! versions used only for the core generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random source.
///
/// # Examples
///
/// ```
/// use skadi_dcsim::rng::DetRng;
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; `salt` distinguishes
    /// children of the same parent deterministically.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seed(s)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Picks a uniformly random element of a slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher-Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.below((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Exponentially-distributed sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse CDF; clamp the uniform away from 0 to avoid inf.
        let u = self.unit().max(1e-12);
        -mean * u.ln()
    }
}

/// A Zipf-distributed sampler over `n` ranks with exponent `theta`.
///
/// Rank 0 is the most popular. `theta = 0` degenerates to uniform;
/// `theta ~ 0.99` matches common cache-workload skew (YCSB-style).
///
/// Sampling uses a precomputed cumulative table with binary search, which
/// is exact and fast for the `n` values used in the experiments (<= 1M).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(theta.is_finite() && theta >= 0.0, "bad theta {theta}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut p1 = DetRng::seed(9);
        let mut p2 = DetRng::seed(9);
        let mut c1 = p1.fork(1);
        let mut c2 = p2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = p1.fork(2);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = DetRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = DetRng::seed(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(1000, 0.99);
        let mut r = DetRng::seed(6);
        let mut counts = vec![0u64; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        // Rank 0 should dominate rank 500 by a wide margin.
        assert!(
            counts[0] > counts[500] * 20,
            "{} vs {}",
            counts[0],
            counts[500]
        );
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut r = DetRng::seed(8);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.15, "max {max} min {min}");
    }

    #[test]
    fn zipf_all_ranks_reachable() {
        let z = Zipf::new(5, 1.0);
        let mut r = DetRng::seed(10);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut r)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}

//! Per-node compute-slot and memory accounting.
//!
//! The runtime uses this to decide whether a task can start on a node now
//! or must queue, and to model memory pressure that triggers spilling to
//! disaggregated memory (one of the paper's Gen-2 motivations).

use std::fmt;

use crate::time::SimTime;
use crate::topology::{NodeId, NodeKind, Topology};

/// Errors from resource accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// Attempted to free more memory than is reserved.
    UnderflowFree {
        /// Node where the underflow happened.
        node: NodeId,
        /// Bytes the caller tried to free.
        requested: u64,
        /// Bytes actually reserved.
        reserved: u64,
    },
    /// Attempted to release a compute slot that was not held.
    NoSlotHeld(NodeId),
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::UnderflowFree {
                node,
                requested,
                reserved,
            } => write!(
                f,
                "free of {requested} bytes on {node} exceeds reservation {reserved}"
            ),
            ResourceError::NoSlotHeld(node) => {
                write!(f, "no compute slot held on {node}")
            }
        }
    }
}

impl std::error::Error for ResourceError {}

/// Accounting state for one node.
#[derive(Debug, Clone)]
struct NodeState {
    total_slots: u32,
    busy_slots: u32,
    total_mem: u64,
    used_mem: u64,
    /// Earliest time each busy slot frees up; used for queue-time estimates.
    slot_free_at: Vec<SimTime>,
}

/// Compute-slot and memory ledger for every node in a topology.
#[derive(Debug, Clone)]
pub struct NodeResources {
    nodes: Vec<NodeState>,
}

impl NodeResources {
    /// Builds the ledger from a topology. Servers get their CPU slots;
    /// accelerator devices get their op slots; memory blades and durable
    /// storage get zero compute slots.
    pub fn new(topo: &Topology) -> Self {
        let nodes = topo
            .nodes()
            .iter()
            .map(|n| {
                let (slots, mem) = match n.kind {
                    NodeKind::Server(s) => (s.cpu_slots, s.dram_bytes),
                    NodeKind::AccelDevice(_, a) => (a.op_slots, a.hbm_bytes),
                    NodeKind::MemoryBlade(m) => (0, m.dram_bytes),
                    NodeKind::DurableStorage(_) => (0, u64::MAX),
                };
                NodeState {
                    total_slots: slots,
                    busy_slots: 0,
                    total_mem: mem,
                    used_mem: 0,
                    slot_free_at: Vec::new(),
                }
            })
            .collect();
        NodeResources { nodes }
    }

    /// Number of free compute slots on a node.
    pub fn free_slots(&self, node: NodeId) -> u32 {
        let s = &self.nodes[node.index()];
        s.total_slots - s.busy_slots
    }

    /// Total compute slots on a node.
    pub fn total_slots(&self, node: NodeId) -> u32 {
        self.nodes[node.index()].total_slots
    }

    /// Tries to claim one compute slot; `busy_until` is the caller's
    /// estimate of when the slot frees (used for wait-time estimation).
    /// Returns false if the node is saturated.
    pub fn try_claim_slot(&mut self, node: NodeId, busy_until: SimTime) -> bool {
        let s = &mut self.nodes[node.index()];
        if s.busy_slots >= s.total_slots {
            return false;
        }
        s.busy_slots += 1;
        s.slot_free_at.push(busy_until);
        true
    }

    /// Releases one compute slot.
    pub fn release_slot(&mut self, node: NodeId) -> Result<(), ResourceError> {
        let s = &mut self.nodes[node.index()];
        if s.busy_slots == 0 {
            return Err(ResourceError::NoSlotHeld(node));
        }
        s.busy_slots -= 1;
        // Drop the earliest completion estimate; exact pairing is not
        // needed, the vector only feeds heuristics.
        if let Some((idx, _)) = s.slot_free_at.iter().enumerate().min_by_key(|(_, t)| **t) {
            s.slot_free_at.swap_remove(idx);
        }
        Ok(())
    }

    /// Estimate of the earliest time a slot will free on a saturated node;
    /// `now` if a slot is already free.
    pub fn earliest_slot(&self, node: NodeId, now: SimTime) -> SimTime {
        let s = &self.nodes[node.index()];
        if s.busy_slots < s.total_slots {
            return now;
        }
        s.slot_free_at.iter().copied().min().unwrap_or(now).max(now)
    }

    /// Bytes of memory currently reserved on a node.
    pub fn used_memory(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].used_mem
    }

    /// Bytes of memory still available on a node.
    pub fn free_memory(&self, node: NodeId) -> u64 {
        let s = &self.nodes[node.index()];
        s.total_mem - s.used_mem
    }

    /// Fraction of memory in use, in `[0, 1]`.
    pub fn memory_pressure(&self, node: NodeId) -> f64 {
        let s = &self.nodes[node.index()];
        if s.total_mem == 0 || s.total_mem == u64::MAX {
            return 0.0;
        }
        s.used_mem as f64 / s.total_mem as f64
    }

    /// Tries to reserve `bytes` of memory; returns false if it would
    /// overcommit.
    pub fn try_reserve_memory(&mut self, node: NodeId, bytes: u64) -> bool {
        let s = &mut self.nodes[node.index()];
        if s.total_mem != u64::MAX && s.used_mem.saturating_add(bytes) > s.total_mem {
            return false;
        }
        s.used_mem = s.used_mem.saturating_add(bytes);
        true
    }

    /// Frees `bytes` of reserved memory.
    pub fn free_memory_bytes(&mut self, node: NodeId, bytes: u64) -> Result<(), ResourceError> {
        let s = &mut self.nodes[node.index()];
        if bytes > s.used_mem {
            return Err(ResourceError::UnderflowFree {
                node,
                requested: bytes,
                reserved: s.used_mem,
            });
        }
        s.used_mem -= bytes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::presets;

    #[test]
    fn slots_claim_and_release() {
        let topo = presets::server_cluster(1, 1);
        let mut res = NodeResources::new(&topo);
        let n = topo.servers()[0];
        let total = res.total_slots(n);
        assert_eq!(res.free_slots(n), total);
        assert!(res.try_claim_slot(n, SimTime::from_micros(10)));
        assert_eq!(res.free_slots(n), total - 1);
        res.release_slot(n).unwrap();
        assert_eq!(res.free_slots(n), total);
    }

    #[test]
    fn saturated_node_rejects_claims() {
        let topo = presets::server_cluster(1, 1);
        let mut res = NodeResources::new(&topo);
        let n = topo.servers()[0];
        for _ in 0..res.total_slots(n) {
            assert!(res.try_claim_slot(n, SimTime::ZERO));
        }
        assert!(!res.try_claim_slot(n, SimTime::ZERO));
    }

    #[test]
    fn release_without_claim_errors() {
        let topo = presets::server_cluster(1, 1);
        let mut res = NodeResources::new(&topo);
        let n = topo.servers()[0];
        assert!(matches!(
            res.release_slot(n),
            Err(ResourceError::NoSlotHeld(_))
        ));
    }

    #[test]
    fn earliest_slot_reports_min_completion() {
        let topo = presets::server_cluster(1, 1);
        let mut res = NodeResources::new(&topo);
        let n = topo.servers()[0];
        let total = res.total_slots(n);
        for i in 0..total {
            res.try_claim_slot(n, SimTime::from_micros(100 + i as u64));
        }
        assert_eq!(
            res.earliest_slot(n, SimTime::ZERO),
            SimTime::from_micros(100)
        );
        // With a free slot, the answer is `now`.
        res.release_slot(n).unwrap();
        assert_eq!(
            res.earliest_slot(n, SimTime::from_micros(7)),
            SimTime::from_micros(7)
        );
    }

    #[test]
    fn memory_reserve_free_and_pressure() {
        let topo = presets::server_cluster(1, 1);
        let mut res = NodeResources::new(&topo);
        let n = topo.servers()[0];
        let cap = res.free_memory(n);
        assert!(res.try_reserve_memory(n, cap / 2));
        assert!((res.memory_pressure(n) - 0.5).abs() < 1e-9);
        assert!(!res.try_reserve_memory(n, cap));
        res.free_memory_bytes(n, cap / 2).unwrap();
        assert_eq!(res.used_memory(n), 0);
    }

    #[test]
    fn memory_free_underflow_errors() {
        let topo = presets::server_cluster(1, 1);
        let mut res = NodeResources::new(&topo);
        let n = topo.servers()[0];
        res.try_reserve_memory(n, 10);
        let err = res.free_memory_bytes(n, 20).unwrap_err();
        assert!(matches!(err, ResourceError::UnderflowFree { .. }));
        assert!(err.to_string().contains("exceeds reservation"));
    }

    #[test]
    fn durable_storage_has_infinite_memory() {
        let topo = presets::small_disagg_cluster();
        let mut res = NodeResources::new(&topo);
        let d = topo.durable_storage().unwrap();
        assert!(res.try_reserve_memory(d, u64::MAX / 2));
        assert_eq!(res.memory_pressure(d), 0.0);
    }
}

//! Causal span tracing over virtual time.
//!
//! A [`Span`] is one named interval of simulated time attributed to a
//! component (a node, the scheduler, the network fabric), optionally
//! linked to a parent span, carrying free-form key/value attributes.
//! Spans are collected by a [`Tracer`] sink while a simulation runs and
//! frozen into a [`Trace`] afterwards.
//!
//! Because the simulator is deterministic — virtual clock, seeded RNG,
//! FIFO event ties — the same seed produces the *byte-identical* trace
//! export every run. That makes the tracer a correctness tool: tests
//! assert on span counts and shapes, not just aggregate numbers.
//!
//! Two exports are provided, both hand-rolled on std only:
//!
//! * [`Trace::to_chrome_json`] — Chrome `trace_event` JSON, loadable in
//!   Perfetto or `chrome://tracing`. One track (tid) per component.
//! * [`Trace::critical_path_summary`] — plain-text "top stall
//!   contributors" over the job's critical path, computed from the span
//!   tree (task spans link to their producers via the `deps` attribute).
//!
//! # Well-formedness
//!
//! A finished [`Trace`] maintains, and [`Trace::validate`] checks:
//!
//! 1. span ids are unique and strictly increasing in storage order;
//! 2. every parent id exists, and a parent is always opened before its
//!    children (`parent.id < child.id`);
//! 3. `end >= start` for every span;
//! 4. child intervals nest inside their parent's interval;
//! 5. spans are canonically ordered by `(start, id)`, so per-component
//!    timestamps are monotone.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Identifier of one span within a trace. Real spans start at 1;
/// [`SpanId::NONE`] is the sentinel handed out by a disabled tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Sentinel id returned when tracing is disabled.
    pub const NONE: SpanId = SpanId(0);

    /// True if this is the disabled-tracer sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Span taxonomy. The category drives the `cat` field of the Chrome
/// export and the grouping of the critical-path summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Whole-job root span.
    Job,
    /// Per-task umbrella span (dispatch through output durability).
    Task,
    /// Scheduler decision + control message delivering a task to a node.
    Dispatch,
    /// Task sitting ready but not running (slot or input waits).
    Wait,
    /// Task executing on a device.
    Run,
    /// One future-resolution round trip (pull or push).
    Resolve,
    /// A single control-plane message hop.
    Control,
    /// A data transfer.
    Data,
    /// Memory-tier read or write.
    TierAccess,
    /// Demotion of bytes to a colder tier.
    Spill,
    /// Replica write for fault tolerance.
    Replicate,
    /// Erasure-coded shard write.
    EcWrite,
    /// Lineage-based re-execution of a lost output.
    Recovery,
    /// Sandbox/runtime cold start before first execution.
    ColdStart,
    /// Placement decision (candidates considered, choice made).
    Placement,
    /// Autoscaler provisioning or retiring devices.
    Autoscale,
    /// Control-plane failover: scheduler election + state reconstruction.
    Election,
    /// Local SQL execution operator (real wall-clock compute, mapped onto
    /// the virtual timeline so it can sit side-by-side with priced spans).
    Exec,
}

impl Category {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Job => "job",
            Category::Task => "task",
            Category::Dispatch => "dispatch",
            Category::Wait => "wait",
            Category::Run => "run",
            Category::Resolve => "resolve",
            Category::Control => "control",
            Category::Data => "data",
            Category::TierAccess => "tier",
            Category::Spill => "spill",
            Category::Replicate => "replicate",
            Category::EcWrite => "ec",
            Category::Recovery => "recovery",
            Category::ColdStart => "coldstart",
            Category::Placement => "placement",
            Category::Autoscale => "autoscale",
            Category::Election => "election",
            Category::Exec => "exec",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One traced interval of virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub name: String,
    pub component: String,
    pub category: Category,
    pub start: SimTime,
    pub end: SimTime,
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Looks up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Collects spans during a simulation run.
///
/// A disabled tracer costs one branch per call and records nothing,
/// handing out [`SpanId::NONE`] so instrumentation sites need no
/// conditionals of their own.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    next_id: u64,
    spans: Vec<Span>,
}

impl Tracer {
    /// Creates a tracer; `enabled = false` makes every call a no-op.
    pub fn new(enabled: bool) -> Self {
        Tracer {
            enabled,
            next_id: 1,
            spans: Vec::new(),
        }
    }

    /// True if spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Records a complete span in one call.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        name: &str,
        component: &str,
        category: Category,
        parent: Option<SpanId>,
        start: SimTime,
        end: SimTime,
        attrs: &[(&str, &str)],
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let id = self.alloc();
        self.spans.push(Span {
            id,
            parent: parent.filter(|p| !p.is_none()),
            name: name.to_string(),
            component: component.to_string(),
            category,
            start,
            end,
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
        id
    }

    /// Opens a span whose end is not yet known (placeholder `end =
    /// start`); close it with [`Tracer::close`]. Opening before children
    /// keeps parent ids smaller than child ids.
    pub fn open(
        &mut self,
        name: &str,
        component: &str,
        category: Category,
        parent: Option<SpanId>,
        start: SimTime,
    ) -> SpanId {
        self.span(name, component, category, parent, start, start, &[])
    }

    /// Sets the end time of an open span. No-op for the disabled
    /// sentinel; panics on an unknown real id (an instrumentation bug).
    pub fn close(&mut self, id: SpanId, end: SimTime) {
        if id.is_none() {
            return;
        }
        let s = self.get_mut(id);
        debug_assert!(end >= s.start, "span {id} closed before it started");
        s.end = s.end.max(end);
    }

    /// Appends an attribute to an already-recorded span.
    pub fn attr(&mut self, id: SpanId, key: &str, value: &str) {
        if id.is_none() {
            return;
        }
        self.get_mut(id)
            .attrs
            .push((key.to_string(), value.to_string()));
    }

    /// Extends a span's interval to cover `end` (used when late children
    /// — e.g. replica writes landing after task finish — must stay
    /// nested).
    pub fn cover(&mut self, id: SpanId, end: SimTime) {
        self.close(id, end);
    }

    /// Latest end time across recorded spans (`SimTime::ZERO` when
    /// empty). Useful for closing a root span over all its children.
    pub fn latest_end(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    fn alloc(&mut self) -> SpanId {
        let id = SpanId(self.next_id);
        self.next_id += 1;
        id
    }

    fn get_mut(&mut self, id: SpanId) -> &mut Span {
        // Ids are dense from 1 in emission order.
        self.spans
            .get_mut((id.0 - 1) as usize)
            .unwrap_or_else(|| panic!("unknown span id {id}"))
    }

    /// Freezes the tracer into a canonically-ordered [`Trace`].
    pub fn finish(self) -> Trace {
        let mut spans = self.spans;
        spans.sort_by_key(|s| (s.start, s.id));
        Trace { spans }
    }
}

/// An immutable, canonically-ordered collection of spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// All spans, ordered by `(start, id)`.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of spans in a category.
    pub fn count_category(&self, category: Category) -> usize {
        self.spans.iter().filter(|s| s.category == category).count()
    }

    /// Spans attributed to one component, in canonical order.
    pub fn for_component<'a>(&'a self, component: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.component == component)
    }

    /// Checks the well-formedness contract (see module docs). Returns a
    /// description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut by_id: BTreeMap<SpanId, &Span> = BTreeMap::new();
        for s in &self.spans {
            if s.id.is_none() {
                return Err(format!("span {:?} has the sentinel id", s.name));
            }
            if by_id.insert(s.id, s).is_some() {
                return Err(format!("duplicate span id {}", s.id));
            }
            if s.end < s.start {
                return Err(format!(
                    "span {} ({}) ends {} before it starts {}",
                    s.id, s.name, s.end, s.start
                ));
            }
        }
        for s in &self.spans {
            if let Some(p) = s.parent {
                let parent = by_id.get(&p).ok_or_else(|| {
                    format!("span {} ({}) has missing parent {}", s.id, s.name, p)
                })?;
                if parent.id >= s.id {
                    return Err(format!(
                        "span {} ({}) opened before its parent {}",
                        s.id, s.name, p
                    ));
                }
                if s.start < parent.start || s.end > parent.end {
                    return Err(format!(
                        "span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
                        s.id,
                        s.name,
                        s.start,
                        s.end,
                        parent.id,
                        parent.name,
                        parent.start,
                        parent.end
                    ));
                }
            }
        }
        let mut last: Option<(SimTime, SpanId)> = None;
        for s in &self.spans {
            let key = (s.start, s.id);
            if let Some(prev) = last {
                if key < prev {
                    return Err(format!(
                        "trace not canonically ordered at span {} ({})",
                        s.id, s.name
                    ));
                }
            }
            last = Some(key);
        }
        // Canonical order implies per-component monotone starts; check
        // the stated property directly anyway.
        let mut per_component: BTreeMap<&str, SimTime> = BTreeMap::new();
        for s in &self.spans {
            let entry = per_component.entry(&s.component).or_insert(s.start);
            if s.start < *entry {
                return Err(format!(
                    "component {} timestamps not monotone at span {}",
                    s.component, s.id
                ));
            }
            *entry = s.start;
        }
        Ok(())
    }

    /// Serializes to Chrome `trace_event` JSON (the "JSON Array Format"
    /// wrapped in an object), loadable in Perfetto and
    /// `chrome://tracing`. Timestamps are microseconds with nanosecond
    /// precision; each component gets its own thread track.
    pub fn to_chrome_json(&self) -> String {
        let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
        for s in &self.spans {
            let next = tids.len() as u64 + 1;
            tids.entry(&s.component).or_insert(next);
        }
        let mut out = String::with_capacity(128 + self.spans.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"skadi-sim\"}}",
        );
        // Components sorted by tid for a stable, readable track order.
        let mut by_tid: Vec<(&str, u64)> = tids.iter().map(|(c, t)| (*c, *t)).collect();
        by_tid.sort_by_key(|(_, t)| *t);
        for (component, tid) in &by_tid {
            out.push_str(&format!(
                ",{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(component)
            ));
        }
        for s in &self.spans {
            let tid = tids[s.component.as_str()];
            out.push_str(&format!(
                ",{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\
                 \"ts\":{},\"dur\":{},\"args\":{{\"span_id\":{}",
                escape_json(&s.name),
                s.category.as_str(),
                format_us(s.start.as_nanos()),
                format_us(s.duration().as_nanos()),
                s.id
            ));
            if let Some(p) = s.parent {
                out.push_str(&format!(",\"parent\":{p}"));
            }
            for (k, v) in &s.attrs {
                out.push_str(&format!(",\"{}\":\"{}\"", escape_json(k), escape_json(v)));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Walks the critical path: starting from the latest-finishing task
    /// span, repeatedly steps to the latest-finishing producer named in
    /// the task's `deps` attribute. Returns spans in execution order.
    pub fn critical_path(&self) -> Vec<&Span> {
        let tasks: BTreeMap<&str, &Span> = self
            .spans
            .iter()
            .filter(|s| s.category == Category::Task)
            .filter_map(|s| s.attr("task").map(|t| (t, s)))
            .collect();
        let mut cur = match tasks.values().max_by_key(|s| (s.end, s.id)) {
            Some(s) => *s,
            None => return Vec::new(),
        };
        let mut path = vec![cur];
        for _ in 0..tasks.len() {
            let next = cur
                .attr("deps")
                .into_iter()
                .flat_map(|d| d.split(','))
                .filter(|d| !d.is_empty())
                .filter_map(|d| tasks.get(d).copied())
                .max_by_key(|s| (s.end, s.id));
            match next {
                Some(s) => {
                    path.push(s);
                    cur = s;
                }
                None => break,
            }
        }
        path.reverse();
        path
    }

    /// Plain-text per-job critical-path summary: the top `top` stall
    /// contributors (non-`Run` child spans of tasks on the critical
    /// path), grouped by span name.
    pub fn critical_path_summary(&self, top: usize) -> String {
        let path = self.critical_path();
        if path.is_empty() {
            return "critical path: no task spans in trace\n".to_string();
        }
        let on_path: Vec<SpanId> = path.iter().map(|s| s.id).collect();
        let mut compute = SimDuration::ZERO;
        let mut stalls: BTreeMap<&str, (SimDuration, usize)> = BTreeMap::new();
        for s in &self.spans {
            let Some(p) = s.parent else { continue };
            if !on_path.contains(&p) {
                continue;
            }
            if s.category == Category::Run {
                compute += s.duration();
            } else {
                let e = stalls.entry(&s.name).or_insert((SimDuration::ZERO, 0));
                e.0 += s.duration();
                e.1 += 1;
            }
        }
        let first = path.first().expect("non-empty path");
        let last = path.last().expect("non-empty path");
        let span_time = last.end.saturating_since(first.start);
        let stall_total: SimDuration = stalls.values().map(|(d, _)| *d).sum();
        let mut ranked: Vec<(&str, SimDuration, usize)> =
            stalls.iter().map(|(n, (d, c))| (*n, *d, *c)).collect();
        ranked.sort_by(|a, b| (b.1, a.0).cmp(&(a.1, b.0)));
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: {} tasks ({}), end-to-end {}, compute {}, stalls {}\n",
            path.len(),
            path.iter()
                .filter_map(|s| s.attr("task"))
                .collect::<Vec<_>>()
                .join(" -> "),
            span_time,
            compute,
            stall_total,
        ));
        out.push_str(&format!(
            "top {} stall contributors:\n",
            top.min(ranked.len())
        ));
        for (name, dur, count) in ranked.iter().take(top) {
            let pct = if stall_total > SimDuration::ZERO {
                dur.as_nanos() as f64 * 100.0 / stall_total.as_nanos() as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {name:<20} {dur:>12}  {pct:5.1}%  ({count} spans)\n"
            ));
        }
        out
    }
}

/// Formats nanoseconds as a microsecond value with up to three decimal
/// places and no trailing zeros (keeps exports compact and byte-stable).
fn format_us(nanos: u64) -> String {
    let whole = nanos / 1_000;
    let frac = nanos % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let s = format!("{whole}.{frac:03}");
        s.trim_end_matches('0').to_string()
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON well-formedness check (std-only), used by tests and the
/// CLI to sanity-check exports. Accepts exactly the RFC 8259 grammar;
/// returns false on trailing garbage.
pub fn json_is_wellformed(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0;
    if !parse_value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6);
                    match hex {
                        Some(h) if h.iter().all(u8::is_ascii_hexdigit) => *pos += 6,
                        _ => return false,
                    }
                }
                _ => return false,
            },
            0x00..=0x1f => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == digits_start {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_start {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_start {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::new(false);
        let id = tr.span("x", "c", Category::Run, None, t(0), t(1), &[]);
        assert!(id.is_none());
        tr.close(id, t(5));
        tr.attr(id, "k", "v");
        assert!(tr.is_empty());
        assert!(tr.finish().is_empty());
    }

    #[test]
    fn open_close_and_nesting() {
        let mut tr = Tracer::new(true);
        let root = tr.open("job", "driver", Category::Job, None, t(0));
        let child = tr.span(
            "task.run",
            "node-1",
            Category::Run,
            Some(root),
            t(2),
            t(8),
            &[("task", "a")],
        );
        tr.close(root, t(10));
        let trace = tr.finish();
        assert_eq!(trace.len(), 2);
        trace.validate().expect("well-formed");
        let s = &trace.spans()[1];
        assert_eq!(s.id, child);
        assert_eq!(s.attr("task"), Some("a"));
        assert_eq!(s.duration(), SimDuration::from_micros(6));
    }

    #[test]
    fn validate_catches_missing_parent() {
        let mut tr = Tracer::new(true);
        tr.span("x", "c", Category::Run, Some(SpanId(99)), t(0), t(1), &[]);
        let err = tr.finish().validate().unwrap_err();
        assert!(err.contains("missing parent"), "{err}");
    }

    #[test]
    fn validate_catches_escaping_child() {
        let mut tr = Tracer::new(true);
        let p = tr.span("p", "c", Category::Task, None, t(5), t(10), &[]);
        tr.span("kid", "c", Category::Run, Some(p), t(4), t(9), &[]);
        let err = tr.finish().validate().unwrap_err();
        assert!(err.contains("escapes parent"), "{err}");
    }

    #[test]
    fn canonical_order_sorts_by_start_then_id() {
        let mut tr = Tracer::new(true);
        tr.span("late", "c", Category::Run, None, t(9), t(10), &[]);
        tr.span("early", "c", Category::Run, None, t(1), t(2), &[]);
        let trace = tr.finish();
        let names: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["early", "late"]);
        trace.validate().expect("well-formed");
    }

    #[test]
    fn chrome_export_is_wellformed_json() {
        let mut tr = Tracer::new(true);
        let root = tr.open("job", "driver", Category::Job, None, t(0));
        for i in 0..20 {
            tr.span(
                "task.run",
                &format!("node-{}", i % 3),
                Category::Run,
                Some(root),
                t(i),
                t(i + 1),
                &[("task", &format!("t{i}")), ("quote", "a\"b")],
            );
        }
        tr.close(root, t(30));
        let json = tr.finish().to_chrome_json();
        assert!(json_is_wellformed(&json), "bad JSON: {json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("a\\\"b"));
    }

    #[test]
    fn chrome_export_is_deterministic() {
        let build = || {
            let mut tr = Tracer::new(true);
            let root = tr.open("job", "driver", Category::Job, None, t(0));
            let a = tr.span("task.run", "n1", Category::Run, Some(root), t(1), t(4), &[]);
            tr.attr(a, "task", "a");
            tr.close(root, t(5));
            tr.finish().to_chrome_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn critical_path_follows_deps() {
        let mut tr = Tracer::new(true);
        let a = tr.span(
            "task",
            "n1",
            Category::Task,
            None,
            t(0),
            t(10),
            &[("task", "a"), ("deps", "")],
        );
        tr.span("task.run", "n1", Category::Run, Some(a), t(1), t(10), &[]);
        let b = tr.span(
            "task",
            "n2",
            Category::Task,
            None,
            t(10),
            t(30),
            &[("task", "b"), ("deps", "a")],
        );
        tr.span(
            "task.wait",
            "n2",
            Category::Wait,
            Some(b),
            t(10),
            t(18),
            &[],
        );
        tr.span("task.run", "n2", Category::Run, Some(b), t(18), t(30), &[]);
        let trace = tr.finish();
        let path: Vec<&str> = trace
            .critical_path()
            .iter()
            .filter_map(|s| s.attr("task"))
            .collect();
        assert_eq!(path, vec!["a", "b"]);
        let summary = trace.critical_path_summary(5);
        assert!(summary.contains("2 tasks (a -> b)"), "{summary}");
        assert!(summary.contains("task.wait"), "{summary}");
    }

    #[test]
    fn json_checker_accepts_and_rejects() {
        assert!(json_is_wellformed("{}"));
        assert!(json_is_wellformed("[1, 2.5, -3e4, \"x\\n\", true, null]"));
        assert!(json_is_wellformed("{\"a\":{\"b\":[{}]}}"));
        assert!(!json_is_wellformed("{"));
        assert!(!json_is_wellformed("{\"a\":}"));
        assert!(!json_is_wellformed("[1,]"));
        assert!(!json_is_wellformed("{} extra"));
        assert!(!json_is_wellformed("\"unterminated"));
    }

    #[test]
    fn format_us_trims_zeros() {
        assert_eq!(super::format_us(0), "0");
        assert_eq!(super::format_us(1_000), "1");
        assert_eq!(super::format_us(1_500), "1.5");
        assert_eq!(super::format_us(1_234), "1.234");
        assert_eq!(super::format_us(999), "0.999");
    }
}

//! Deterministic discrete-event queue.
//!
//! The queue is generic over the event payload `E`, so each downstream
//! layer (the runtime's cluster simulation, the cache simulator, unit
//! tests) defines its own event enum and drives its own loop:
//!
//! ```
//! use skadi_dcsim::engine::EventQueue;
//! use skadi_dcsim::time::{SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule_after(SimDuration::from_micros(5), "second");
//! q.schedule_after(SimDuration::from_micros(1), "first");
//! let mut seen = Vec::new();
//! while let Some((t, e)) = q.pop() {
//!     seen.push((t.as_micros(), e));
//! }
//! assert_eq!(seen, vec![(1, "first"), (5, "second")]);
//! ```
//!
//! Two events at the same instant are delivered in the order they were
//! scheduled (FIFO per timestamp), which makes simulations reproducible
//! even when cost models collapse many message latencies to equal values.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// One queued event: delivery time, tie-breaking sequence number, payload.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic priority queue of timed events.
///
/// The queue tracks the current virtual time: [`EventQueue::pop`] advances
/// `now()` to the popped event's timestamp. Scheduling an event in the past
/// is a causality violation and panics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Schedules `event` for delivery at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: an event scheduled
    /// in the past indicates a bug in the caller's cost model.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling event in the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` for delivery `after` from the current time.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) {
        let at = self.now + after;
        self.schedule_at(at, event);
    }

    /// Schedules `event` for delivery at the current instant (after all
    /// events already queued for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.delivered += 1;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// All events pending at exactly time `at`, in delivery (FIFO) order,
    /// without popping them. An inspection hook for handlers that want to
    /// batch work across same-instant events (e.g. executing every task
    /// that completes at one simulated timestamp together).
    pub fn pending_at(&self, at: SimTime) -> Vec<&E> {
        let mut v: Vec<(u64, &E)> = self
            .heap
            .iter()
            .filter(|e| e.time == at)
            .map(|e| (e.seq, &e.event))
            .collect();
        v.sort_unstable_by_key(|&(seq, _)| seq);
        v.into_iter().map(|(_, e)| e).collect()
    }

    /// Runs the queue to exhaustion, passing each event to `handler`.
    ///
    /// The handler receives the queue itself so it can schedule follow-up
    /// events. Returns the final virtual time.
    pub fn run<S, F>(&mut self, state: &mut S, mut handler: F) -> SimTime
    where
        F: FnMut(&mut Self, &mut S, SimTime, E),
    {
        while let Some((t, e)) = self.pop() {
            handler(self, state, t, e);
        }
        self.now
    }

    /// Runs until the queue is empty or `deadline` is reached; events at
    /// exactly the deadline are still delivered.
    pub fn run_until<S, F>(&mut self, state: &mut S, deadline: SimTime, mut handler: F) -> SimTime
    where
        F: FnMut(&mut Self, &mut S, SimTime, E),
    {
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let (t, e) = self.pop().expect("peeked event vanished");
            handler(self, state, t, e);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "scheduling event in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(5), 1);
        q.pop();
        q.schedule_at(SimTime::from_micros(1), 2);
    }

    #[test]
    fn run_drives_cascading_events() {
        // Each event below 5 schedules its successor 1us later.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 0u32);
        let mut seen = Vec::new();
        let end = q.run(&mut seen, |q, seen, _t, e| {
            seen.push(e);
            if e < 5 {
                q.schedule_after(SimDuration::from_micros(1), e + 1);
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(end, SimTime::from_micros(5));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut q = EventQueue::new();
        for i in 1..=10u64 {
            q.schedule_at(SimTime::from_micros(i), i);
        }
        let mut seen = Vec::new();
        q.run_until(&mut seen, SimTime::from_micros(4), |_q, seen, _t, e| {
            seen.push(e)
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn delivered_counts_events() {
        let mut q = EventQueue::new();
        q.schedule_now(());
        q.schedule_now(());
        q.pop();
        q.pop();
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, "a");
        q.schedule_now("b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b"]);
    }
}

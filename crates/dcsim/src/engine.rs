//! Deterministic discrete-event queue.
//!
//! The queue is generic over the event payload `E`, so each downstream
//! layer (the runtime's cluster simulation, the cache simulator, unit
//! tests) defines its own event enum and drives its own loop:
//!
//! ```
//! use skadi_dcsim::engine::EventQueue;
//! use skadi_dcsim::time::{SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule_after(SimDuration::from_micros(5), "second");
//! q.schedule_after(SimDuration::from_micros(1), "first");
//! let mut seen = Vec::new();
//! while let Some((t, e)) = q.pop() {
//!     seen.push((t.as_micros(), e));
//! }
//! assert_eq!(seen, vec![(1, "first"), (5, "second")]);
//! ```
//!
//! Two events at the same instant are delivered in the order they were
//! scheduled (FIFO per timestamp), which makes simulations reproducible
//! even when cost models collapse many message latencies to equal values.
//!
//! # Implementation: a time-bucketed calendar
//!
//! Events live in per-timestamp FIFO buckets rather than one global
//! binary heap. The earliest bucket is cached out of the tree, so the
//! hot path of a discrete-event simulation — pop an event at `now`,
//! schedule follow-ups at or near `now`, inspect the other events
//! pending at the same instant — runs in O(1) per event instead of
//! O(log n) heap churn plus, for [`EventQueue::pending_at`], a full
//! O(n) sweep of the heap. At 10k simulated nodes the pending set is
//! large and same-instant ties are common (cost models collapse many
//! latencies to equal values), which is exactly the regime where the
//! bucket layout wins; `sched-bench` measures the effect.
//!
//! Ordering is identical to the old heap: buckets drain in ascending
//! time order and each bucket is FIFO in scheduling order.

use std::collections::{BTreeMap, VecDeque};

use crate::time::{SimDuration, SimTime};

/// A deterministic priority queue of timed events.
///
/// The queue tracks the current virtual time: [`EventQueue::pop`] advances
/// `now()` to the popped event's timestamp. Scheduling an event in the past
/// is a causality violation and panics.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Timestamp of the `front` bucket (meaningful only when `len > 0`).
    front_time: SimTime,
    /// The earliest pending bucket, cached out of `later` so same-instant
    /// scheduling, popping, and inspection never touch the tree.
    front: VecDeque<E>,
    /// Buckets strictly after `front_time`, keyed by delivery time.
    later: BTreeMap<SimTime, VecDeque<E>>,
    len: usize,
    now: SimTime,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            front_time: SimTime::ZERO,
            front: VecDeque::new(),
            later: BTreeMap::new(),
            len: 0,
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Schedules `event` for delivery at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: an event scheduled
    /// in the past indicates a bug in the caller's cost model.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling event in the past: {at} < now {}",
            self.now
        );
        if self.len == 0 {
            self.front_time = at;
            self.front.push_back(event);
        } else if at == self.front_time {
            self.front.push_back(event);
        } else if at > self.front_time {
            self.later.entry(at).or_default().push_back(event);
        } else {
            // New earliest time: demote the cached bucket into the tree.
            let old = std::mem::take(&mut self.front);
            self.later.insert(self.front_time, old);
            self.front_time = at;
            self.front.push_back(event);
        }
        self.len += 1;
    }

    /// Schedules `event` for delivery `after` from the current time.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) {
        let at = self.now + after;
        self.schedule_at(at, event);
    }

    /// Schedules `event` for delivery at the current instant (after all
    /// events already queued for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let t = self.front_time;
        let event = self.front.pop_front().expect("front bucket non-empty");
        self.after_front_pop(t);
        Some((t, event))
    }

    /// Removes and returns the entire earliest bucket — every event
    /// pending at the next timestamp, in FIFO order — advancing the clock
    /// to that timestamp. The batched form of [`EventQueue::pop`] for
    /// handlers that drain all same-instant events together.
    pub fn pop_batch(&mut self) -> Option<(SimTime, Vec<E>)> {
        if self.len == 0 {
            return None;
        }
        let t = self.front_time;
        let batch: Vec<E> = std::mem::take(&mut self.front).into_iter().collect();
        debug_assert!(t >= self.now);
        self.now = t;
        self.delivered += batch.len() as u64;
        self.len -= batch.len();
        self.promote_next_bucket();
        Some((t, batch))
    }

    fn after_front_pop(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        self.now = t;
        self.delivered += 1;
        self.len -= 1;
        if self.front.is_empty() {
            self.promote_next_bucket();
        }
    }

    fn promote_next_bucket(&mut self) {
        if let Some((t, bucket)) = self.later.pop_first() {
            self.front_time = t;
            self.front = bucket;
        }
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        (self.len > 0).then_some(self.front_time)
    }

    /// All events pending at exactly time `at`, in delivery (FIFO) order,
    /// without popping them. An inspection hook for handlers that want to
    /// batch work across same-instant events (e.g. executing every task
    /// that completes at one simulated timestamp together). O(bucket), not
    /// O(queue): the bucket layout indexes events by timestamp.
    pub fn pending_at(&self, at: SimTime) -> Vec<&E> {
        if self.len > 0 && at == self.front_time {
            self.front.iter().collect()
        } else {
            self.later
                .get(&at)
                .map(|b| b.iter().collect())
                .unwrap_or_default()
        }
    }

    /// Runs the queue to exhaustion, passing each event to `handler`.
    ///
    /// The handler receives the queue itself so it can schedule follow-up
    /// events. Returns the final virtual time.
    pub fn run<S, F>(&mut self, state: &mut S, mut handler: F) -> SimTime
    where
        F: FnMut(&mut Self, &mut S, SimTime, E),
    {
        while let Some((t, e)) = self.pop() {
            handler(self, state, t, e);
        }
        self.now
    }

    /// Runs until the queue is empty or `deadline` is reached; events at
    /// exactly the deadline are still delivered.
    pub fn run_until<S, F>(&mut self, state: &mut S, deadline: SimTime, mut handler: F) -> SimTime
    where
        F: FnMut(&mut Self, &mut S, SimTime, E),
    {
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let (t, e) = self.pop().expect("peeked event vanished");
            handler(self, state, t, e);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "scheduling event in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(5), 1);
        q.pop();
        q.schedule_at(SimTime::from_micros(1), 2);
    }

    #[test]
    fn run_drives_cascading_events() {
        // Each event below 5 schedules its successor 1us later.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 0u32);
        let mut seen = Vec::new();
        let end = q.run(&mut seen, |q, seen, _t, e| {
            seen.push(e);
            if e < 5 {
                q.schedule_after(SimDuration::from_micros(1), e + 1);
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(end, SimTime::from_micros(5));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut q = EventQueue::new();
        for i in 1..=10u64 {
            q.schedule_at(SimTime::from_micros(i), i);
        }
        let mut seen = Vec::new();
        q.run_until(&mut seen, SimTime::from_micros(4), |_q, seen, _t, e| {
            seen.push(e)
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn delivered_counts_events() {
        let mut q = EventQueue::new();
        q.schedule_now(());
        q.schedule_now(());
        q.pop();
        q.pop();
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, "a");
        q.schedule_now("b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b"]);
    }

    #[test]
    fn interleaved_schedule_and_pop_preserves_global_order() {
        // Schedule out of order, pop a few, schedule more (including at
        // times earlier than the cached front bucket), and verify the
        // global (time, scheduling-order) contract end to end.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(50), "e50a");
        q.schedule_at(SimTime::from_nanos(10), "e10");
        q.schedule_at(SimTime::from_nanos(50), "e50b");
        assert_eq!(q.pop().unwrap().1, "e10");
        // Now is 10; 20 is earlier than the cached front (50).
        q.schedule_at(SimTime::from_nanos(20), "e20");
        q.schedule_at(SimTime::from_nanos(50), "e50c");
        let rest: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec!["e20", "e50a", "e50b", "e50c"]);
        assert_eq!(q.delivered(), 5);
        assert!(q.is_empty());
    }

    #[test]
    fn pending_at_sees_front_and_later_buckets() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(5), 1);
        q.schedule_at(SimTime::from_nanos(9), 2);
        q.schedule_at(SimTime::from_nanos(5), 3);
        q.schedule_at(SimTime::from_nanos(9), 4);
        assert_eq!(q.pending_at(SimTime::from_nanos(5)), vec![&1, &3]);
        assert_eq!(q.pending_at(SimTime::from_nanos(9)), vec![&2, &4]);
        assert!(q.pending_at(SimTime::from_nanos(7)).is_empty());
    }

    #[test]
    fn pop_batch_drains_one_instant() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(5), 1);
        q.schedule_at(SimTime::from_nanos(9), 2);
        q.schedule_at(SimTime::from_nanos(5), 3);
        let (t, batch) = q.pop_batch().unwrap();
        assert_eq!(t, SimTime::from_nanos(5));
        assert_eq!(batch, vec![1, 3]);
        assert_eq!(q.now(), SimTime::from_nanos(5));
        assert_eq!(q.len(), 1);
        assert_eq!(q.delivered(), 2);
        let (t, batch) = q.pop_batch().unwrap();
        assert_eq!(t, SimTime::from_nanos(9));
        assert_eq!(batch, vec![2]);
        assert!(q.pop_batch().is_none());
    }
}

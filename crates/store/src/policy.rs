//! Eviction policies.
//!
//! The paper leaves tiering policy open ("the caching layer is responsible
//! for managing data locations, replication, tiering policies etc."), so
//! the store is parameterized over a policy and experiment E3 compares
//! them.

use std::fmt;

use crate::object::{ObjectId, ObjectMeta};

/// Which objects to sacrifice when a tier is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict least-recently-used first.
    Lru,
    /// Evict least-frequently-used first.
    Lfu,
    /// Evict the worst bytes-per-access objects first (big, cold objects
    /// go early).
    CostAware,
}

impl fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::CostAware => "cost-aware",
        };
        f.write_str(s)
    }
}

impl EvictionPolicy {
    /// Chooses victims among `candidates` (already filtered to unpinned
    /// objects) until their cumulative size reaches `need` bytes.
    ///
    /// Returns the chosen IDs in eviction order. If the candidates cannot
    /// cover `need`, everything is returned — the caller decides whether
    /// partial eviction is useful.
    pub fn victims(self, candidates: &[ObjectMeta], need: u64) -> Vec<ObjectId> {
        let mut order: Vec<&ObjectMeta> = candidates.iter().collect();
        match self {
            EvictionPolicy::Lru => {
                order.sort_by_key(|m| (m.last_access, m.id));
            }
            EvictionPolicy::Lfu => {
                order.sort_by_key(|m| (m.access_count, m.last_access, m.id));
            }
            EvictionPolicy::CostAware => {
                // Lowest accesses-per-byte first; ties by recency then ID.
                order.sort_by(|a, b| {
                    let ka = (a.access_count + 1) as f64 / a.size.max(1) as f64;
                    let kb = (b.access_count + 1) as f64 / b.size.max(1) as f64;
                    ka.partial_cmp(&kb)
                        .expect("finite keys")
                        .then_with(|| a.last_access.cmp(&b.last_access))
                        .then_with(|| a.id.cmp(&b.id))
                });
            }
        }
        let mut out = Vec::new();
        let mut freed = 0u64;
        for m in order {
            if freed >= need {
                break;
            }
            out.push(m.id);
            freed += m.size;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_dcsim::time::SimTime;

    fn meta(id: u64, size: u64, last_us: u64, count: u64) -> ObjectMeta {
        let mut m = ObjectMeta::new(ObjectId(id), size, SimTime::ZERO);
        m.last_access = SimTime::from_micros(last_us);
        m.access_count = count;
        m
    }

    #[test]
    fn lru_prefers_stale() {
        let c = vec![meta(1, 10, 100, 5), meta(2, 10, 10, 5), meta(3, 10, 50, 5)];
        let v = EvictionPolicy::Lru.victims(&c, 10);
        assert_eq!(v, vec![ObjectId(2)]);
        let v = EvictionPolicy::Lru.victims(&c, 20);
        assert_eq!(v, vec![ObjectId(2), ObjectId(3)]);
    }

    #[test]
    fn lfu_prefers_cold() {
        let c = vec![meta(1, 10, 1, 9), meta(2, 10, 2, 1), meta(3, 10, 3, 4)];
        let v = EvictionPolicy::Lfu.victims(&c, 10);
        assert_eq!(v, vec![ObjectId(2)]);
    }

    #[test]
    fn cost_aware_prefers_big_cold_objects() {
        // Object 1: huge, rarely used. Object 2: tiny, often used.
        let c = vec![meta(1, 1_000_000, 5, 1), meta(2, 10, 5, 1)];
        let v = EvictionPolicy::CostAware.victims(&c, 100);
        assert_eq!(v, vec![ObjectId(1)]);
    }

    #[test]
    fn victims_accumulate_until_need_met() {
        let c = vec![meta(1, 30, 1, 0), meta(2, 30, 2, 0), meta(3, 30, 3, 0)];
        let v = EvictionPolicy::Lru.victims(&c, 50);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn insufficient_candidates_returns_all() {
        let c = vec![meta(1, 10, 1, 0)];
        let v = EvictionPolicy::Lru.victims(&c, 1000);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn deterministic_tie_break() {
        let c = vec![meta(2, 10, 5, 1), meta(1, 10, 5, 1)];
        let v1 = EvictionPolicy::Lru.victims(&c, 10);
        let v2 = EvictionPolicy::Lfu.victims(&c, 10);
        assert_eq!(v1, vec![ObjectId(1)]);
        assert_eq!(v2, vec![ObjectId(1)]);
    }
}

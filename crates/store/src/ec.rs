//! Reed-Solomon erasure coding over GF(2^8).
//!
//! The paper (§2.1) lists an erasure-coded reliable caching layer as an
//! alternative to lineage re-execution and plain replication (citing
//! Carbink). This module implements systematic Reed-Solomon: `k` data
//! shards plus `m` parity shards; any `k` surviving shards reconstruct the
//! object. Storage overhead is `(k + m) / k`, versus `r` for `r`-way
//! replication — the trade-off experiment E7 measures.
//!
//! Arithmetic is over GF(256) with the AES-friendly reduction polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11D), using log/exp tables. The encode
//! matrix is a systematic Vandermonde matrix (top `k` rows are the
//! identity), and decode inverts the surviving rows with Gaussian
//! elimination.

use std::sync::OnceLock;

use crate::error::StoreError;

/// GF(256) log/exp tables.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x11D;
            }
        }
        // Duplicate so mul can skip the mod-255 on index sums.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// GF(256) multiplication.
fn gmul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// GF(256) multiplicative inverse.
///
/// # Panics
///
/// Panics on zero (no inverse exists); callers guarantee non-zero pivots.
fn ginv(a: u8) -> u8 {
    assert!(a != 0, "inverse of zero in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// A dense matrix over GF(256), row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Vandermonde matrix: entry (r, c) = r^c in GF(256).
    fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            let mut v = 1u8;
            for c in 0..cols {
                m.set(r, c, v);
                v = gmul(v, r as u8 + 1);
            }
        }
        m
    }

    fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows);
        let mut out = Matrix::zero(self.rows, other.cols);
        for r in 0..self.rows {
            for c in 0..other.cols {
                let mut acc = 0u8;
                for k in 0..self.cols {
                    acc ^= gmul(self.get(r, k), other.get(k, c));
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    /// Inverts a square matrix with Gauss-Jordan elimination.
    fn invert(&self) -> Result<Matrix, StoreError> {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a non-zero pivot.
            let pivot = (col..n)
                .find(|r| a.get(*r, col) != 0)
                .ok_or_else(|| StoreError::CodingError("singular matrix".into()))?;
            if pivot != col {
                for c in 0..n {
                    let (x, y) = (a.get(col, c), a.get(pivot, c));
                    a.set(col, c, y);
                    a.set(pivot, c, x);
                    let (x, y) = (inv.get(col, c), inv.get(pivot, c));
                    inv.set(col, c, y);
                    inv.set(pivot, c, x);
                }
            }
            // Normalize the pivot row.
            let p = ginv(a.get(col, col));
            for c in 0..n {
                a.set(col, c, gmul(a.get(col, c), p));
                inv.set(col, c, gmul(inv.get(col, c), p));
            }
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a.get(r, col);
                if f == 0 {
                    continue;
                }
                for c in 0..n {
                    let v = a.get(r, c) ^ gmul(f, a.get(col, c));
                    a.set(r, c, v);
                    let v = inv.get(r, c) ^ gmul(f, inv.get(col, c));
                    inv.set(r, c, v);
                }
            }
        }
        Ok(inv)
    }
}

/// Erasure-coding configuration: `data` data shards + `parity` parity
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcConfig {
    /// Number of data shards (`k`).
    pub data: usize,
    /// Number of parity shards (`m`).
    pub parity: usize,
}

impl EcConfig {
    /// The common RS(4, 2) configuration.
    pub const RS_4_2: EcConfig = EcConfig { data: 4, parity: 2 };

    /// Total shard count.
    pub fn total(&self) -> usize {
        self.data + self.parity
    }

    /// Storage blow-up factor relative to the raw object.
    pub fn overhead(&self) -> f64 {
        self.total() as f64 / self.data as f64
    }

    fn validate(&self) -> Result<(), StoreError> {
        if self.data == 0 {
            return Err(StoreError::CodingError("k must be > 0".into()));
        }
        if self.parity == 0 {
            return Err(StoreError::CodingError("m must be > 0".into()));
        }
        if self.total() > 255 {
            return Err(StoreError::CodingError("k + m must be <= 255".into()));
        }
        Ok(())
    }

    /// The systematic encode matrix: `total x data`, top `data` rows are
    /// the identity.
    fn encode_matrix(&self) -> Result<Matrix, StoreError> {
        let v = Matrix::vandermonde(self.total(), self.data);
        // Make it systematic: V * inv(top-k-of-V).
        let mut top = Matrix::zero(self.data, self.data);
        for r in 0..self.data {
            for c in 0..self.data {
                top.set(r, c, v.get(r, c));
            }
        }
        Ok(v.mul(&top.invert()?))
    }
}

/// An erasure-coded object: its shards plus the original length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoded {
    /// All shards, data shards first; each is `shard_len` bytes.
    pub shards: Vec<Vec<u8>>,
    /// The original payload length (shards are padded).
    pub original_len: usize,
    /// The configuration used.
    pub config: EcConfig,
}

/// Splits `payload` into `config.data` shards and appends
/// `config.parity` parity shards.
pub fn encode(payload: &[u8], config: EcConfig) -> Result<Encoded, StoreError> {
    config.validate()?;
    let k = config.data;
    let shard_len = payload.len().div_ceil(k).max(1);
    let mut shards: Vec<Vec<u8>> = Vec::with_capacity(config.total());
    for i in 0..k {
        let mut s = vec![0u8; shard_len];
        let start = i * shard_len;
        if start < payload.len() {
            let end = (start + shard_len).min(payload.len());
            s[..end - start].copy_from_slice(&payload[start..end]);
        }
        shards.push(s);
    }
    let enc = config.encode_matrix()?;
    for p in 0..config.parity {
        let row = enc.row(k + p).to_vec();
        let mut s = vec![0u8; shard_len];
        for (j, coef) in row.iter().enumerate() {
            if *coef == 0 {
                continue;
            }
            for (b, out) in shards[j].iter().zip(s.iter_mut()) {
                *out ^= gmul(*coef, *b);
            }
        }
        shards.push(s);
    }
    Ok(Encoded {
        shards,
        original_len: payload.len(),
        config,
    })
}

/// Reconstructs the payload from surviving shards (`None` = lost). Any
/// `config.data` survivors suffice.
pub fn decode(
    shards: &[Option<Vec<u8>>],
    original_len: usize,
    config: EcConfig,
) -> Result<Vec<u8>, StoreError> {
    config.validate()?;
    let k = config.data;
    if shards.len() != config.total() {
        return Err(StoreError::CodingError(format!(
            "expected {} shards, got {}",
            config.total(),
            shards.len()
        )));
    }
    let available: Vec<usize> = shards
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.as_ref().map(|_| i))
        .collect();
    if available.len() < k {
        return Err(StoreError::CodingError(format!(
            "only {} of {} shards available, need {k}",
            available.len(),
            config.total()
        )));
    }
    let shard_len = shards[available[0]].as_ref().expect("available").len();

    // Fast path: all data shards survived.
    if available
        .iter()
        .take(k)
        .eq((0..k).collect::<Vec<_>>().iter())
    {
        let mut out = Vec::with_capacity(shard_len * k);
        for s in shards.iter().take(k) {
            out.extend_from_slice(s.as_ref().expect("data shard"));
        }
        out.truncate(original_len);
        return Ok(out);
    }

    // General path: take the first k surviving rows of the encode matrix,
    // invert, and multiply by the surviving shards.
    let enc = config.encode_matrix()?;
    let chosen: Vec<usize> = available.into_iter().take(k).collect();
    let mut sub = Matrix::zero(k, k);
    for (r, &src) in chosen.iter().enumerate() {
        for c in 0..k {
            sub.set(r, c, enc.get(src, c));
        }
    }
    let inv = sub.invert()?;
    let mut data_shards: Vec<Vec<u8>> = vec![vec![0u8; shard_len]; k];
    for (r, out) in data_shards.iter_mut().enumerate() {
        for (j, &src) in chosen.iter().enumerate() {
            let coef = inv.get(r, j);
            if coef == 0 {
                continue;
            }
            let shard = shards[src].as_ref().expect("chosen shard");
            for (b, o) in shard.iter().zip(out.iter_mut()) {
                *o ^= gmul(coef, *b);
            }
        }
    }
    let mut out = Vec::with_capacity(shard_len * k);
    for s in data_shards {
        out.extend_from_slice(&s);
    }
    out.truncate(original_len);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_field_axioms_spot_checks() {
        // Multiplicative identity and inverse.
        for a in 1..=255u8 {
            assert_eq!(gmul(a, 1), a);
            assert_eq!(gmul(a, ginv(a)), 1, "a={a}");
        }
        // Commutativity and distributivity samples.
        assert_eq!(gmul(7, 9), gmul(9, 7));
        let (a, b, c) = (13u8, 200u8, 77u8);
        assert_eq!(gmul(a, b ^ c), gmul(a, b) ^ gmul(a, c));
    }

    #[test]
    fn matrix_inverse_round_trip() {
        let v = Matrix::vandermonde(4, 4);
        let inv = v.invert().unwrap();
        assert_eq!(v.mul(&inv), Matrix::identity(4));
    }

    #[test]
    fn encode_is_systematic() {
        let payload: Vec<u8> = (0..100u8).collect();
        let e = encode(&payload, EcConfig::RS_4_2).unwrap();
        assert_eq!(e.shards.len(), 6);
        // Data shards concatenated == padded payload.
        let mut cat = Vec::new();
        for s in &e.shards[..4] {
            cat.extend_from_slice(s);
        }
        assert_eq!(&cat[..100], &payload[..]);
    }

    #[test]
    fn decode_with_all_shards() {
        let payload: Vec<u8> = (0..251u8).collect();
        let e = encode(&payload, EcConfig::RS_4_2).unwrap();
        let shards: Vec<Option<Vec<u8>>> = e.shards.iter().cloned().map(Some).collect();
        assert_eq!(decode(&shards, e.original_len, e.config).unwrap(), payload);
    }

    #[test]
    fn decode_surviving_any_two_erasures() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let e = encode(&payload, EcConfig::RS_4_2).unwrap();
        // Try every pair of erasures.
        for i in 0..6 {
            for j in (i + 1)..6 {
                let mut shards: Vec<Option<Vec<u8>>> = e.shards.iter().cloned().map(Some).collect();
                shards[i] = None;
                shards[j] = None;
                let got = decode(&shards, e.original_len, e.config).unwrap();
                assert_eq!(got, payload, "erasures ({i},{j})");
            }
        }
    }

    #[test]
    fn three_erasures_unrecoverable() {
        let payload = vec![42u8; 64];
        let e = encode(&payload, EcConfig::RS_4_2).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = e.shards.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[2] = None;
        shards[4] = None;
        assert!(decode(&shards, e.original_len, e.config).is_err());
    }

    #[test]
    fn empty_and_tiny_payloads() {
        for payload in [vec![], vec![7u8], vec![1u8, 2, 3]] {
            let e = encode(&payload, EcConfig::RS_4_2).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> = e.shards.iter().cloned().map(Some).collect();
            shards[1] = None;
            shards[5] = None;
            assert_eq!(decode(&shards, e.original_len, e.config).unwrap(), payload);
        }
    }

    #[test]
    fn config_validation() {
        assert!(encode(&[1], EcConfig { data: 0, parity: 1 }).is_err());
        assert!(encode(&[1], EcConfig { data: 1, parity: 0 }).is_err());
        assert!(encode(
            &[1],
            EcConfig {
                data: 200,
                parity: 100
            }
        )
        .is_err());
    }

    #[test]
    fn overhead_math() {
        assert!((EcConfig::RS_4_2.overhead() - 1.5).abs() < 1e-12);
        let rs63 = EcConfig { data: 6, parity: 3 };
        assert!((rs63.overhead() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn wrong_shard_count_rejected() {
        let e = encode(&[1, 2, 3], EcConfig::RS_4_2).unwrap();
        let shards: Vec<Option<Vec<u8>>> = e.shards.iter().cloned().map(Some).take(5).collect();
        assert!(decode(&shards, e.original_len, e.config).is_err());
    }

    #[test]
    fn larger_configs_round_trip() {
        let payload: Vec<u8> = (0..10_000).map(|i| (i * 31 % 256) as u8).collect();
        let cfg = EcConfig {
            data: 10,
            parity: 4,
        };
        let e = encode(&payload, cfg).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = e.shards.iter().cloned().map(Some).collect();
        // Drop 4 shards including data shards.
        shards[0] = None;
        shards[3] = None;
        shards[9] = None;
        shards[12] = None;
        assert_eq!(decode(&shards, e.original_len, cfg).unwrap(), payload);
    }
}

//! # skadi-store — distributed object store and tiered caching layer
//!
//! The Skadi paper's data plane is "a fast caching layer with a standard
//! format" (§1): a KV API spanning memory on regular servers, memory on
//! heterogeneous devices (HBM), and disaggregated memory, responsible for
//! "managing data locations, replication, tiering policies etc. Users of
//! it only see KV APIs" (Figure 2, note 5). This crate implements that
//! layer:
//!
//! - [`object`]: object identifiers and metadata ([`ObjectId`],
//!   [`ObjectMeta`]).
//! - [`tier`]: the memory tiers ([`Tier`]) and their relative costs.
//! - [`policy`]: eviction policies (LRU, LFU, size-aware greedy).
//! - [`kv`]: the per-node object store ([`LocalStore`]) with capacity
//!   accounting and eviction.
//! - [`placement`]: the cluster-wide [`CachingLayer`] that hides data
//!   location behind `put`/`get`, choosing tiers and handling spill.
//! - [`replication`]: N-way replica placement and failure masking.
//! - [`ec`]: Reed-Solomon erasure coding over GF(256) — the paper's
//!   alternative to replication for a reliable caching layer.
//! - [`spill`]: spill/fill decisions between HBM, host DRAM, and
//!   disaggregated memory under pressure.
//!
//! Everything here is simulation-facing: objects carry sizes and payloads
//! are optional (experiments mostly track bytes, examples store real
//! `bytes::Bytes`-like vectors).

pub mod ec;
pub mod error;
pub mod kv;
pub mod object;
pub mod payload;
pub mod placement;
pub mod policy;
pub mod replication;
pub mod spill;
pub mod tier;

pub use error::StoreError;
pub use kv::LocalStore;
pub use object::{ObjectId, ObjectMeta};
pub use payload::PayloadStore;
pub use placement::CachingLayer;
pub use policy::EvictionPolicy;
pub use tier::Tier;

//! The cluster-wide caching layer.
//!
//! [`CachingLayer`] is the paper's "fast caching layer" (Figure 2, note 5):
//! one KV API over every node's memory — server DRAM, device HBM,
//! disaggregated memory — with durable storage as the backstop. Users see
//! `put`/`get`; the layer manages locations, spilling, and replication,
//! which is exactly how it "hide\[s\] the location and movement of data"
//! (§2.1).

use std::collections::HashSet;

use skadi_dcsim::time::SimTime;
use skadi_dcsim::topology::{NodeClass, NodeId, Topology};
use skadi_dcsim::trace::Metrics;

use crate::error::StoreError;
use crate::kv::LocalStore;
use crate::object::{ObjectId, ObjectMeta};
use crate::policy::EvictionPolicy;
use crate::replication::{choose_replica_nodes, ReplicaIndex};
use crate::spill::{SpillPlanner, SpillPolicy, SpillTarget};
use crate::tier::Tier;

/// One spill that happened during a `put`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillEvent {
    /// The object that moved.
    pub id: ObjectId,
    /// Where it was evicted from.
    pub from: NodeId,
    /// Where it landed (or that it was dropped).
    pub to: SpillTarget,
    /// Bytes moved.
    pub bytes: u64,
}

/// Result of a `put`: where the object landed and what had to move to
/// make room.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutReport {
    /// Node holding the new primary copy.
    pub node: NodeId,
    /// Tier of that node.
    pub tier: Tier,
    /// Cascading spills triggered by the insertion.
    pub spilled: Vec<SpillEvent>,
}

/// Result of a `replicate`: which nodes received new copies and what had
/// to move to make room for them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicateReport {
    /// Nodes that received a new replica.
    pub added: Vec<NodeId>,
    /// Cascading spills triggered while placing the replicas.
    pub spilled: Vec<SpillEvent>,
}

/// Where a read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// The node holding the chosen copy.
    pub node: NodeId,
    /// Its tier.
    pub tier: Tier,
    /// True if the copy is local to the reader.
    pub local: bool,
}

/// The cluster-wide tiered KV store.
#[derive(Debug, Clone)]
pub struct CachingLayer {
    stores: Vec<LocalStore>,
    index: ReplicaIndex,
    planner: SpillPlanner,
    topo: Topology,
    spill_count: u64,
    spill_bytes: u64,
    metrics: Metrics,
}

/// The tier implied by a node's hardware class.
pub fn tier_for_class(class: NodeClass) -> Tier {
    match class {
        NodeClass::Server => Tier::HostDram,
        NodeClass::AccelDevice => Tier::DeviceHbm,
        NodeClass::MemoryBlade => Tier::DisaggMemory,
        NodeClass::DurableStorage => Tier::Durable,
    }
}

impl CachingLayer {
    /// Builds the layer: one [`LocalStore`] per node, sized by the node's
    /// memory, plus spill planning per `spill_policy`.
    pub fn new(topo: &Topology, eviction: EvictionPolicy, spill_policy: SpillPolicy) -> Self {
        let stores = topo
            .nodes()
            .iter()
            .map(|n| {
                LocalStore::new(
                    n.id,
                    tier_for_class(n.kind.class()),
                    n.kind.memory_bytes(),
                    eviction,
                )
            })
            .collect();
        CachingLayer {
            stores,
            index: ReplicaIndex::new(),
            planner: SpillPlanner::new(topo, spill_policy),
            topo: topo.clone(),
            spill_count: 0,
            spill_bytes: 0,
            metrics: Metrics::new(),
        }
    }

    /// Tier hit/miss/eviction counters, labeled per tier.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Drains the accumulated metrics (for merging into a job's sink).
    pub fn take_metrics(&mut self) -> Metrics {
        std::mem::take(&mut self.metrics)
    }

    /// The per-node store (read-only).
    pub fn store(&self, node: NodeId) -> &LocalStore {
        &self.stores[node.index()]
    }

    /// Number of spills and bytes spilled since creation.
    pub fn spill_stats(&self) -> (u64, u64) {
        (self.spill_count, self.spill_bytes)
    }

    /// The nodes currently holding `id`.
    pub fn locations(&self, id: ObjectId) -> &[NodeId] {
        self.index.holders(id)
    }

    /// True if any copy of `id` exists.
    pub fn contains(&self, id: ObjectId) -> bool {
        !self.index.holders(id).is_empty()
    }

    /// The object's size, from any holder's metadata.
    pub fn size_of(&self, id: ObjectId) -> Result<u64, StoreError> {
        let node = self.index.any_holder(id)?;
        self.stores[node.index()]
            .metas()
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.size)
            .ok_or(StoreError::NotFound(id))
    }

    /// Stores an object on (or near) `node`, spilling colder objects as
    /// needed. The returned report lists every induced move so the caller
    /// can price the transfers.
    pub fn put(
        &mut self,
        id: ObjectId,
        size: u64,
        node: NodeId,
        now: SimTime,
    ) -> Result<PutReport, StoreError> {
        let tier = self.stores[node.index()].tier();
        let evicted = self.stores[node.index()].put(id, size, None, now)?;
        self.index.add(id, node);
        self.metrics
            .bump_labeled("tier.put", &[("tier", tier.label())]);
        let spilled = self.rehome_evicted(node, evicted, now)?;
        Ok(PutReport {
            node,
            tier,
            spilled,
        })
    }

    /// Re-homes objects evicted from `origin` via the spill planner.
    /// Spills can cascade one level further (e.g. blade eviction lands on
    /// durable), handled by the queue.
    fn rehome_evicted(
        &mut self,
        origin: NodeId,
        evicted: Vec<ObjectMeta>,
        now: SimTime,
    ) -> Result<Vec<SpillEvent>, StoreError> {
        let mut spilled = Vec::new();
        let mut queue: Vec<(NodeId, ObjectMeta)> =
            evicted.into_iter().map(|m| (origin, m)).collect();
        while let Some((from, meta)) = queue.pop() {
            self.index.remove(meta.id, from);
            let from_tier = self.stores[from.index()].tier();
            let from_rack = self.topo.rack_of(from).0;
            let target = self.planner.plan(from_rack, meta.size, false, |blade| {
                self.stores[blade.index()].free()
            });
            match target {
                SpillTarget::Node(dest) | SpillTarget::Durable(dest) => {
                    // A duplicate means another copy already lives there;
                    // treat as a no-op move.
                    match self.stores[dest.index()].put(meta.id, meta.size, None, now) {
                        Ok(more) => {
                            self.index.add(meta.id, dest);
                            for m in more {
                                queue.push((dest, m));
                            }
                        }
                        Err(StoreError::Duplicate(_)) => {
                            self.index.add(meta.id, dest);
                        }
                        Err(e) => return Err(e),
                    }
                    self.spill_count += 1;
                    self.spill_bytes += meta.size;
                    let to_tier = self.stores[dest.index()].tier();
                    self.metrics.bump_labeled(
                        "tier.evict",
                        &[("from", from_tier.label()), ("to", to_tier.label())],
                    );
                }
                SpillTarget::Drop => {
                    self.metrics
                        .bump_labeled("tier.evict", &[("from", from_tier.label()), ("to", "drop")]);
                }
            }
            spilled.push(SpillEvent {
                id: meta.id,
                from,
                to: target,
                bytes: meta.size,
            });
        }
        Ok(spilled)
    }

    /// Finds the best copy of `id` for a reader on `reader`: local first,
    /// then same rack, then anywhere, preferring faster tiers within each
    /// class. Updates recency on the chosen store.
    pub fn get(
        &mut self,
        id: ObjectId,
        reader: NodeId,
        now: SimTime,
    ) -> Result<Location, StoreError> {
        let holders = self.index.holders(id);
        if holders.is_empty() {
            self.metrics.bump("tier.miss");
            return Err(StoreError::NotFound(id));
        }
        let mut ranked: Vec<(u8, Tier, NodeId)> = holders
            .iter()
            .map(|&n| {
                let dist = if n == reader {
                    0
                } else if self.topo.same_rack(n, reader) {
                    1
                } else if self.stores[n.index()].tier() != Tier::Durable {
                    2
                } else {
                    3
                };
                (dist, self.stores[n.index()].tier(), n)
            })
            .collect();
        ranked.sort();
        let (dist, tier, node) = ranked[0];
        self.stores[node.index()].get(id, now)?;
        let locality = match dist {
            0 => "local",
            1 => "rack",
            _ => "remote",
        };
        self.metrics.bump_labeled(
            "tier.hit",
            &[("tier", tier.label()), ("locality", locality)],
        );
        Ok(Location {
            node,
            tier,
            local: dist == 0,
        })
    }

    /// Like [`CachingLayer::get`], but *promotes* the object to the
    /// reader's node when the best copy is remote and the reader has (or
    /// can evict its way to) capacity — the standard hot-data promotion
    /// of a tiered cache. Returns the location the read was served from
    /// (pre-promotion) plus whether a promotion happened.
    pub fn get_promote(
        &mut self,
        id: ObjectId,
        reader: NodeId,
        now: SimTime,
    ) -> Result<(Location, bool), StoreError> {
        let loc = self.get(id, reader, now)?;
        if loc.local {
            return Ok((loc, false));
        }
        let size = self.size_of(id)?;
        // Move, don't copy: drop the cold copy once the hot one exists.
        match self.stores[reader.index()].put(id, size, None, now) {
            Ok(evicted) => {
                self.index.add(id, reader);
                self.rehome_evicted(reader, evicted, now)?;
                let _ = self.stores[loc.node.index()].delete(id);
                self.index.remove(id, loc.node);
                let to_tier = self.stores[reader.index()].tier();
                self.metrics
                    .bump_labeled("tier.promote", &[("to", to_tier.label())]);
                Ok((loc, true))
            }
            // Reader full of pinned data or object too large: serve remote.
            Err(_) => Ok((loc, false)),
        }
    }

    /// Adds `extra` replicas of `id` on rack-diverse nodes drawn from
    /// `candidates`. Destinations that cannot take the copy (full of
    /// pinned data) are skipped rather than aborting the whole operation,
    /// and anything their stores evicted to make room is re-homed like any
    /// other spill — partial failure must never leave an object in a
    /// store without an index entry, or vice versa.
    pub fn replicate(
        &mut self,
        id: ObjectId,
        extra: usize,
        candidates: &[NodeId],
        now: SimTime,
    ) -> Result<ReplicateReport, StoreError> {
        let primary = self.index.any_holder(id)?;
        let size = self.size_of(id)?;
        let picks = choose_replica_nodes(&self.topo, candidates, primary, extra);
        let mut added = Vec::new();
        let mut spilled = Vec::new();
        for dest in picks {
            if self.index.holders(id).contains(&dest) {
                continue;
            }
            match self.stores[dest.index()].put(id, size, None, now) {
                Ok(evicted) => {
                    self.index.add(id, dest);
                    added.push(dest);
                    spilled.extend(self.rehome_evicted(dest, evicted, now)?);
                }
                Err(_) => continue,
            }
        }
        Ok(ReplicateReport { added, spilled })
    }

    /// Deletes every copy of `id`.
    pub fn delete(&mut self, id: ObjectId) -> Result<(), StoreError> {
        let holders: Vec<NodeId> = self.index.holders(id).to_vec();
        if holders.is_empty() {
            return Err(StoreError::NotFound(id));
        }
        for n in holders {
            let _ = self.stores[n.index()].delete(id);
        }
        self.index.drop_object(id);
        Ok(())
    }

    /// Simulates the failure of `node`: its store is emptied and every
    /// object whose last copy lived there is reported lost.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<ObjectId> {
        let metas = self.stores[node.index()].metas();
        for m in &metas {
            let _ = self.stores[node.index()].delete(m.id);
        }
        self.index.fail_node(node)
    }

    /// Objects that survive the given failure set.
    pub fn available_under(&self, failed: &HashSet<NodeId>, ids: &[ObjectId]) -> Vec<ObjectId> {
        ids.iter()
            .copied()
            .filter(|id| self.index.is_available(*id, failed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_dcsim::topology::presets;

    fn layer() -> (Topology, CachingLayer) {
        let topo = presets::small_disagg_cluster();
        let layer = CachingLayer::new(&topo, EvictionPolicy::Lru, SpillPolicy::default());
        (topo, layer)
    }

    #[test]
    fn put_get_round_trip() {
        let (topo, mut cl) = layer();
        let s0 = topo.servers()[0];
        let report = cl.put(ObjectId(1), 1 << 20, s0, SimTime::ZERO).unwrap();
        assert_eq!(report.tier, Tier::HostDram);
        assert!(report.spilled.is_empty());
        let loc = cl.get(ObjectId(1), s0, SimTime::from_micros(1)).unwrap();
        assert!(loc.local);
        assert_eq!(loc.node, s0);
    }

    #[test]
    fn get_prefers_nearest_copy() {
        let (topo, mut cl) = layer();
        let servers = topo.servers();
        let (r0, r1) = (servers[0], servers[4]); // Different racks.
        cl.put(ObjectId(1), 100, r0, SimTime::ZERO).unwrap();
        cl.replicate(ObjectId(1), 1, &servers, SimTime::ZERO)
            .unwrap();
        // Reader on the replica's rack should hit the replica.
        let loc = cl.get(ObjectId(1), r1, SimTime::from_micros(1)).unwrap();
        assert!(topo.same_rack(loc.node, r1) || loc.node == r1);
    }

    #[test]
    fn hbm_overflow_spills_to_blade() {
        let (topo, mut cl) = layer();
        let gpu = topo.accel_devices(None)[0];
        let hbm = cl.store(gpu).capacity();
        cl.put(ObjectId(1), hbm / 2 + 1, gpu, SimTime::ZERO)
            .unwrap();
        let report = cl
            .put(ObjectId(2), hbm / 2 + 1, gpu, SimTime::from_micros(1))
            .unwrap();
        assert_eq!(report.spilled.len(), 1);
        let ev = report.spilled[0];
        assert_eq!(ev.id, ObjectId(1));
        let blade = topo.memory_blades()[0];
        assert_eq!(ev.to, SpillTarget::Node(blade));
        // Object 1 is now readable from the blade.
        let loc = cl.get(ObjectId(1), gpu, SimTime::from_micros(2)).unwrap();
        assert_eq!(loc.tier, Tier::DisaggMemory);
        let (n, b) = cl.spill_stats();
        assert_eq!(n, 1);
        assert_eq!(b, hbm / 2 + 1);
    }

    #[test]
    fn replicate_places_rack_diverse() {
        let (topo, mut cl) = layer();
        let servers = topo.servers();
        cl.put(ObjectId(1), 100, servers[0], SimTime::ZERO).unwrap();
        let added = cl
            .replicate(ObjectId(1), 2, &servers, SimTime::ZERO)
            .unwrap()
            .added;
        assert_eq!(added.len(), 2);
        for a in &added {
            assert!(!topo.same_rack(*a, servers[0]));
        }
        assert_eq!(cl.locations(ObjectId(1)).len(), 3);
    }

    #[test]
    fn replicate_rehomes_displaced_objects() {
        // Regression: replica placement used to discard the destination
        // store's eviction list, leaving displaced objects indexed as
        // present but physically gone (a later `get` then failed on an
        // "available" object).
        let (topo, mut cl) = layer();
        let servers = topo.servers();
        // Pick a destination on another rack and nearly fill it so the
        // incoming replica forces an eviction there.
        let dest = *servers
            .iter()
            .find(|s| !topo.same_rack(**s, servers[0]))
            .unwrap();
        let cap = cl.store(dest).capacity();
        cl.put(ObjectId(7), cap - 100, dest, SimTime::ZERO).unwrap();
        cl.put(ObjectId(1), 200, servers[0], SimTime::from_micros(1))
            .unwrap();
        let report = cl
            .replicate(ObjectId(1), 1, &[dest], SimTime::from_micros(2))
            .unwrap();
        assert_eq!(report.added, vec![dest]);
        // The displaced object moved somewhere and is still readable.
        assert!(report.spilled.iter().any(|s| s.id == ObjectId(7)));
        assert!(cl.contains(ObjectId(7)));
        assert!(cl
            .get(ObjectId(7), servers[0], SimTime::from_micros(3))
            .is_ok());
    }

    #[test]
    fn fail_node_loses_unreplicated_objects() {
        let (topo, mut cl) = layer();
        let servers = topo.servers();
        cl.put(ObjectId(1), 100, servers[0], SimTime::ZERO).unwrap();
        cl.put(ObjectId(2), 100, servers[0], SimTime::ZERO).unwrap();
        cl.replicate(ObjectId(2), 1, &servers, SimTime::ZERO)
            .unwrap();
        let lost = cl.fail_node(servers[0]);
        assert_eq!(lost, vec![ObjectId(1)]);
        assert!(!cl.contains(ObjectId(1)));
        assert!(cl.contains(ObjectId(2)));
    }

    #[test]
    fn delete_removes_all_copies() {
        let (topo, mut cl) = layer();
        let servers = topo.servers();
        cl.put(ObjectId(1), 100, servers[0], SimTime::ZERO).unwrap();
        cl.replicate(ObjectId(1), 2, &servers, SimTime::ZERO)
            .unwrap();
        cl.delete(ObjectId(1)).unwrap();
        assert!(!cl.contains(ObjectId(1)));
        assert!(cl.get(ObjectId(1), servers[0], SimTime::ZERO).is_err());
    }

    #[test]
    fn size_of_reports() {
        let (topo, mut cl) = layer();
        cl.put(ObjectId(1), 12345, topo.servers()[0], SimTime::ZERO)
            .unwrap();
        assert_eq!(cl.size_of(ObjectId(1)).unwrap(), 12345);
        assert!(cl.size_of(ObjectId(2)).is_err());
    }

    #[test]
    fn get_promote_moves_hot_objects_up() {
        let (topo, mut cl) = layer();
        let gpu = topo.accel_devices(None)[0];
        let blade = topo.memory_blades()[0];
        // Object cached on the blade; the GPU reads it hot.
        cl.put(ObjectId(1), 1 << 20, blade, SimTime::ZERO).unwrap();
        let (loc, promoted) = cl
            .get_promote(ObjectId(1), gpu, SimTime::from_micros(1))
            .unwrap();
        assert_eq!(loc.tier, Tier::DisaggMemory);
        assert!(promoted);
        // Next read is local HBM.
        let (loc, promoted) = cl
            .get_promote(ObjectId(1), gpu, SimTime::from_micros(2))
            .unwrap();
        assert!(loc.local);
        assert_eq!(loc.tier, Tier::DeviceHbm);
        assert!(!promoted);
        // The blade copy is gone (move, not copy).
        assert_eq!(cl.locations(ObjectId(1)), &[gpu]);
    }

    #[test]
    fn metrics_label_hits_misses_and_evictions() {
        let (topo, mut cl) = layer();
        let gpu = topo.accel_devices(None)[0];
        let hbm = cl.store(gpu).capacity();
        cl.put(ObjectId(1), hbm / 2 + 1, gpu, SimTime::ZERO)
            .unwrap();
        cl.put(ObjectId(2), hbm / 2 + 1, gpu, SimTime::from_micros(1))
            .unwrap();
        // Second put evicted object 1 from HBM to the blade.
        let m = cl.metrics();
        assert_eq!(
            m.counter_labeled(
                "tier.evict",
                &[("from", "device-hbm"), ("to", "disagg-memory")]
            ),
            1
        );
        assert_eq!(m.counter_across_labels("tier.put"), 2);

        // Hit on the blade copy, remote from the GPU's perspective.
        cl.get(ObjectId(1), gpu, SimTime::from_micros(2)).unwrap();
        assert_eq!(
            cl.metrics().counter_labeled(
                "tier.hit",
                &[("tier", "disagg-memory"), ("locality", "rack")]
            ) + cl.metrics().counter_labeled(
                "tier.hit",
                &[("tier", "disagg-memory"), ("locality", "remote")]
            ),
            1
        );

        // Miss on an unknown object.
        assert!(cl.get(ObjectId(99), gpu, SimTime::from_micros(3)).is_err());
        assert_eq!(cl.metrics().counter("tier.miss"), 1);
    }

    #[test]
    fn metrics_count_promotions() {
        let (topo, mut cl) = layer();
        let gpu = topo.accel_devices(None)[0];
        let blade = topo.memory_blades()[0];
        cl.put(ObjectId(1), 1 << 20, blade, SimTime::ZERO).unwrap();
        cl.get_promote(ObjectId(1), gpu, SimTime::from_micros(1))
            .unwrap();
        assert_eq!(
            cl.metrics()
                .counter_labeled("tier.promote", &[("to", "device-hbm")]),
            1
        );
        // take_metrics drains the sink.
        let taken = cl.take_metrics();
        assert_eq!(taken.counter_across_labels("tier.promote"), 1);
        assert_eq!(cl.metrics().counter_across_labels("tier.promote"), 0);
    }

    #[test]
    fn available_under_failures() {
        let (topo, mut cl) = layer();
        let servers = topo.servers();
        cl.put(ObjectId(1), 10, servers[0], SimTime::ZERO).unwrap();
        cl.put(ObjectId(2), 10, servers[1], SimTime::ZERO).unwrap();
        let failed: HashSet<NodeId> = [servers[0]].into_iter().collect();
        let avail = cl.available_under(&failed, &[ObjectId(1), ObjectId(2)]);
        assert_eq!(avail, vec![ObjectId(2)]);
    }
}

//! Spill planning between tiers.
//!
//! Gen-2 of the paper's runtime "extend\[s\] the caching layer to include
//! disaggregated memory" precisely "to resolve potential out-of-memory"
//! (§2.3.2): when HBM or host DRAM fills, cold objects spill to a memory
//! blade instead of being dropped or pushed to durable storage. This
//! module decides *where* evicted objects go.

use skadi_dcsim::topology::{NodeId, Topology};

use crate::tier::Tier;

/// Where an evicted object should be re-homed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillTarget {
    /// Move to this node (a colder tier with room).
    Node(NodeId),
    /// No colder capacity anywhere: write to durable storage.
    Durable(NodeId),
    /// Nothing to do (object was dropped deliberately).
    Drop,
}

/// Policy knobs for spill planning.
#[derive(Debug, Clone, Copy)]
pub struct SpillPolicy {
    /// If true, spill to disaggregated memory blades before durable
    /// storage (the Gen-2 configuration). If false, evictions go straight
    /// to durable storage (the Gen-1 / classic-serverless configuration).
    pub use_disagg_memory: bool,
    /// If true, evicted ephemeral objects may simply be dropped when they
    /// are re-creatable by lineage and no blade has room.
    pub allow_drop_for_lineage: bool,
}

impl Default for SpillPolicy {
    fn default() -> Self {
        SpillPolicy {
            use_disagg_memory: true,
            allow_drop_for_lineage: false,
        }
    }
}

/// Chooses spill destinations.
#[derive(Debug, Clone)]
pub struct SpillPlanner {
    policy: SpillPolicy,
    blades: Vec<NodeId>,
    durable: Option<NodeId>,
    /// Nodes whose spill traffic should prefer same-rack blades.
    blade_racks: Vec<u16>,
}

impl SpillPlanner {
    /// Builds a planner for the topology.
    pub fn new(topo: &Topology, policy: SpillPolicy) -> Self {
        let blades = topo.memory_blades();
        let blade_racks = blades.iter().map(|b| topo.rack_of(*b).0).collect();
        SpillPlanner {
            policy,
            blades,
            durable: topo.durable_storage(),
            blade_racks,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &SpillPolicy {
        &self.policy
    }

    /// Picks a destination for an object evicted from `from`, given a
    /// callback reporting each blade's free bytes. Prefers a same-rack
    /// blade with room, then any blade with room, then durable storage,
    /// then (optionally) dropping lineage-recoverable objects.
    pub fn plan(
        &self,
        from_rack: u16,
        size: u64,
        recoverable_by_lineage: bool,
        blade_free: impl Fn(NodeId) -> u64,
    ) -> SpillTarget {
        if self.policy.use_disagg_memory {
            // Same-rack blades first, then the rest; both in ID order.
            let mut ordered: Vec<(bool, NodeId)> = self
                .blades
                .iter()
                .zip(&self.blade_racks)
                .map(|(b, r)| (*r != from_rack, *b))
                .collect();
            ordered.sort();
            for (_, blade) in ordered {
                if blade_free(blade) >= size {
                    return SpillTarget::Node(blade);
                }
            }
        }
        if self.policy.allow_drop_for_lineage && recoverable_by_lineage {
            return SpillTarget::Drop;
        }
        match self.durable {
            Some(d) => SpillTarget::Durable(d),
            None => SpillTarget::Drop,
        }
    }

    /// The tier an object lands in for a given target.
    pub fn target_tier(target: SpillTarget) -> Option<Tier> {
        match target {
            SpillTarget::Node(_) => Some(Tier::DisaggMemory),
            SpillTarget::Durable(_) => Some(Tier::Durable),
            SpillTarget::Drop => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_dcsim::topology::{
        presets, AccelKind, AccelSpec, MemoryBladeSpec, ServerSpec, TopologyBuilder,
    };

    #[test]
    fn prefers_same_rack_blade() {
        let topo = TopologyBuilder::new()
            .rack(|r| {
                r.servers(1, ServerSpec::default());
                r.memory_blade(MemoryBladeSpec::default());
            })
            .rack(|r| {
                r.memory_blade(MemoryBladeSpec::default());
            })
            .durable_storage(Default::default())
            .build();
        let planner = SpillPlanner::new(&topo, SpillPolicy::default());
        let blades = topo.memory_blades();
        let t = planner.plan(0, 100, false, |_| u64::MAX);
        assert_eq!(t, SpillTarget::Node(blades[0]));
        // From rack 1, the rack-1 blade wins.
        let t = planner.plan(1, 100, false, |_| u64::MAX);
        assert_eq!(t, SpillTarget::Node(blades[1]));
    }

    #[test]
    fn full_blades_fall_through_to_durable() {
        let topo = presets::small_disagg_cluster();
        let planner = SpillPlanner::new(&topo, SpillPolicy::default());
        let t = planner.plan(0, 100, false, |_| 0);
        assert_eq!(t, SpillTarget::Durable(topo.durable_storage().unwrap()));
    }

    #[test]
    fn gen1_policy_skips_blades() {
        let topo = presets::small_disagg_cluster();
        let planner = SpillPlanner::new(
            &topo,
            SpillPolicy {
                use_disagg_memory: false,
                allow_drop_for_lineage: false,
            },
        );
        let t = planner.plan(0, 100, false, |_| u64::MAX);
        assert!(matches!(t, SpillTarget::Durable(_)));
    }

    #[test]
    fn lineage_drop_when_allowed() {
        let topo = presets::server_cluster(1, 2); // No blades.
        let planner = SpillPlanner::new(
            &topo,
            SpillPolicy {
                use_disagg_memory: true,
                allow_drop_for_lineage: true,
            },
        );
        assert_eq!(planner.plan(0, 10, true, |_| 0), SpillTarget::Drop);
        // Non-recoverable objects still go durable.
        assert!(matches!(
            planner.plan(0, 10, false, |_| 0),
            SpillTarget::Durable(_)
        ));
    }

    #[test]
    fn no_blade_no_durable_drops() {
        let topo = TopologyBuilder::new()
            .rack(|r| {
                r.servers(1, ServerSpec::default());
                r.accel_device(AccelKind::Gpu, AccelSpec::default());
            })
            .build();
        let planner = SpillPlanner::new(&topo, SpillPolicy::default());
        assert_eq!(planner.plan(0, 10, false, |_| 0), SpillTarget::Drop);
    }

    #[test]
    fn target_tier_mapping() {
        assert_eq!(
            SpillPlanner::target_tier(SpillTarget::Node(NodeId(1))),
            Some(Tier::DisaggMemory)
        );
        assert_eq!(
            SpillPlanner::target_tier(SpillTarget::Durable(NodeId(1))),
            Some(Tier::Durable)
        );
        assert_eq!(SpillPlanner::target_tier(SpillTarget::Drop), None);
    }

    #[test]
    fn blade_with_insufficient_room_skipped() {
        let topo = presets::small_disagg_cluster();
        let planner = SpillPlanner::new(&topo, SpillPolicy::default());
        // Blade has 50 bytes free; object needs 100.
        let t = planner.plan(0, 100, false, |_| 50);
        assert!(matches!(t, SpillTarget::Durable(_)));
        let t = planner.plan(0, 40, false, |_| 50);
        assert!(matches!(t, SpillTarget::Node(_)));
    }
}

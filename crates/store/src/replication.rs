//! Replica placement and failure masking.
//!
//! The paper's reliable caching layer option (§2.1) replicates cached
//! objects so a node failure does not force lineage re-execution. This
//! module chooses replica nodes (rack-diverse when possible) and answers
//! availability queries under failures.

use std::collections::{HashMap, HashSet};

use skadi_dcsim::topology::{NodeId, Topology};

use crate::error::StoreError;
use crate::object::ObjectId;

/// Chooses `replicas` additional nodes for an object whose primary copy
/// is on `primary`, preferring nodes in *other* racks (fault domains),
/// then other nodes in the same rack. `candidates` is the set of nodes
/// allowed to hold replicas (typically servers + memory blades).
///
/// Returns fewer than `replicas` nodes if the cluster is too small; the
/// caller decides whether that is acceptable.
pub fn choose_replica_nodes(
    topo: &Topology,
    candidates: &[NodeId],
    primary: NodeId,
    replicas: usize,
) -> Vec<NodeId> {
    let primary_rack = topo.rack_of(primary);
    let mut other_rack: Vec<NodeId> = Vec::new();
    let mut same_rack: Vec<NodeId> = Vec::new();
    for &n in candidates {
        if n == primary {
            continue;
        }
        if topo.rack_of(n) != primary_rack {
            other_rack.push(n);
        } else {
            same_rack.push(n);
        }
    }
    // Deterministic order: by node ID within each class.
    other_rack.sort();
    same_rack.sort();
    other_rack
        .into_iter()
        .chain(same_rack)
        .take(replicas)
        .collect()
}

/// Tracks which nodes hold copies of which objects.
#[derive(Debug, Clone, Default)]
pub struct ReplicaIndex {
    holders: HashMap<ObjectId, Vec<NodeId>>,
}

impl ReplicaIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        ReplicaIndex::default()
    }

    /// Records that `node` holds a copy of `id`.
    pub fn add(&mut self, id: ObjectId, node: NodeId) {
        let holders = self.holders.entry(id).or_default();
        if !holders.contains(&node) {
            holders.push(node);
        }
    }

    /// Records that `node` no longer holds `id`.
    pub fn remove(&mut self, id: ObjectId, node: NodeId) {
        if let Some(holders) = self.holders.get_mut(&id) {
            holders.retain(|n| *n != node);
            if holders.is_empty() {
                self.holders.remove(&id);
            }
        }
    }

    /// Forgets the object entirely.
    pub fn drop_object(&mut self, id: ObjectId) {
        self.holders.remove(&id);
    }

    /// The nodes currently holding `id` (empty slice if unknown).
    pub fn holders(&self, id: ObjectId) -> &[NodeId] {
        self.holders.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Nodes holding `id` that are not in `failed`.
    pub fn surviving(&self, id: ObjectId, failed: &HashSet<NodeId>) -> Vec<NodeId> {
        self.holders(id)
            .iter()
            .copied()
            .filter(|n| !failed.contains(n))
            .collect()
    }

    /// True if at least one copy survives the failure set.
    pub fn is_available(&self, id: ObjectId, failed: &HashSet<NodeId>) -> bool {
        !self.surviving(id, failed).is_empty()
    }

    /// Removes `node` from every object, returning the objects whose last
    /// copy was lost (the set lineage must re-create).
    pub fn fail_node(&mut self, node: NodeId) -> Vec<ObjectId> {
        let mut lost = Vec::new();
        let ids: Vec<ObjectId> = self.holders.keys().copied().collect();
        for id in ids {
            let holders = self.holders.get_mut(&id).expect("just listed");
            holders.retain(|n| *n != node);
            if holders.is_empty() {
                self.holders.remove(&id);
                lost.push(id);
            }
        }
        lost.sort();
        lost
    }

    /// The first surviving holder, or an error naming the object.
    pub fn any_holder(&self, id: ObjectId) -> Result<NodeId, StoreError> {
        self.holders(id)
            .first()
            .copied()
            .ok_or(StoreError::NotFound(id))
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.holders.len()
    }

    /// True if no objects are tracked.
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_dcsim::topology::presets;

    #[test]
    fn replica_nodes_prefer_other_racks() {
        let topo = presets::small_disagg_cluster();
        let servers = topo.servers();
        let primary = servers[0]; // Rack 0.
        let picks = choose_replica_nodes(&topo, &servers, primary, 2);
        assert_eq!(picks.len(), 2);
        for p in &picks {
            assert_ne!(*p, primary);
            assert!(!topo.same_rack(primary, *p), "replica {p} in same rack");
        }
    }

    #[test]
    fn falls_back_to_same_rack_when_needed() {
        let topo = presets::server_cluster(1, 3);
        let servers = topo.servers();
        let picks = choose_replica_nodes(&topo, &servers, servers[0], 2);
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn small_cluster_returns_fewer() {
        let topo = presets::server_cluster(1, 2);
        let servers = topo.servers();
        let picks = choose_replica_nodes(&topo, &servers, servers[0], 5);
        assert_eq!(picks.len(), 1);
    }

    #[test]
    fn index_add_remove() {
        let mut idx = ReplicaIndex::new();
        idx.add(ObjectId(1), NodeId(0));
        idx.add(ObjectId(1), NodeId(2));
        idx.add(ObjectId(1), NodeId(2)); // Duplicate ignored.
        assert_eq!(idx.holders(ObjectId(1)), &[NodeId(0), NodeId(2)]);
        idx.remove(ObjectId(1), NodeId(0));
        assert_eq!(idx.holders(ObjectId(1)), &[NodeId(2)]);
    }

    #[test]
    fn fail_node_reports_lost_objects() {
        let mut idx = ReplicaIndex::new();
        idx.add(ObjectId(1), NodeId(0)); // Only copy on node 0: lost.
        idx.add(ObjectId(2), NodeId(0));
        idx.add(ObjectId(2), NodeId(1)); // Replica survives.
        let lost = idx.fail_node(NodeId(0));
        assert_eq!(lost, vec![ObjectId(1)]);
        assert!(idx.is_available(ObjectId(2), &HashSet::new()));
        assert_eq!(idx.holders(ObjectId(2)), &[NodeId(1)]);
    }

    #[test]
    fn surviving_filters_failed() {
        let mut idx = ReplicaIndex::new();
        idx.add(ObjectId(1), NodeId(0));
        idx.add(ObjectId(1), NodeId(1));
        let failed: HashSet<NodeId> = [NodeId(0)].into_iter().collect();
        assert_eq!(idx.surviving(ObjectId(1), &failed), vec![NodeId(1)]);
        assert!(idx.is_available(ObjectId(1), &failed));
        let both: HashSet<NodeId> = [NodeId(0), NodeId(1)].into_iter().collect();
        assert!(!idx.is_available(ObjectId(1), &both));
    }

    #[test]
    fn any_holder_errors_when_unknown() {
        let idx = ReplicaIndex::new();
        assert!(matches!(
            idx.any_holder(ObjectId(9)),
            Err(StoreError::NotFound(_))
        ));
    }
}

//! Error type for the store.

use std::fmt;

use crate::object::ObjectId;
use crate::tier::Tier;

/// Errors from the object store and caching layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The object is not present anywhere reachable.
    NotFound(ObjectId),
    /// The object cannot fit even after eviction.
    OutOfCapacity {
        /// Object that failed to fit.
        id: ObjectId,
        /// Bytes requested.
        requested: u64,
        /// Capacity of the tier it targeted.
        capacity: u64,
        /// Tier that rejected it.
        tier: Tier,
    },
    /// An object was inserted twice.
    Duplicate(ObjectId),
    /// Erasure-coding parameters or shards were invalid.
    CodingError(String),
    /// Not enough replicas/shards survive to reconstruct the object.
    Unrecoverable {
        /// Object that cannot be reconstructed.
        id: ObjectId,
        /// Surviving fragment count.
        available: usize,
        /// Fragments needed.
        needed: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(id) => write!(f, "object {id} not found"),
            StoreError::OutOfCapacity {
                id,
                requested,
                capacity,
                tier,
            } => write!(
                f,
                "object {id} ({requested} B) cannot fit in {tier} tier of {capacity} B"
            ),
            StoreError::Duplicate(id) => write!(f, "object {id} already stored"),
            StoreError::CodingError(msg) => write!(f, "erasure coding: {msg}"),
            StoreError::Unrecoverable {
                id,
                available,
                needed,
            } => write!(
                f,
                "object {id} unrecoverable: {available} of {needed} fragments available"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = StoreError::NotFound(ObjectId(7));
        assert!(e.to_string().contains("obj7"));
        let e = StoreError::Unrecoverable {
            id: ObjectId(1),
            available: 2,
            needed: 4,
        };
        assert!(e.to_string().contains("2 of 4"));
    }
}

//! Per-node object store with capacity accounting and eviction.
//!
//! One [`LocalStore`] models one plasma-like store: the object table of a
//! server's DRAM, a device's HBM, a memory blade's pool, or the durable
//! backstop. The cluster-wide view lives in
//! [`crate::placement::CachingLayer`].

use std::collections::HashMap;

use skadi_dcsim::time::SimTime;
use skadi_dcsim::topology::NodeId;

use crate::error::StoreError;
use crate::object::{ObjectId, ObjectMeta};
use crate::policy::EvictionPolicy;
use crate::tier::Tier;

/// One stored object: metadata plus an optional real payload (experiments
/// usually track only sizes; examples store actual bytes).
#[derive(Debug, Clone)]
struct Slot {
    meta: ObjectMeta,
    payload: Option<Vec<u8>>,
}

/// A single node's object store.
#[derive(Debug, Clone)]
pub struct LocalStore {
    node: NodeId,
    tier: Tier,
    capacity: u64,
    used: u64,
    policy: EvictionPolicy,
    slots: HashMap<ObjectId, Slot>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LocalStore {
    /// Creates a store of `capacity` bytes on `node` at the given tier.
    pub fn new(node: NodeId, tier: Tier, capacity: u64, policy: EvictionPolicy) -> Self {
        LocalStore {
            node,
            tier,
            capacity,
            used: 0,
            policy,
            slots: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The node this store lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The memory tier this store represents.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// (hits, misses, evictions) since creation.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// True if the object is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.slots.contains_key(&id)
    }

    /// Inserts an object, evicting colder objects if necessary.
    ///
    /// Returns the metadata of every evicted object (in eviction order) so
    /// the caching layer can spill them to a colder tier rather than lose
    /// them.
    pub fn put(
        &mut self,
        id: ObjectId,
        size: u64,
        payload: Option<Vec<u8>>,
        now: SimTime,
    ) -> Result<Vec<ObjectMeta>, StoreError> {
        if self.slots.contains_key(&id) {
            return Err(StoreError::Duplicate(id));
        }
        if size > self.capacity {
            return Err(StoreError::OutOfCapacity {
                id,
                requested: size,
                capacity: self.capacity,
                tier: self.tier,
            });
        }
        let mut evicted: Vec<Slot> = Vec::new();
        if self.used + size > self.capacity {
            let need = self.used + size - self.capacity;
            let candidates: Vec<ObjectMeta> = {
                let mut c: Vec<ObjectMeta> = self
                    .slots
                    .values()
                    .filter(|s| !s.meta.pinned)
                    .map(|s| s.meta.clone())
                    .collect();
                // HashMap iteration order is nondeterministic; sort so the
                // policy sees a canonical candidate list.
                c.sort_by_key(|m| m.id);
                c
            };
            let victims = self.policy.victims(&candidates, need);
            let mut freed = 0u64;
            for v in victims {
                if let Some(slot) = self.slots.remove(&v) {
                    freed += slot.meta.size;
                    self.used -= slot.meta.size;
                    self.evictions += 1;
                    evicted.push(slot);
                }
            }
            if freed < need {
                // Roll back: re-inserting evicted objects (payloads
                // included) keeps the store consistent when the put is
                // impossible (all pinned).
                for slot in evicted {
                    self.used += slot.meta.size;
                    self.evictions -= 1;
                    self.slots.insert(slot.meta.id, slot);
                }
                return Err(StoreError::OutOfCapacity {
                    id,
                    requested: size,
                    capacity: self.capacity,
                    tier: self.tier,
                });
            }
        }
        self.used += size;
        self.slots.insert(
            id,
            Slot {
                meta: ObjectMeta::new(id, size, now),
                payload,
            },
        );
        Ok(evicted.into_iter().map(|s| s.meta).collect())
    }

    /// Looks up an object, updating recency/frequency. Returns its
    /// metadata.
    pub fn get(&mut self, id: ObjectId, now: SimTime) -> Result<ObjectMeta, StoreError> {
        match self.slots.get_mut(&id) {
            Some(slot) => {
                slot.meta.touch(now);
                self.hits += 1;
                Ok(slot.meta.clone())
            }
            None => {
                self.misses += 1;
                Err(StoreError::NotFound(id))
            }
        }
    }

    /// Reads an object's payload bytes, if a payload was stored.
    pub fn payload(&self, id: ObjectId) -> Option<&[u8]> {
        self.slots.get(&id).and_then(|s| s.payload.as_deref())
    }

    /// Removes an object, returning its metadata.
    pub fn delete(&mut self, id: ObjectId) -> Result<ObjectMeta, StoreError> {
        match self.slots.remove(&id) {
            Some(slot) => {
                self.used -= slot.meta.size;
                Ok(slot.meta)
            }
            None => Err(StoreError::NotFound(id)),
        }
    }

    /// Pins or unpins an object (pinned objects are never evicted).
    pub fn set_pinned(&mut self, id: ObjectId, pinned: bool) -> Result<(), StoreError> {
        match self.slots.get_mut(&id) {
            Some(slot) => {
                slot.meta.pinned = pinned;
                Ok(())
            }
            None => Err(StoreError::NotFound(id)),
        }
    }

    /// Metadata of every resident object, sorted by ID (deterministic).
    pub fn metas(&self) -> Vec<ObjectMeta> {
        let mut v: Vec<ObjectMeta> = self.slots.values().map(|s| s.meta.clone()).collect();
        v.sort_by_key(|m| m.id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(cap: u64) -> LocalStore {
        LocalStore::new(NodeId(0), Tier::HostDram, cap, EvictionPolicy::Lru)
    }

    #[test]
    fn put_get_delete() {
        let mut s = store(100);
        s.put(ObjectId(1), 40, None, SimTime::ZERO).unwrap();
        assert_eq!(s.used(), 40);
        let m = s.get(ObjectId(1), SimTime::from_micros(1)).unwrap();
        assert_eq!(m.size, 40);
        assert_eq!(m.access_count, 1);
        s.delete(ObjectId(1)).unwrap();
        assert_eq!(s.used(), 0);
        assert!(s.get(ObjectId(1), SimTime::from_micros(2)).is_err());
    }

    #[test]
    fn duplicate_put_rejected() {
        let mut s = store(100);
        s.put(ObjectId(1), 10, None, SimTime::ZERO).unwrap();
        assert!(matches!(
            s.put(ObjectId(1), 10, None, SimTime::ZERO),
            Err(StoreError::Duplicate(_))
        ));
    }

    #[test]
    fn eviction_makes_room_lru() {
        let mut s = store(100);
        s.put(ObjectId(1), 50, None, SimTime::ZERO).unwrap();
        s.put(ObjectId(2), 50, None, SimTime::ZERO).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        s.get(ObjectId(1), SimTime::from_micros(5)).unwrap();
        let evicted = s
            .put(ObjectId(3), 50, None, SimTime::from_micros(6))
            .unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].id, ObjectId(2));
        assert!(s.contains(ObjectId(1)));
        assert!(s.contains(ObjectId(3)));
        assert_eq!(s.used(), 100);
    }

    #[test]
    fn pinned_objects_survive_eviction() {
        let mut s = store(100);
        s.put(ObjectId(1), 60, None, SimTime::ZERO).unwrap();
        s.set_pinned(ObjectId(1), true).unwrap();
        s.put(ObjectId(2), 40, None, SimTime::ZERO).unwrap();
        // Needs 60 freed but only obj2 (40) is evictable: put must fail and
        // the store must stay consistent.
        let err = s.put(ObjectId(3), 100, None, SimTime::from_micros(1));
        assert!(matches!(err, Err(StoreError::OutOfCapacity { .. })));
        assert!(s.contains(ObjectId(1)));
        assert!(s.contains(ObjectId(2)));
        assert_eq!(s.used(), 100);
    }

    #[test]
    fn failed_put_rollback_preserves_payloads() {
        // Regression: the rollback path used to re-insert evicted objects
        // with `payload: None`, silently destroying their bytes.
        let mut s = store(100);
        s.put(ObjectId(1), 60, None, SimTime::ZERO).unwrap();
        s.set_pinned(ObjectId(1), true).unwrap();
        s.put(ObjectId(2), 4, Some(vec![9, 8, 7, 6]), SimTime::ZERO)
            .unwrap();
        // Needs 64 freed but only obj2 (4 bytes) is evictable: the put
        // fails, obj2 is evicted then rolled back — its payload must
        // survive the round trip, and the eviction must not be counted.
        let err = s.put(ObjectId(3), 100, None, SimTime::from_micros(1));
        assert!(matches!(err, Err(StoreError::OutOfCapacity { .. })));
        assert_eq!(s.payload(ObjectId(2)), Some(&[9u8, 8, 7, 6][..]));
        assert_eq!(s.stats().2, 0, "rolled-back evictions not counted");
    }

    #[test]
    fn oversized_object_rejected_outright() {
        let mut s = store(100);
        assert!(matches!(
            s.put(ObjectId(1), 101, None, SimTime::ZERO),
            Err(StoreError::OutOfCapacity { .. })
        ));
    }

    #[test]
    fn payload_round_trip() {
        let mut s = store(100);
        s.put(ObjectId(1), 3, Some(vec![1, 2, 3]), SimTime::ZERO)
            .unwrap();
        assert_eq!(s.payload(ObjectId(1)), Some(&[1u8, 2, 3][..]));
        assert_eq!(s.payload(ObjectId(9)), None);
    }

    #[test]
    fn stats_track_hits_misses_evictions() {
        let mut s = store(10);
        s.put(ObjectId(1), 10, None, SimTime::ZERO).unwrap();
        let _ = s.get(ObjectId(1), SimTime::ZERO);
        let _ = s.get(ObjectId(2), SimTime::ZERO);
        s.put(ObjectId(3), 10, None, SimTime::from_micros(1))
            .unwrap();
        assert_eq!(s.stats(), (1, 1, 1));
    }

    #[test]
    fn metas_sorted_by_id() {
        let mut s = store(100);
        s.put(ObjectId(5), 10, None, SimTime::ZERO).unwrap();
        s.put(ObjectId(2), 10, None, SimTime::ZERO).unwrap();
        let ids: Vec<u64> = s.metas().iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![2, 5]);
    }
}

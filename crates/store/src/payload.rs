//! Real object payloads.
//!
//! The caching layer ([`CachingLayer`](crate::placement::CachingLayer))
//! tracks *where* objects live and what moving them costs; it never holds
//! the bytes themselves. The [`PayloadStore`] is the complementary
//! content store: a flat key -> bytes map modeling the cluster's object
//! store contents, used by the runtime's data plane to hand a task its
//! real input frames and keep its real output frames for consumers (and
//! for recovery replay — a deterministic task re-executed after a
//! failure reproduces the identical bytes, so dropping an entry and
//! recomputing is always safe).
//!
//! Payloads are reference-counted: staging an input for a consumer
//! shares the buffer instead of copying it.

use std::collections::HashMap;
use std::rc::Rc;

/// A flat content store: key -> reference-counted payload bytes.
#[derive(Debug, Clone, Default)]
pub struct PayloadStore {
    objects: HashMap<u64, Rc<Vec<u8>>>,
}

impl PayloadStore {
    /// An empty store.
    pub fn new() -> Self {
        PayloadStore::default()
    }

    /// Stores (or replaces) a payload, returning the shared handle.
    pub fn put(&mut self, key: u64, bytes: Vec<u8>) -> Rc<Vec<u8>> {
        let rc = Rc::new(bytes);
        self.objects.insert(key, Rc::clone(&rc));
        rc
    }

    /// A shared handle to a payload, if present.
    pub fn get(&self, key: u64) -> Option<Rc<Vec<u8>>> {
        self.objects.get(&key).cloned()
    }

    /// The payload bytes, if present.
    pub fn bytes(&self, key: u64) -> Option<&[u8]> {
        self.objects.get(&key).map(|b| b.as_slice())
    }

    /// The stored size of a payload, if present.
    pub fn size(&self, key: u64) -> Option<u64> {
        self.objects.get(&key).map(|b| b.len() as u64)
    }

    /// Drops a payload (consumers holding a handle keep theirs).
    pub fn remove(&mut self, key: u64) -> bool {
        self.objects.remove(&key).is_some()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.objects.clear();
    }

    /// Number of stored payloads.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.values().map(|b| b.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove() {
        let mut s = PayloadStore::new();
        assert!(s.is_empty());
        let h = s.put(7, vec![1, 2, 3]);
        assert_eq!(h.as_slice(), &[1, 2, 3]);
        assert_eq!(s.bytes(7), Some(&[1u8, 2, 3][..]));
        assert_eq!(s.size(7), Some(3));
        assert_eq!(s.total_bytes(), 3);
        // Handles outlive removal.
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert_eq!(h.as_slice(), &[1, 2, 3]);
        assert!(s.get(7).is_none());
    }

    #[test]
    fn put_replaces() {
        let mut s = PayloadStore::new();
        s.put(1, vec![0; 10]);
        s.put(1, vec![0; 4]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_bytes(), 4);
        s.clear();
        assert!(s.is_empty());
    }
}

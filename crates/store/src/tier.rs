//! Memory tiers of the caching layer.
//!
//! The paper's caching layer (Figure 2, red boxes) manages host DRAM, HBM
//! on heterogeneous devices, and disaggregated memory behind one KV API;
//! durable cloud storage is the backstop. Tiers are ordered by access
//! cost, and the placement logic spills cold data *down* the order.

use std::fmt;

use skadi_dcsim::time::SimDuration;

/// One tier of the memory hierarchy, cheapest-to-access first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// HBM on an accelerator device — fastest for the device's own ops.
    DeviceHbm,
    /// DRAM on a regular server.
    HostDram,
    /// A disaggregated memory blade across the fabric.
    DisaggMemory,
    /// Durable cloud storage (S3-class).
    Durable,
}

impl Tier {
    /// All tiers, fastest first.
    pub const ALL: [Tier; 4] = [
        Tier::DeviceHbm,
        Tier::HostDram,
        Tier::DisaggMemory,
        Tier::Durable,
    ];

    /// The next slower tier, if any.
    pub fn next_colder(self) -> Option<Tier> {
        match self {
            Tier::DeviceHbm => Some(Tier::HostDram),
            Tier::HostDram => Some(Tier::DisaggMemory),
            Tier::DisaggMemory => Some(Tier::Durable),
            Tier::Durable => None,
        }
    }

    /// Nominal access latency for a small read hitting this tier. These
    /// feed the cache experiments; bulk transfers are priced by the
    /// network model instead.
    pub fn access_latency(self) -> SimDuration {
        match self {
            Tier::DeviceHbm => SimDuration::from_nanos(300),
            Tier::HostDram => SimDuration::from_nanos(100),
            Tier::DisaggMemory => SimDuration::from_micros(4),
            Tier::Durable => SimDuration::from_millis(10),
        }
    }

    /// Nominal bandwidth for bulk reads from this tier, bytes/second.
    pub fn bandwidth_bps(self) -> u64 {
        match self {
            Tier::DeviceHbm => 800 << 30,
            Tier::HostDram => 100 << 30,
            Tier::DisaggMemory => 12 << 30,
            Tier::Durable => 100 << 20,
        }
    }

    /// Stable lowercase name, used as a metric label value.
    pub fn label(self) -> &'static str {
        match self {
            Tier::DeviceHbm => "device-hbm",
            Tier::HostDram => "host-dram",
            Tier::DisaggMemory => "disagg-memory",
            Tier::Durable => "durable",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colder_chain_terminates() {
        let mut t = Tier::DeviceHbm;
        let mut steps = 0;
        while let Some(next) = t.next_colder() {
            t = next;
            steps += 1;
        }
        assert_eq!(t, Tier::Durable);
        assert_eq!(steps, 3);
    }

    #[test]
    fn latency_monotone_down_the_hierarchy() {
        // DRAM and HBM are both "fast"; everything past them must be
        // strictly slower.
        assert!(Tier::DisaggMemory.access_latency() > Tier::HostDram.access_latency());
        assert!(Tier::Durable.access_latency() > Tier::DisaggMemory.access_latency());
    }

    #[test]
    fn bandwidth_monotone() {
        assert!(Tier::DeviceHbm.bandwidth_bps() > Tier::HostDram.bandwidth_bps());
        assert!(Tier::HostDram.bandwidth_bps() > Tier::DisaggMemory.bandwidth_bps());
        assert!(Tier::DisaggMemory.bandwidth_bps() > Tier::Durable.bandwidth_bps());
    }
}

//! Object identity and metadata.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use skadi_dcsim::time::SimTime;

/// Globally-unique object identifier.
///
/// IDs are plain integers; allocation order is deterministic when minted
/// through a single [`ObjectIdGen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// A deterministic, thread-safe ID mint.
#[derive(Debug, Default)]
pub struct ObjectIdGen {
    next: AtomicU64,
}

impl ObjectIdGen {
    /// Creates a mint starting at zero.
    pub fn new() -> Self {
        ObjectIdGen::default()
    }

    /// Mints the next ID.
    pub fn next(&self) -> ObjectId {
        ObjectId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

/// Metadata the caching layer tracks per object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// The object's identity.
    pub id: ObjectId,
    /// Payload size in bytes.
    pub size: u64,
    /// When the object was created.
    pub created: SimTime,
    /// When the object was last read or written.
    pub last_access: SimTime,
    /// How many times the object has been accessed.
    pub access_count: u64,
    /// True if the object is pinned (never evicted), e.g. while a task
    /// consumes it.
    pub pinned: bool,
}

impl ObjectMeta {
    /// Fresh metadata for a newly-stored object.
    pub fn new(id: ObjectId, size: u64, now: SimTime) -> Self {
        ObjectMeta {
            id,
            size,
            created: now,
            last_access: now,
            access_count: 0,
            pinned: false,
        }
    }

    /// Records one access at `now`.
    pub fn touch(&mut self, now: SimTime) {
        self.last_access = now;
        self.access_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_gen_is_sequential() {
        let g = ObjectIdGen::new();
        assert_eq!(g.next(), ObjectId(0));
        assert_eq!(g.next(), ObjectId(1));
        assert_eq!(g.next(), ObjectId(2));
    }

    #[test]
    fn touch_updates_recency_and_frequency() {
        let mut m = ObjectMeta::new(ObjectId(1), 100, SimTime::ZERO);
        m.touch(SimTime::from_micros(5));
        m.touch(SimTime::from_micros(9));
        assert_eq!(m.access_count, 2);
        assert_eq!(m.last_access, SimTime::from_micros(9));
        assert_eq!(m.created, SimTime::ZERO);
    }
}

//! # skadi-arrow — columnar shared data format
//!
//! The Skadi paper argues (§1, data-plane benefit 2) that a *shared
//! columnar format* — Apache Arrow in the paper — lets functions running
//! on heterogeneous devices exchange data without costly marshalling,
//! reducing the cost paid per transfer. This crate is a small from-scratch
//! Arrow-alike that makes that claim measurable:
//!
//! - [`datatype`]/[`schema`]: logical types and record schemas.
//! - [`buffer`]: immutable, cheaply-sliceable byte buffers (backed by
//!   [`bytes::Bytes`]) and packed validity bitmaps.
//! - [`array`](mod@array): typed columnar arrays (`Int64`, `Float64`, `Bool`, `Utf8`,
//!   and dictionary-encoded `DictUtf8`) with builders.
//! - [`batch`]: [`RecordBatch`] — a schema plus equal-length columns.
//! - [`ipc`]: a framed wire format whose decode path *shares* the input
//!   buffer (no per-value work), standing in for Arrow IPC.
//! - [`compression`]: an LZ4-style block codec the shuffle and wire
//!   paths use to shrink IPC frames (and therefore measured bytes).
//! - [`compute`]: basic kernels (filter/take/aggregate/compare/hash) used
//!   by the simulated operators.
//! - [`marshal`]: a deliberately conventional row-at-a-time format with
//!   per-value tags and string copies — the "costly data marshalling"
//!   baseline that experiment E9 compares against.
//!
//! # Examples
//!
//! ```
//! use skadi_arrow::prelude::*;
//!
//! let schema = Schema::new(vec![
//!     Field::new("id", DataType::Int64, false),
//!     Field::new("name", DataType::Utf8, true),
//! ]);
//! let batch = RecordBatch::try_new(
//!     schema,
//!     vec![
//!         Array::from_i64(vec![1, 2, 3]),
//!         Array::from_opt_utf8(vec![Some("a"), None, Some("c")]),
//!     ],
//! )
//! .unwrap();
//!
//! // IPC round-trip shares the encoded buffer.
//! let bytes = skadi_arrow::ipc::encode(&batch);
//! let back = skadi_arrow::ipc::decode(bytes).unwrap();
//! assert_eq!(batch, back);
//! ```

pub mod array;
pub mod batch;
pub mod buffer;
pub mod compression;
pub mod compute;
pub mod datatype;
pub mod error;
pub mod ipc;
pub mod marshal;
pub mod schema;

pub use array::Array;
pub use batch::RecordBatch;
pub use buffer::{Bitmap, Buffer};
pub use datatype::DataType;
pub use error::ArrowError;
pub use schema::{Field, Schema};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::array::Array;
    pub use crate::batch::RecordBatch;
    pub use crate::datatype::DataType;
    pub use crate::error::ArrowError;
    pub use crate::schema::{Field, Schema};
}

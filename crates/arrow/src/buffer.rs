//! Immutable byte buffers and packed validity bitmaps.
//!
//! [`Buffer`] wraps [`bytes::Bytes`]: cloning and slicing are O(1)
//! reference-count operations, which is what makes the IPC decode path
//! genuinely zero-copy — decoded arrays alias the wire buffer.

use bytes::Bytes;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Buffer {
    data: Bytes,
}

impl Buffer {
    /// Creates an empty buffer.
    pub fn empty() -> Self {
        Buffer { data: Bytes::new() }
    }

    /// Wraps owned bytes.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Buffer {
            data: Bytes::from(v),
        }
    }

    /// Wraps shared bytes without copying.
    pub fn from_bytes(b: Bytes) -> Self {
        Buffer { data: b }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw byte view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// O(1) sub-slice sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, offset: usize, len: usize) -> Buffer {
        Buffer {
            data: self.data.slice(offset..offset + len),
        }
    }

    /// The underlying shared bytes.
    pub fn bytes(&self) -> Bytes {
        self.data.clone()
    }

    /// Reads the i64 at element index `i` (little-endian).
    pub fn get_i64(&self, i: usize) -> i64 {
        let start = i * 8;
        i64::from_le_bytes(self.data[start..start + 8].try_into().expect("8 bytes"))
    }

    /// Reads the f64 at element index `i` (little-endian).
    pub fn get_f64(&self, i: usize) -> f64 {
        let start = i * 8;
        f64::from_le_bytes(self.data[start..start + 8].try_into().expect("8 bytes"))
    }

    /// Reads the i32 at element index `i` (little-endian).
    pub fn get_i32(&self, i: usize) -> i32 {
        let start = i * 4;
        i32::from_le_bytes(self.data[start..start + 4].try_into().expect("4 bytes"))
    }

    /// Reads the u32 at element index `i` (little-endian).
    pub fn get_u32(&self, i: usize) -> u32 {
        let start = i * 4;
        u32::from_le_bytes(self.data[start..start + 4].try_into().expect("4 bytes"))
    }

    /// Iterates the first `len` elements as u32 (little-endian).
    pub fn iter_u32(&self, len: usize) -> impl Iterator<Item = u32> + '_ {
        self.data[..len * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
    }

    /// Iterates the first `len` elements as i64 (little-endian), in one
    /// pass over the raw bytes — the tight-loop form the vectorized
    /// kernels use instead of per-element `get_i64` calls.
    pub fn iter_i64(&self, len: usize) -> impl Iterator<Item = i64> + '_ {
        self.data[..len * 8]
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
    }

    /// Iterates the first `len` elements as f64 (little-endian).
    pub fn iter_f64(&self, len: usize) -> impl Iterator<Item = f64> + '_ {
        self.data[..len * 8]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
    }
}

impl From<Vec<i64>> for Buffer {
    fn from(v: Vec<i64>) -> Self {
        let mut out = Vec::with_capacity(v.len() * 8);
        for x in v {
            out.extend_from_slice(&x.to_le_bytes());
        }
        Buffer::from_vec(out)
    }
}

impl From<Vec<f64>> for Buffer {
    fn from(v: Vec<f64>) -> Self {
        let mut out = Vec::with_capacity(v.len() * 8);
        for x in v {
            out.extend_from_slice(&x.to_le_bytes());
        }
        Buffer::from_vec(out)
    }
}

impl From<Vec<u32>> for Buffer {
    fn from(v: Vec<u32>) -> Self {
        let mut out = Vec::with_capacity(v.len() * 4);
        for x in v {
            out.extend_from_slice(&x.to_le_bytes());
        }
        Buffer::from_vec(out)
    }
}

impl From<Vec<i32>> for Buffer {
    fn from(v: Vec<i32>) -> Self {
        let mut out = Vec::with_capacity(v.len() * 4);
        for x in v {
            out.extend_from_slice(&x.to_le_bytes());
        }
        Buffer::from_vec(out)
    }
}

/// A bit-packed boolean sequence (LSB-first within each byte), used both
/// for `Bool` array values and for validity (null) bitmaps.
///
/// Equality is *logical*: padding bits in the final byte are ignored, so
/// bitmaps built by different code paths compare equal when their bits do.
#[derive(Debug, Clone)]
pub struct Bitmap {
    bits: Buffer,
    len: usize,
}

impl PartialEq for Bitmap {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for Bitmap {}

impl Bitmap {
    /// Builds a bitmap from booleans.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut bytes = vec![0u8; bools.len().div_ceil(8)];
        for (i, b) in bools.iter().enumerate() {
            if *b {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        Bitmap {
            bits: Buffer::from_vec(bytes),
            len: bools.len(),
        }
    }

    /// Builds an all-set bitmap of length `len`.
    pub fn all_set(len: usize) -> Self {
        Bitmap {
            bits: Buffer::from_vec(vec![0xFF; len.div_ceil(8)]),
            len,
        }
    }

    /// Reconstructs a bitmap from its packed bytes.
    pub fn from_buffer(bits: Buffer, len: usize) -> Self {
        assert!(bits.len() >= len.div_ceil(8), "bitmap buffer too short");
        Bitmap { bits, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of bounds for {}", self.len);
        self.bits.as_slice()[i / 8] & (1 << (i % 8)) != 0
    }

    /// Number of set bits. Popcounts the packed bytes a u64 word (eight
    /// bytes) at a time, falling back to per-byte `count_ones` for the
    /// sub-word remainder and masking the padding bits of the final byte
    /// (which `all_set` leaves set).
    pub fn count_set(&self) -> usize {
        let full_bytes = self.len / 8;
        let bytes = self.bits.as_slice();
        let mut chunks = bytes[..full_bytes].chunks_exact(8);
        let mut n: usize = 0;
        for word in &mut chunks {
            n += u64::from_le_bytes(word.try_into().expect("8 bytes")).count_ones() as usize;
        }
        n += chunks
            .remainder()
            .iter()
            .map(|b| b.count_ones() as usize)
            .sum::<usize>();
        let tail = self.len % 8;
        if tail > 0 {
            let mask = (1u16 << tail) as u8 - 1;
            n += (bytes[full_bytes] & mask).count_ones() as usize;
        }
        n
    }

    /// The packed backing buffer.
    pub fn buffer(&self) -> &Buffer {
        &self.bits
    }

    /// Iterates over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_slicing_shares_data() {
        let b = Buffer::from_vec((0..32u8).collect());
        let s = b.slice(8, 8);
        assert_eq!(s.as_slice(), &(8..16u8).collect::<Vec<_>>()[..]);
        // Same backing allocation: pointer into the same range.
        let base = b.as_slice().as_ptr() as usize;
        let sub = s.as_slice().as_ptr() as usize;
        assert_eq!(sub, base + 8);
    }

    #[test]
    fn typed_reads() {
        let b: Buffer = vec![1i64, -2, i64::MAX].into();
        assert_eq!(b.get_i64(0), 1);
        assert_eq!(b.get_i64(1), -2);
        assert_eq!(b.get_i64(2), i64::MAX);
        let f: Buffer = vec![1.5f64, -0.25].into();
        assert_eq!(f.get_f64(1), -0.25);
        let i: Buffer = vec![7i32, 8, 9].into();
        assert_eq!(i.get_i32(2), 9);
    }

    #[test]
    fn bitmap_round_trip() {
        let bools: Vec<bool> = (0..19).map(|i| i % 3 == 0).collect();
        let bm = Bitmap::from_bools(&bools);
        assert_eq!(bm.len(), 19);
        for (i, b) in bools.iter().enumerate() {
            assert_eq!(bm.get(i), *b, "bit {i}");
        }
        assert_eq!(bm.count_set(), bools.iter().filter(|b| **b).count());
        assert_eq!(bm.iter().collect::<Vec<_>>(), bools);
    }

    #[test]
    fn count_set_matches_naive_across_word_boundaries() {
        // Lengths chosen to hit: empty, sub-byte, sub-word, exact word
        // multiples, and word-plus-tail shapes of the popcount loop.
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 128, 131, 1027] {
            let bools: Vec<bool> = (0..len).map(|i| (i * 7 + i / 3) % 5 < 2).collect();
            let bm = Bitmap::from_bools(&bools);
            let naive = bools.iter().filter(|b| **b).count();
            assert_eq!(bm.count_set(), naive, "len {len}");
        }
    }

    #[test]
    fn all_set_is_all_set() {
        let bm = Bitmap::all_set(10);
        assert_eq!(bm.count_set(), 10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bitmap_bounds_checked() {
        Bitmap::all_set(3).get(3);
    }

    #[test]
    fn bitmap_from_buffer_reconstructs() {
        let bools = vec![true, false, true, true, false];
        let bm = Bitmap::from_bools(&bools);
        let bm2 = Bitmap::from_buffer(bm.buffer().clone(), bools.len());
        assert_eq!(bm, bm2);
    }
}

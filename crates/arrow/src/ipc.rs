//! Framed wire format with a zero-copy decode path.
//!
//! This stands in for Arrow IPC: encode writes the schema header followed
//! by the raw column buffers; decode reconstructs arrays whose buffers
//! *alias* the wire bytes (O(1) per buffer, no per-value work). Experiment
//! E9 contrasts this with [`crate::marshal`], the conventional
//! row-at-a-time baseline.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "SKAR" | version u8 | ncols u16 | nrows u64
//! ncols x field:  name_len u16 | name bytes | type tag u8 | nullable u8
//! ncols x column: has_validity u8 [| validity bits ceil(nrows/8)]
//!                 Int64/Float64: values (nrows * 8)
//!                 Bool:          value bits ceil(nrows/8)
//!                 Utf8:          offsets ((nrows+1) * 4) | data_len u64 | data
//!                 DictUtf8:      keys (nrows * 4) | dict_len u64
//!                                | dict offsets ((dict_len+1) * 4)
//!                                | dict data_len u64 | dict data
//! ```

use bytes::Bytes;

use crate::array::{Array, BoolArray, DictUtf8Array, Float64Array, Int64Array, Utf8Array};
use crate::batch::RecordBatch;
use crate::buffer::{Bitmap, Buffer};
use crate::datatype::DataType;
use crate::error::ArrowError;
use crate::schema::{Field, Schema};

const MAGIC: &[u8; 4] = b"SKAR";
const VERSION: u8 = 1;

/// Encodes a batch into a self-describing frame.
pub fn encode(batch: &RecordBatch) -> Bytes {
    let mut out: Vec<u8> = Vec::with_capacity(batch.byte_size() + 64);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(batch.num_columns() as u16).to_le_bytes());
    out.extend_from_slice(&(batch.num_rows() as u64).to_le_bytes());

    for field in batch.schema().fields() {
        let name = field.name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.push(field.data_type.tag());
        out.push(field.nullable as u8);
    }

    for col in batch.columns() {
        let validity = match col {
            Array::Int64(a) => a.validity(),
            Array::Float64(a) => a.validity(),
            Array::Bool(a) => a.validity(),
            Array::Utf8(a) => a.validity(),
            Array::DictUtf8(a) => a.validity(),
        };
        match validity {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(v.buffer().as_slice());
            }
            None => out.push(0),
        }
        match col {
            Array::Int64(a) => out.extend_from_slice(a.values().as_slice()),
            Array::Float64(a) => out.extend_from_slice(a.values().as_slice()),
            Array::Bool(a) => out.extend_from_slice(a.values().buffer().as_slice()),
            Array::Utf8(a) => {
                out.extend_from_slice(a.offsets().as_slice());
                out.extend_from_slice(&(a.data().len() as u64).to_le_bytes());
                out.extend_from_slice(a.data().as_slice());
            }
            Array::DictUtf8(a) => {
                out.extend_from_slice(&a.keys().as_slice()[..a.len() * 4]);
                let dict = a.dictionary();
                out.extend_from_slice(&(dict.len() as u64).to_le_bytes());
                out.extend_from_slice(&dict.offsets().as_slice()[..(dict.len() + 1) * 4]);
                out.extend_from_slice(&(dict.data().len() as u64).to_le_bytes());
                out.extend_from_slice(dict.data().as_slice());
            }
        }
    }
    Bytes::from(out)
}

/// A bounds-checked cursor over shared bytes that can hand out aliasing
/// sub-buffers.
struct Cursor {
    data: Bytes,
    pos: usize,
}

impl Cursor {
    fn new(data: Bytes) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<Bytes, ArrowError> {
        // `n` may come from a corrupt header; checked add so a huge value
        // is reported as truncation rather than overflowing.
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        let Some(end) = end else {
            return Err(ArrowError::Corrupt(format!(
                "truncated frame: need {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len() - self.pos
            )));
        };
        let b = self.data.slice(self.pos..end);
        self.pos = end;
        Ok(b)
    }

    fn u8(&mut self) -> Result<u8, ArrowError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ArrowError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64(&mut self) -> Result<u64, ArrowError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.as_ref().try_into().expect("8 bytes")))
    }
}

/// `count * width` with overflow reported as corruption: the counts come
/// straight from the (possibly hostile) frame header.
fn frame_size(count: usize, width: usize) -> Result<usize, ArrowError> {
    count
        .checked_mul(width)
        .ok_or_else(|| ArrowError::Corrupt(format!("frame size overflow: {count} x {width}")))
}

/// Decodes a frame produced by [`encode`]. Column buffers alias `data`.
pub fn decode(data: Bytes) -> Result<RecordBatch, ArrowError> {
    let mut cur = Cursor::new(data);
    let magic = cur.take(4)?;
    if magic.as_ref() != MAGIC {
        return Err(ArrowError::Corrupt("bad magic".into()));
    }
    let version = cur.u8()?;
    if version != VERSION {
        return Err(ArrowError::Corrupt(format!("unknown version {version}")));
    }
    let ncols = cur.u16()? as usize;
    let nrows = cur.u64()? as usize;

    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name_len = cur.u16()? as usize;
        let name_bytes = cur.take(name_len)?;
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| ArrowError::Corrupt("field name is not UTF-8".into()))?
            .to_string();
        let tag = cur.u8()?;
        let dt = DataType::from_tag(tag)
            .ok_or_else(|| ArrowError::Corrupt(format!("unknown type tag {tag}")))?;
        let nullable = cur.u8()? != 0;
        fields.push(Field::new(name, dt, nullable));
    }
    let schema = Schema::new(fields);

    let bitmap_bytes = nrows.div_ceil(8);
    let mut columns = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let has_validity = cur.u8()? != 0;
        let validity = if has_validity {
            let bits = Buffer::from_bytes(cur.take(bitmap_bytes)?);
            Some(Bitmap::from_buffer(bits, nrows))
        } else {
            None
        };
        let dt = schema.field(c).data_type;
        let array = match dt {
            DataType::Int64 => {
                let values = Buffer::from_bytes(cur.take(frame_size(nrows, 8)?)?);
                Array::Int64(Int64Array::from_parts(values, validity, nrows))
            }
            DataType::Float64 => {
                let values = Buffer::from_bytes(cur.take(frame_size(nrows, 8)?)?);
                Array::Float64(Float64Array::from_parts(values, validity, nrows))
            }
            DataType::Bool => {
                let bits = Buffer::from_bytes(cur.take(bitmap_bytes)?);
                Array::Bool(BoolArray::from_parts(
                    Bitmap::from_buffer(bits, nrows),
                    validity,
                ))
            }
            DataType::Utf8 => {
                let noffs = nrows
                    .checked_add(1)
                    .ok_or_else(|| ArrowError::Corrupt("row count overflow".into()))?;
                let offsets = Buffer::from_bytes(cur.take(frame_size(noffs, 4)?)?);
                let data_len = cur.u64()? as usize;
                let strings = Buffer::from_bytes(cur.take(data_len)?);
                // Validate the offsets so later accesses cannot slice out
                // of bounds or split UTF-8.
                let mut prev = 0i32;
                for i in 0..=nrows {
                    let o = offsets.get_i32(i);
                    if o < prev || o as usize > data_len {
                        return Err(ArrowError::Corrupt(format!("bad utf8 offset {o} at {i}")));
                    }
                    prev = o;
                }
                std::str::from_utf8(strings.as_slice())
                    .map_err(|_| ArrowError::Corrupt("utf8 column is not UTF-8".into()))?;
                Array::Utf8(Utf8Array::from_parts(offsets, strings, validity, nrows))
            }
            DataType::DictUtf8 => {
                let keys = Buffer::from_bytes(cur.take(frame_size(nrows, 4)?)?);
                let dict_len = cur.u64()? as usize;
                if dict_len > u32::MAX as usize {
                    return Err(ArrowError::Corrupt(format!(
                        "dictionary of {dict_len} entries exceeds u32 keys"
                    )));
                }
                let offsets = Buffer::from_bytes(cur.take(frame_size(dict_len + 1, 4)?)?);
                let data_len = cur.u64()? as usize;
                let strings = Buffer::from_bytes(cur.take(data_len)?);
                // Validate the dictionary exactly like a Utf8 column.
                let mut prev = 0i32;
                for i in 0..=dict_len {
                    let o = offsets.get_i32(i);
                    if o < prev || o as usize > data_len {
                        return Err(ArrowError::Corrupt(format!("bad dict offset {o} at {i}")));
                    }
                    prev = o;
                }
                std::str::from_utf8(strings.as_slice())
                    .map_err(|_| ArrowError::Corrupt("dict data is not UTF-8".into()))?;
                // Keys must resolve: valid slots index the dictionary,
                // null slots hold the canonical placeholder 0.
                for (i, k) in keys.iter_u32(nrows).enumerate() {
                    let is_valid = validity.as_ref().is_none_or(|v| v.get(i));
                    if is_valid && k as usize >= dict_len {
                        return Err(ArrowError::Corrupt(format!(
                            "dict key {k} at row {i} outside dictionary of {dict_len}"
                        )));
                    }
                    if !is_valid && k != 0 {
                        return Err(ArrowError::Corrupt(format!(
                            "non-canonical key {k} at null row {i}"
                        )));
                    }
                }
                let dict = Utf8Array::from_parts(offsets, strings, None, dict_len);
                Array::DictUtf8(DictUtf8Array::from_parts(keys, dict, validity, nrows))
            }
        };
        columns.push(array);
    }

    RecordBatch::try_new(schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("score", DataType::Float64, true),
            Field::new("flag", DataType::Bool, true),
            Field::new("name", DataType::Utf8, true),
        ]);
        RecordBatch::try_new(
            schema,
            vec![
                Array::from_i64(vec![1, 2, 3]),
                Array::from_opt_f64(vec![Some(0.5), None, Some(-1.25)]),
                Array::from_opt_bool(vec![Some(true), Some(false), None]),
                Array::from_opt_utf8(vec![Some("alpha"), None, Some("gamma")]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_all_types() {
        let b = sample();
        let bytes = encode(&b);
        let back = decode(bytes).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn round_trip_empty_batch() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]);
        let b = RecordBatch::empty(schema);
        assert_eq!(decode(encode(&b)).unwrap(), b);
    }

    #[test]
    fn decode_is_zero_copy() {
        let b = sample();
        let bytes = encode(&b);
        let base = bytes.as_ref().as_ptr() as usize;
        let end = base + bytes.len();
        let back = decode(bytes).unwrap();
        // The decoded int column's value buffer points into the frame.
        let col = back.column(0).as_i64().unwrap();
        let p = col.values().as_slice().as_ptr() as usize;
        assert!(p >= base && p < end, "decoded buffer does not alias frame");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode(Bytes::from_static(b"NOPE\x01\x00\x00")).unwrap_err();
        assert!(matches!(err, ArrowError::Corrupt(_)));
    }

    #[test]
    fn truncated_frame_rejected() {
        let bytes = encode(&sample());
        let cut = bytes.slice(0..bytes.len() - 5);
        assert!(matches!(decode(cut), Err(ArrowError::Corrupt(_))));
    }

    #[test]
    fn corrupt_offsets_rejected() {
        let schema = Schema::new(vec![Field::new("s", DataType::Utf8, false)]);
        let b = RecordBatch::try_new(schema, vec![Array::from_utf8(&["ab", "cd"])]).unwrap();
        let mut raw = encode(&b).to_vec();
        // Flip a byte inside the offsets region (last 4-byte offset).
        let data_start = raw.len() - 4; // "abcd"
        raw[data_start - 8 - 2] = 0xFF; // Corrupt the middle offset.
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(ArrowError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_version_rejected() {
        let mut raw = encode(&sample()).to_vec();
        raw[4] = 99;
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(ArrowError::Corrupt(_))
        ));
    }

    fn dict_sample() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("kind", DataType::DictUtf8, true),
        ]);
        RecordBatch::try_new(
            schema,
            vec![
                Array::from_i64(vec![1, 2, 3, 4, 5]),
                Array::from_opt_dict_utf8(vec![
                    Some("click"),
                    Some("view"),
                    None,
                    Some("click"),
                    Some("click"),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dict_round_trip() {
        let b = dict_sample();
        let back = decode(encode(&b)).unwrap();
        assert_eq!(b, back);
        // Still dictionary-encoded after the round trip, not decoded.
        assert_eq!(back.column(1).data_type(), DataType::DictUtf8);
        let d = back.column(1).as_dict_utf8().unwrap();
        assert_eq!(d.dictionary().len(), 2);
    }

    #[test]
    fn dict_frame_is_smaller_than_plain_for_repetitive_strings() {
        let n = 2000;
        let plain: Vec<&str> = (0..n)
            .map(|i| if i % 2 == 0 { "click" } else { "view" })
            .collect();
        let pb = RecordBatch::try_new(
            Schema::new(vec![Field::new("kind", DataType::Utf8, false)]),
            vec![Array::from_utf8(&plain)],
        )
        .unwrap();
        let db = RecordBatch::try_new(
            Schema::new(vec![Field::new("kind", DataType::DictUtf8, false)]),
            vec![Array::from_dict_utf8(&plain)],
        )
        .unwrap();
        let (pe, de) = (encode(&pb), encode(&db));
        assert!(
            de.len() < pe.len(),
            "dict frame {} !< plain frame {}",
            de.len(),
            pe.len()
        );
    }

    #[test]
    fn dict_out_of_range_key_rejected() {
        let mut raw = encode(&dict_sample()).to_vec();
        // Keys for column 1 sit right after its validity byte + bitmap.
        // Find them by corrupting every byte in turn and requiring that
        // the decoder never panics and that at least one corruption is
        // caught as an out-of-range key.
        let mut saw_key_error = false;
        for i in 0..raw.len() {
            let orig = raw[i];
            raw[i] = 0xEE;
            match decode(Bytes::from(raw.clone())) {
                Ok(_) => {}
                Err(ArrowError::Corrupt(msg)) => {
                    if msg.contains("outside dictionary") {
                        saw_key_error = true;
                    }
                }
                Err(_) => {}
            }
            raw[i] = orig;
        }
        assert!(saw_key_error, "no corruption tripped the key-range check");
    }

    #[test]
    fn dict_all_null_round_trips() {
        let schema = Schema::new(vec![Field::new("s", DataType::DictUtf8, true)]);
        let b = RecordBatch::try_new(
            schema,
            vec![Array::from_opt_dict_utf8(vec![None, None, None])],
        )
        .unwrap();
        assert_eq!(decode(encode(&b)).unwrap(), b);
    }

    #[test]
    fn large_batch_round_trip() {
        let n = 10_000;
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("v", DataType::Utf8, false),
        ]);
        let strings: Vec<String> = (0..n).map(|i| format!("value-{i}")).collect();
        let b = RecordBatch::try_new(
            schema,
            vec![
                Array::from_i64((0..n as i64).collect()),
                Array::from_utf8(&strings),
            ],
        )
        .unwrap();
        assert_eq!(decode(encode(&b)).unwrap(), b);
    }
}

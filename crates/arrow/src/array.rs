//! Typed columnar arrays.
//!
//! Arrays are immutable and buffer-backed; cloning is cheap. Nullability
//! is canonical: an array with no nulls stores `validity = None`, so two
//! logically-equal arrays built by different paths (builder, IPC decode,
//! kernel output) compare equal.

use std::fmt;

use crate::buffer::{Bitmap, Buffer};
use crate::datatype::DataType;
use crate::error::ArrowError;

/// One dynamically-typed value, used at the row-oriented edges of the
/// system (the marshalling baseline, tests, display).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// A fixed-width 64-bit integer array.
#[derive(Debug, Clone, PartialEq)]
pub struct Int64Array {
    values: Buffer,
    validity: Option<Bitmap>,
    len: usize,
}

impl Int64Array {
    /// Builds from values with no nulls.
    pub fn new(values: Vec<i64>) -> Self {
        let len = values.len();
        Int64Array {
            values: values.into(),
            validity: None,
            len,
        }
    }

    /// Builds from optional values.
    pub fn from_options(values: Vec<Option<i64>>) -> Self {
        let len = values.len();
        let mut raw = Vec::with_capacity(len);
        let mut valid = Vec::with_capacity(len);
        let mut any_null = false;
        for v in values {
            match v {
                Some(x) => {
                    raw.push(x);
                    valid.push(true);
                }
                None => {
                    raw.push(0);
                    valid.push(false);
                    any_null = true;
                }
            }
        }
        Int64Array {
            values: raw.into(),
            validity: any_null.then(|| Bitmap::from_bools(&valid)),
            len,
        }
    }

    /// Reconstructs from raw parts (IPC decode).
    pub fn from_parts(values: Buffer, validity: Option<Bitmap>, len: usize) -> Self {
        assert!(values.len() >= len * 8, "values buffer too short");
        Int64Array {
            values,
            validity,
            len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value at `i`, or `None` if null.
    pub fn get(&self, i: usize) -> Option<i64> {
        assert!(i < self.len, "index {i} out of bounds for {}", self.len);
        match &self.validity {
            Some(v) if !v.get(i) => None,
            _ => Some(self.values.get_i64(i)),
        }
    }

    /// Iterates all values.
    pub fn iter(&self) -> impl Iterator<Item = Option<i64>> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Iterates the raw values without consulting validity (null slots
    /// yield their placeholder `0`). The vectorized kernels pair this
    /// with [`Int64Array::validity`] to keep the inner loop branch-free.
    pub fn iter_raw(&self) -> impl Iterator<Item = i64> + '_ {
        self.values.iter_i64(self.len)
    }

    /// Gathers the rows at `indices` into a new array (typed `take`).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn take_rows(&self, indices: &[usize]) -> Int64Array {
        match &self.validity {
            None => {
                let raw: Vec<i64> = indices
                    .iter()
                    .map(|&i| {
                        assert!(i < self.len, "index {i} out of bounds for {}", self.len);
                        self.values.get_i64(i)
                    })
                    .collect();
                Int64Array::new(raw)
            }
            Some(v) => {
                let mut raw = Vec::with_capacity(indices.len());
                let mut valid = Vec::with_capacity(indices.len());
                let mut any_null = false;
                for &i in indices {
                    assert!(i < self.len, "index {i} out of bounds for {}", self.len);
                    if v.get(i) {
                        raw.push(self.values.get_i64(i));
                        valid.push(true);
                    } else {
                        raw.push(0);
                        valid.push(false);
                        any_null = true;
                    }
                }
                Int64Array {
                    values: raw.into(),
                    validity: any_null.then(|| Bitmap::from_bools(&valid)),
                    len: indices.len(),
                }
            }
        }
    }

    /// The raw values buffer.
    pub fn values(&self) -> &Buffer {
        &self.values
    }

    /// The validity bitmap, if any value is null.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }
}

/// A fixed-width 64-bit float array.
#[derive(Debug, Clone, PartialEq)]
pub struct Float64Array {
    values: Buffer,
    validity: Option<Bitmap>,
    len: usize,
}

impl Float64Array {
    /// Builds from values with no nulls.
    pub fn new(values: Vec<f64>) -> Self {
        let len = values.len();
        Float64Array {
            values: values.into(),
            validity: None,
            len,
        }
    }

    /// Builds from optional values.
    pub fn from_options(values: Vec<Option<f64>>) -> Self {
        let len = values.len();
        let mut raw = Vec::with_capacity(len);
        let mut valid = Vec::with_capacity(len);
        let mut any_null = false;
        for v in values {
            match v {
                Some(x) => {
                    raw.push(x);
                    valid.push(true);
                }
                None => {
                    raw.push(0.0);
                    valid.push(false);
                    any_null = true;
                }
            }
        }
        Float64Array {
            values: raw.into(),
            validity: any_null.then(|| Bitmap::from_bools(&valid)),
            len,
        }
    }

    /// Reconstructs from raw parts (IPC decode).
    pub fn from_parts(values: Buffer, validity: Option<Bitmap>, len: usize) -> Self {
        assert!(values.len() >= len * 8, "values buffer too short");
        Float64Array {
            values,
            validity,
            len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value at `i`, or `None` if null.
    pub fn get(&self, i: usize) -> Option<f64> {
        assert!(i < self.len, "index {i} out of bounds for {}", self.len);
        match &self.validity {
            Some(v) if !v.get(i) => None,
            _ => Some(self.values.get_f64(i)),
        }
    }

    /// Iterates all values.
    pub fn iter(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Iterates the raw values without consulting validity (null slots
    /// yield their placeholder `0.0`).
    pub fn iter_raw(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter_f64(self.len)
    }

    /// Gathers the rows at `indices` into a new array (typed `take`).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn take_rows(&self, indices: &[usize]) -> Float64Array {
        match &self.validity {
            None => {
                let raw: Vec<f64> = indices
                    .iter()
                    .map(|&i| {
                        assert!(i < self.len, "index {i} out of bounds for {}", self.len);
                        self.values.get_f64(i)
                    })
                    .collect();
                Float64Array::new(raw)
            }
            Some(v) => {
                let mut raw = Vec::with_capacity(indices.len());
                let mut valid = Vec::with_capacity(indices.len());
                let mut any_null = false;
                for &i in indices {
                    assert!(i < self.len, "index {i} out of bounds for {}", self.len);
                    if v.get(i) {
                        raw.push(self.values.get_f64(i));
                        valid.push(true);
                    } else {
                        raw.push(0.0);
                        valid.push(false);
                        any_null = true;
                    }
                }
                Float64Array {
                    values: raw.into(),
                    validity: any_null.then(|| Bitmap::from_bools(&valid)),
                    len: indices.len(),
                }
            }
        }
    }

    /// The raw values buffer.
    pub fn values(&self) -> &Buffer {
        &self.values
    }

    /// The validity bitmap, if any value is null.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }
}

/// A bit-packed boolean array.
#[derive(Debug, Clone, PartialEq)]
pub struct BoolArray {
    values: Bitmap,
    validity: Option<Bitmap>,
}

impl BoolArray {
    /// Builds from values with no nulls.
    pub fn new(values: &[bool]) -> Self {
        BoolArray {
            values: Bitmap::from_bools(values),
            validity: None,
        }
    }

    /// Builds from optional values.
    pub fn from_options(values: Vec<Option<bool>>) -> Self {
        let raw: Vec<bool> = values.iter().map(|v| v.unwrap_or(false)).collect();
        let valid: Vec<bool> = values.iter().map(Option::is_some).collect();
        let any_null = valid.iter().any(|v| !v);
        BoolArray {
            values: Bitmap::from_bools(&raw),
            validity: any_null.then(|| Bitmap::from_bools(&valid)),
        }
    }

    /// Reconstructs from raw parts (IPC decode).
    pub fn from_parts(values: Bitmap, validity: Option<Bitmap>) -> Self {
        BoolArray { values, validity }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at `i`, or `None` if null.
    pub fn get(&self, i: usize) -> Option<bool> {
        match &self.validity {
            Some(v) if !v.get(i) => None,
            _ => Some(self.values.get(i)),
        }
    }

    /// Iterates all values.
    pub fn iter(&self) -> impl Iterator<Item = Option<bool>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Gathers the rows at `indices` into a new array (typed `take`).
    pub fn take_rows(&self, indices: &[usize]) -> BoolArray {
        let opts: Vec<Option<bool>> = indices.iter().map(|&i| self.get(i)).collect();
        BoolArray::from_options(opts)
    }

    /// The packed value bits.
    pub fn values(&self) -> &Bitmap {
        &self.values
    }

    /// The validity bitmap, if any value is null.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }
}

/// A UTF-8 string array with 32-bit offsets (Arrow `Utf8` layout).
#[derive(Debug, Clone, PartialEq)]
pub struct Utf8Array {
    /// `len + 1` little-endian i32 offsets into `data`.
    offsets: Buffer,
    data: Buffer,
    validity: Option<Bitmap>,
    len: usize,
}

impl Utf8Array {
    /// Builds from string slices with no nulls.
    pub fn new<S: AsRef<str>>(values: &[S]) -> Self {
        Self::from_options_impl(values.iter().map(|s| Some(s.as_ref())))
    }

    /// Builds from optional string slices.
    pub fn from_options<'a, I>(values: I) -> Self
    where
        I: IntoIterator<Item = Option<&'a str>>,
    {
        Self::from_options_impl(values.into_iter())
    }

    fn from_options_impl<'a>(values: impl Iterator<Item = Option<&'a str>>) -> Self {
        let mut offsets: Vec<i32> = vec![0];
        let mut data: Vec<u8> = Vec::new();
        let mut valid: Vec<bool> = Vec::new();
        let mut any_null = false;
        for v in values {
            match v {
                Some(s) => {
                    data.extend_from_slice(s.as_bytes());
                    valid.push(true);
                }
                None => {
                    valid.push(false);
                    any_null = true;
                }
            }
            let end = i32::try_from(data.len()).expect("utf8 data exceeds 2 GiB");
            offsets.push(end);
        }
        let len = valid.len();
        Utf8Array {
            offsets: offsets.into(),
            data: Buffer::from_vec(data),
            validity: any_null.then(|| Bitmap::from_bools(&valid)),
            len,
        }
    }

    /// Reconstructs from raw parts (IPC decode).
    pub fn from_parts(offsets: Buffer, data: Buffer, validity: Option<Bitmap>, len: usize) -> Self {
        assert!(offsets.len() >= (len + 1) * 4, "offsets buffer too short");
        Utf8Array {
            offsets,
            data,
            validity,
            len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value at `i`, or `None` if null.
    pub fn get(&self, i: usize) -> Option<&str> {
        assert!(i < self.len, "index {i} out of bounds for {}", self.len);
        match &self.validity {
            Some(v) if !v.get(i) => None,
            _ => {
                let start = self.offsets.get_i32(i) as usize;
                let end = self.offsets.get_i32(i + 1) as usize;
                Some(
                    std::str::from_utf8(&self.data.as_slice()[start..end])
                        .expect("invariant: utf8 data"),
                )
            }
        }
    }

    /// Iterates all values.
    pub fn iter(&self) -> impl Iterator<Item = Option<&str>> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Gathers the rows at `indices` into a new array (typed `take`):
    /// string bytes are copied slice-to-slice, never through an owned
    /// `String`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn take_rows(&self, indices: &[usize]) -> Utf8Array {
        let mut offsets: Vec<i32> = Vec::with_capacity(indices.len() + 1);
        offsets.push(0);
        let mut data: Vec<u8> = Vec::new();
        let mut valid = Vec::with_capacity(indices.len());
        let mut any_null = false;
        let bytes = self.data.as_slice();
        for &i in indices {
            assert!(i < self.len, "index {i} out of bounds for {}", self.len);
            let is_valid = self.validity.as_ref().is_none_or(|v| v.get(i));
            if is_valid {
                let start = self.offsets.get_i32(i) as usize;
                let end = self.offsets.get_i32(i + 1) as usize;
                data.extend_from_slice(&bytes[start..end]);
                valid.push(true);
            } else {
                valid.push(false);
                any_null = true;
            }
            let end = i32::try_from(data.len()).expect("utf8 data exceeds 2 GiB");
            offsets.push(end);
        }
        Utf8Array {
            offsets: offsets.into(),
            data: Buffer::from_vec(data),
            validity: any_null.then(|| Bitmap::from_bools(&valid)),
            len: indices.len(),
        }
    }

    /// The offsets buffer.
    pub fn offsets(&self) -> &Buffer {
        &self.offsets
    }

    /// The string data buffer.
    pub fn data(&self) -> &Buffer {
        &self.data
    }

    /// The validity bitmap, if any value is null.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }
}

/// Dictionaries larger than this are not "low cardinality":
/// [`Array::dict_encoded`] falls back to plain `Utf8` beyond it.
pub const DICT_MAX_CARDINALITY: usize = 1 << 16;

/// A dictionary-encoded (LowCardinality) UTF-8 array: `u32` keys into a
/// deduplicated, never-null [`Utf8Array`] dictionary.
///
/// Logically identical to a plain [`Utf8Array`]; the encoding only
/// changes how kernels move the bytes — comparisons resolve against the
/// dictionary once and then touch only the fixed-width keys. Null slots
/// store the canonical placeholder key `0`.
#[derive(Debug, Clone)]
pub struct DictUtf8Array {
    /// `len` little-endian u32 keys into `dict`.
    keys: Buffer,
    dict: Utf8Array,
    validity: Option<Bitmap>,
    len: usize,
}

impl PartialEq for DictUtf8Array {
    /// Equality is *logical*: two dict arrays are equal when they decode
    /// to the same values, regardless of dictionary order or unused
    /// entries (a filtered array keeps its parent's dictionary; a rebuilt
    /// one starts fresh).
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl DictUtf8Array {
    /// Builds from string slices with no nulls.
    pub fn new<S: AsRef<str>>(values: &[S]) -> Self {
        Self::from_options(values.iter().map(|s| Some(s.as_ref())))
    }

    /// Builds from optional string slices, deduplicating into a
    /// first-appearance-ordered dictionary.
    pub fn from_options<'a, I>(values: I) -> Self
    where
        I: IntoIterator<Item = Option<&'a str>>,
    {
        let mut map: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        let mut entries: Vec<&str> = Vec::new();
        let mut keys: Vec<u32> = Vec::new();
        let mut valid: Vec<bool> = Vec::new();
        let mut any_null = false;
        for v in values {
            match v {
                Some(s) => {
                    let k = *map.entry(s).or_insert_with(|| {
                        entries.push(s);
                        u32::try_from(entries.len() - 1).expect("dictionary exceeds u32 keys")
                    });
                    keys.push(k);
                    valid.push(true);
                }
                None => {
                    keys.push(0);
                    valid.push(false);
                    any_null = true;
                }
            }
        }
        let len = keys.len();
        DictUtf8Array {
            keys: keys.into(),
            dict: Utf8Array::new(&entries),
            validity: any_null.then(|| Bitmap::from_bools(&valid)),
            len,
        }
    }

    /// Dictionary-encodes a plain array, whatever its cardinality.
    pub fn from_utf8(src: &Utf8Array) -> Self {
        Self::from_options(src.iter())
    }

    /// Reconstructs from raw parts (IPC decode). The dictionary must be
    /// null-free; callers are responsible for keys being in bounds.
    pub fn from_parts(keys: Buffer, dict: Utf8Array, validity: Option<Bitmap>, len: usize) -> Self {
        assert!(keys.len() >= len * 4, "keys buffer too short");
        assert!(
            dict.validity().is_none(),
            "dictionary entries may not be null"
        );
        DictUtf8Array {
            keys,
            dict,
            validity,
            len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw key at `i` without consulting validity (null slots yield
    /// the placeholder `0`).
    pub fn key_at(&self, i: usize) -> u32 {
        assert!(i < self.len, "index {i} out of bounds for {}", self.len);
        self.keys.get_u32(i)
    }

    /// The value at `i`, or `None` if null.
    pub fn get(&self, i: usize) -> Option<&str> {
        assert!(i < self.len, "index {i} out of bounds for {}", self.len);
        match &self.validity {
            Some(v) if !v.get(i) => None,
            _ => Some(
                self.dict
                    .get(self.keys.get_u32(i) as usize)
                    .expect("invariant: dictionary entries are never null"),
            ),
        }
    }

    /// Iterates all values.
    pub fn iter(&self) -> impl Iterator<Item = Option<&str>> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Gathers the rows at `indices` into a new array: only the
    /// fixed-width keys move; the dictionary is shared (O(1) clone).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn take_rows(&self, indices: &[usize]) -> DictUtf8Array {
        let mut keys = Vec::with_capacity(indices.len());
        let mut valid = Vec::with_capacity(indices.len());
        let mut any_null = false;
        for &i in indices {
            assert!(i < self.len, "index {i} out of bounds for {}", self.len);
            if self.validity.as_ref().is_none_or(|v| v.get(i)) {
                keys.push(self.keys.get_u32(i));
                valid.push(true);
            } else {
                keys.push(0);
                valid.push(false);
                any_null = true;
            }
        }
        DictUtf8Array {
            keys: keys.into(),
            dict: self.dict.clone(),
            validity: any_null.then(|| Bitmap::from_bools(&valid)),
            len: indices.len(),
        }
    }

    /// Decodes back to a plain [`Utf8Array`].
    pub fn to_utf8(&self) -> Utf8Array {
        Utf8Array::from_options(self.iter())
    }

    /// Concatenates several dict arrays, merging their dictionaries by
    /// first appearance and remapping keys.
    pub fn concat(parts: &[&DictUtf8Array]) -> DictUtf8Array {
        DictUtf8Array::from_options(parts.iter().flat_map(|p| p.iter()))
    }

    /// The raw keys buffer (`len` little-endian u32 values).
    pub fn keys(&self) -> &Buffer {
        &self.keys
    }

    /// The dictionary entries (deduplicated, never null).
    pub fn dictionary(&self) -> &Utf8Array {
        &self.dict
    }

    /// The validity bitmap, if any value is null.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }
}

/// A dynamically-typed column.
#[derive(Debug, Clone, PartialEq)]
pub enum Array {
    /// 64-bit integers.
    Int64(Int64Array),
    /// 64-bit floats.
    Float64(Float64Array),
    /// Booleans.
    Bool(BoolArray),
    /// UTF-8 strings.
    Utf8(Utf8Array),
    /// Dictionary-encoded (LowCardinality) UTF-8 strings.
    DictUtf8(DictUtf8Array),
}

impl Array {
    /// Builds an `Int64` column with no nulls.
    pub fn from_i64(values: Vec<i64>) -> Array {
        Array::Int64(Int64Array::new(values))
    }

    /// Builds an `Int64` column from optional values.
    pub fn from_opt_i64(values: Vec<Option<i64>>) -> Array {
        Array::Int64(Int64Array::from_options(values))
    }

    /// Builds a `Float64` column with no nulls.
    pub fn from_f64(values: Vec<f64>) -> Array {
        Array::Float64(Float64Array::new(values))
    }

    /// Builds a `Float64` column from optional values.
    pub fn from_opt_f64(values: Vec<Option<f64>>) -> Array {
        Array::Float64(Float64Array::from_options(values))
    }

    /// Builds a `Bool` column with no nulls.
    pub fn from_bool(values: &[bool]) -> Array {
        Array::Bool(BoolArray::new(values))
    }

    /// Builds a `Bool` column from optional values.
    pub fn from_opt_bool(values: Vec<Option<bool>>) -> Array {
        Array::Bool(BoolArray::from_options(values))
    }

    /// Builds a `Utf8` column with no nulls.
    pub fn from_utf8<S: AsRef<str>>(values: &[S]) -> Array {
        Array::Utf8(Utf8Array::new(values))
    }

    /// Builds a `Utf8` column from optional values.
    pub fn from_opt_utf8<'a, I>(values: I) -> Array
    where
        I: IntoIterator<Item = Option<&'a str>>,
    {
        Array::Utf8(Utf8Array::from_options(values))
    }

    /// Builds a `DictUtf8` column with no nulls.
    pub fn from_dict_utf8<S: AsRef<str>>(values: &[S]) -> Array {
        Array::DictUtf8(DictUtf8Array::new(values))
    }

    /// Builds a `DictUtf8` column from optional values.
    pub fn from_opt_dict_utf8<'a, I>(values: I) -> Array
    where
        I: IntoIterator<Item = Option<&'a str>>,
    {
        Array::DictUtf8(DictUtf8Array::from_options(values))
    }

    /// Dictionary-encodes a `Utf8` column when its cardinality is low
    /// enough to pay off (each entry repeats at least twice on average
    /// and the dictionary stays under [`DICT_MAX_CARDINALITY`]); other
    /// columns — and high-cardinality strings — pass through unchanged.
    pub fn dict_encoded(&self) -> Array {
        match self {
            Array::Utf8(a) => {
                let d = DictUtf8Array::from_utf8(a);
                let distinct = d.dictionary().len();
                if distinct <= DICT_MAX_CARDINALITY && distinct * 2 <= a.len() {
                    Array::DictUtf8(d)
                } else {
                    self.clone()
                }
            }
            _ => self.clone(),
        }
    }

    /// Decodes a `DictUtf8` column back to plain `Utf8`; other columns
    /// pass through unchanged.
    pub fn dict_decoded(&self) -> Array {
        match self {
            Array::DictUtf8(a) => Array::Utf8(a.to_utf8()),
            _ => self.clone(),
        }
    }

    /// The logical type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Array::Int64(_) => DataType::Int64,
            Array::Float64(_) => DataType::Float64,
            Array::Bool(_) => DataType::Bool,
            Array::Utf8(_) => DataType::Utf8,
            Array::DictUtf8(_) => DataType::DictUtf8,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Array::Int64(a) => a.len(),
            Array::Float64(a) => a.len(),
            Array::Bool(a) => a.len(),
            Array::Utf8(a) => a.len(),
            Array::DictUtf8(a) => a.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The validity bitmap, if any rows are null.
    pub fn validity(&self) -> Option<&Bitmap> {
        match self {
            Array::Int64(a) => a.validity(),
            Array::Float64(a) => a.validity(),
            Array::Bool(a) => a.validity(),
            Array::Utf8(a) => a.validity(),
            Array::DictUtf8(a) => a.validity(),
        }
    }

    /// True if row `i` is null. Consults the validity bitmap directly —
    /// no [`Value`] boxing (a `Utf8` `value_at` would allocate).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn is_null(&self, i: usize) -> bool {
        assert!(i < self.len(), "index {i} out of bounds for {}", self.len());
        self.validity().is_some_and(|v| !v.get(i))
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        let validity = match self {
            Array::Int64(a) => a.validity(),
            Array::Float64(a) => a.validity(),
            Array::Bool(a) => a.validity(),
            Array::Utf8(a) => a.validity(),
            Array::DictUtf8(a) => a.validity(),
        };
        match validity {
            Some(v) => v.len() - v.count_set(),
            None => 0,
        }
    }

    /// The dynamically-typed value at row `i`.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Array::Int64(a) => a.get(i).map(Value::I64).unwrap_or(Value::Null),
            Array::Float64(a) => a.get(i).map(Value::F64).unwrap_or(Value::Null),
            Array::Bool(a) => a.get(i).map(Value::Bool).unwrap_or(Value::Null),
            Array::Utf8(a) => a
                .get(i)
                .map(|s| Value::Str(s.to_string()))
                .unwrap_or(Value::Null),
            Array::DictUtf8(a) => a
                .get(i)
                .map(|s| Value::Str(s.to_string()))
                .unwrap_or(Value::Null),
        }
    }

    /// Gathers the rows at `indices` into a new column of the same type,
    /// dispatching on the variant once and gathering through typed slices
    /// (no per-row [`Value`] boxing).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn take_rows(&self, indices: &[usize]) -> Array {
        match self {
            Array::Int64(a) => Array::Int64(a.take_rows(indices)),
            Array::Float64(a) => Array::Float64(a.take_rows(indices)),
            Array::Bool(a) => Array::Bool(a.take_rows(indices)),
            Array::Utf8(a) => Array::Utf8(a.take_rows(indices)),
            Array::DictUtf8(a) => Array::DictUtf8(a.take_rows(indices)),
        }
    }

    /// Approximate in-memory footprint in bytes (values + offsets +
    /// validity).
    pub fn byte_size(&self) -> usize {
        match self {
            Array::Int64(a) => a.values().len() + a.validity().map_or(0, |v| v.buffer().len()),
            Array::Float64(a) => a.values().len() + a.validity().map_or(0, |v| v.buffer().len()),
            Array::Bool(a) => {
                a.values().buffer().len() + a.validity().map_or(0, |v| v.buffer().len())
            }
            Array::Utf8(a) => {
                a.offsets().len() + a.data().len() + a.validity().map_or(0, |v| v.buffer().len())
            }
            Array::DictUtf8(a) => {
                a.keys().len()
                    + a.dictionary().offsets().len()
                    + a.dictionary().data().len()
                    + a.validity().map_or(0, |v| v.buffer().len())
            }
        }
    }

    /// Downcasts to `Int64`, or reports the actual type.
    pub fn as_i64(&self) -> Result<&Int64Array, ArrowError> {
        match self {
            Array::Int64(a) => Ok(a),
            other => Err(ArrowError::TypeMismatch {
                expected: DataType::Int64,
                actual: other.data_type(),
            }),
        }
    }

    /// Downcasts to `Float64`, or reports the actual type.
    pub fn as_f64(&self) -> Result<&Float64Array, ArrowError> {
        match self {
            Array::Float64(a) => Ok(a),
            other => Err(ArrowError::TypeMismatch {
                expected: DataType::Float64,
                actual: other.data_type(),
            }),
        }
    }

    /// Downcasts to `Bool`, or reports the actual type.
    pub fn as_bool(&self) -> Result<&BoolArray, ArrowError> {
        match self {
            Array::Bool(a) => Ok(a),
            other => Err(ArrowError::TypeMismatch {
                expected: DataType::Bool,
                actual: other.data_type(),
            }),
        }
    }

    /// Downcasts to `Utf8`, or reports the actual type.
    pub fn as_utf8(&self) -> Result<&Utf8Array, ArrowError> {
        match self {
            Array::Utf8(a) => Ok(a),
            other => Err(ArrowError::TypeMismatch {
                expected: DataType::Utf8,
                actual: other.data_type(),
            }),
        }
    }

    /// Downcasts to `DictUtf8`, or reports the actual type.
    pub fn as_dict_utf8(&self) -> Result<&DictUtf8Array, ArrowError> {
        match self {
            Array::DictUtf8(a) => Ok(a),
            other => Err(ArrowError::TypeMismatch {
                expected: DataType::DictUtf8,
                actual: other.data_type(),
            }),
        }
    }

    /// Builds a column of type `dt` from dynamically-typed values.
    /// `Value::Null` becomes a null; other variants must match `dt`.
    pub fn from_values(dt: DataType, values: &[Value]) -> Result<Array, ArrowError> {
        fn bad(dt: DataType, v: &Value) -> ArrowError {
            ArrowError::ShapeMismatch(format!("value {v} does not fit column type {dt}"))
        }
        Ok(match dt {
            DataType::Int64 => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => None,
                        Value::I64(x) => Some(*x),
                        other => return Err(bad(dt, other)),
                    });
                }
                Array::from_opt_i64(out)
            }
            DataType::Float64 => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => None,
                        Value::F64(x) => Some(*x),
                        other => return Err(bad(dt, other)),
                    });
                }
                Array::from_opt_f64(out)
            }
            DataType::Bool => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => None,
                        Value::Bool(x) => Some(*x),
                        other => return Err(bad(dt, other)),
                    });
                }
                Array::from_opt_bool(out)
            }
            DataType::Utf8 => {
                let mut out: Vec<Option<&str>> = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => None,
                        Value::Str(s) => Some(s.as_str()),
                        other => return Err(bad(dt, other)),
                    });
                }
                Array::from_opt_utf8(out)
            }
            DataType::DictUtf8 => {
                let mut out: Vec<Option<&str>> = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => None,
                        Value::Str(s) => Some(s.as_str()),
                        other => return Err(bad(dt, other)),
                    });
                }
                Array::from_opt_dict_utf8(out)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_round_trip() {
        let a = Int64Array::new(vec![1, -2, 3]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(1), Some(-2));
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![Some(1), Some(-2), Some(3)]
        );
        assert!(a.validity().is_none());
    }

    #[test]
    fn i64_nulls() {
        let a = Int64Array::from_options(vec![Some(1), None, Some(3)]);
        assert_eq!(a.get(0), Some(1));
        assert_eq!(a.get(1), None);
        assert_eq!(Array::Int64(a).null_count(), 1);
    }

    #[test]
    fn no_null_options_canonicalize_to_no_validity() {
        let a = Int64Array::from_options(vec![Some(1), Some(2)]);
        let b = Int64Array::new(vec![1, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn utf8_layout() {
        let a = Utf8Array::new(&["hello", "", "world"]);
        assert_eq!(a.get(0), Some("hello"));
        assert_eq!(a.get(1), Some(""));
        assert_eq!(a.get(2), Some("world"));
        // Offsets are [0, 5, 5, 10].
        assert_eq!(a.offsets().get_i32(3), 10);
    }

    #[test]
    fn utf8_nulls_and_unicode() {
        let a = Utf8Array::from_options(vec![Some("héllo"), None, Some("wörld")]);
        assert_eq!(a.get(0), Some("héllo"));
        assert_eq!(a.get(1), None);
        assert_eq!(a.get(2), Some("wörld"));
    }

    #[test]
    fn bool_packing() {
        let vals: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let a = BoolArray::new(&vals);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(a.get(i), Some(*v));
        }
    }

    #[test]
    fn float_nulls() {
        let a = Float64Array::from_options(vec![Some(1.5), None]);
        assert_eq!(a.get(0), Some(1.5));
        assert_eq!(a.get(1), None);
    }

    #[test]
    fn dynamic_values() {
        let a = Array::from_opt_utf8(vec![Some("x"), None]);
        assert_eq!(a.value_at(0), Value::Str("x".into()));
        assert_eq!(a.value_at(1), Value::Null);
        assert!(a.is_null(1));
        assert!(!a.is_null(0));
    }

    #[test]
    fn from_values_round_trip() {
        let vals = vec![Value::I64(1), Value::Null, Value::I64(3)];
        let a = Array::from_values(DataType::Int64, &vals).unwrap();
        assert_eq!((0..3).map(|i| a.value_at(i)).collect::<Vec<_>>(), vals);
    }

    #[test]
    fn from_values_type_checks() {
        let err = Array::from_values(DataType::Int64, &[Value::Str("x".into())]).unwrap_err();
        assert!(matches!(err, ArrowError::ShapeMismatch(_)));
    }

    #[test]
    fn downcasts() {
        let a = Array::from_i64(vec![1]);
        assert!(a.as_i64().is_ok());
        let err = a.as_utf8().unwrap_err();
        assert_eq!(
            err,
            ArrowError::TypeMismatch {
                expected: DataType::Utf8,
                actual: DataType::Int64
            }
        );
    }

    #[test]
    fn byte_size_reflects_content() {
        let small = Array::from_i64(vec![1, 2]);
        let big = Array::from_i64((0..1000).collect());
        assert!(big.byte_size() > small.byte_size() * 100);
        let s = Array::from_utf8(&["aaaa", "bbbb"]);
        assert!(s.byte_size() >= 8 + 12); // data + offsets
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        Int64Array::new(vec![1]).get(1);
    }

    #[test]
    fn dict_deduplicates_and_round_trips() {
        let vals = vec![Some("a"), Some("b"), None, Some("a"), Some("a"), Some("b")];
        let d = DictUtf8Array::from_options(vals.clone());
        assert_eq!(d.dictionary().len(), 2);
        assert_eq!(d.iter().collect::<Vec<_>>(), vals);
        assert_eq!(d.to_utf8(), Utf8Array::from_options(vals));
        assert_eq!(d.key_at(0), d.key_at(3));
        assert_eq!(d.key_at(2), 0); // null placeholder
    }

    #[test]
    fn dict_equality_is_logical() {
        // Same values, different dictionary orders.
        let a = DictUtf8Array::new(&["x", "y", "x"]);
        let b = DictUtf8Array::from_utf8(&Utf8Array::new(&["x", "y", "x"]));
        assert_eq!(a, b);
        // A filtered array keeps unused parent entries; still equal.
        let parent = DictUtf8Array::new(&["q", "x", "y", "x"]);
        let filtered = parent.take_rows(&[1, 2, 3]);
        assert_eq!(filtered, a);
        assert_eq!(
            Array::DictUtf8(filtered).dict_decoded(),
            Array::from_utf8(&["x", "y", "x"])
        );
    }

    #[test]
    fn dict_take_rows_moves_keys_only() {
        let d = DictUtf8Array::from_options(vec![Some("aa"), None, Some("bb"), Some("aa")]);
        let t = d.take_rows(&[3, 1, 0]);
        assert_eq!(
            t.iter().collect::<Vec<_>>(),
            vec![Some("aa"), None, Some("aa")]
        );
        // Dictionary is shared, not rebuilt.
        assert_eq!(t.dictionary(), d.dictionary());
    }

    #[test]
    fn dict_encoded_policy() {
        // Low cardinality encodes...
        let low = Array::from_utf8(&["a", "b", "a", "b", "a", "b"]);
        assert_eq!(low.dict_encoded().data_type(), DataType::DictUtf8);
        // ...mostly-unique columns stay plain...
        let high = Array::from_utf8(&["a", "b", "c", "d"]);
        assert_eq!(high.dict_encoded().data_type(), DataType::Utf8);
        // ...and either way the values are unchanged.
        assert_eq!(low.dict_encoded().dict_decoded(), low);
        // Non-string columns pass through.
        let ints = Array::from_i64(vec![1, 2]);
        assert_eq!(ints.dict_encoded(), ints);
    }

    #[test]
    fn dict_all_null_has_empty_dictionary() {
        let d = DictUtf8Array::from_options(vec![None, None, None]);
        assert_eq!(d.dictionary().len(), 0);
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(1), None);
        assert_eq!(Array::DictUtf8(d).null_count(), 3);
    }

    #[test]
    fn dict_concat_merges_dictionaries() {
        let a = DictUtf8Array::new(&["x", "y"]);
        let b = DictUtf8Array::from_options(vec![Some("y"), None, Some("z")]);
        let c = DictUtf8Array::concat(&[&a, &b]);
        assert_eq!(c.dictionary().len(), 3);
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![Some("x"), Some("y"), Some("y"), None, Some("z")]
        );
    }
}

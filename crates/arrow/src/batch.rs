//! Record batches: a schema plus equal-length columns.

use std::fmt;

use crate::array::{Array, Value};
use crate::error::ArrowError;
use crate::schema::{Field, Schema, SchemaRef};

/// An immutable table fragment: one schema, N equal-length columns.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    schema: SchemaRef,
    columns: Vec<Array>,
    rows: usize,
}

impl RecordBatch {
    /// Creates a batch, validating column count, column types, and lengths
    /// against the schema.
    pub fn try_new(schema: SchemaRef, columns: Vec<Array>) -> Result<Self, ArrowError> {
        if schema.len() != columns.len() {
            return Err(ArrowError::ShapeMismatch(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, Array::len);
        for (i, col) in columns.iter().enumerate() {
            let field = schema.field(i);
            if col.data_type() != field.data_type {
                return Err(ArrowError::TypeMismatch {
                    expected: field.data_type,
                    actual: col.data_type(),
                });
            }
            if col.len() != rows {
                return Err(ArrowError::ShapeMismatch(format!(
                    "column {} has {} rows, expected {rows}",
                    field.name,
                    col.len()
                )));
            }
            if !field.nullable && col.null_count() > 0 {
                return Err(ArrowError::ShapeMismatch(format!(
                    "column {} is non-nullable but contains {} nulls",
                    field.name,
                    col.null_count()
                )));
            }
        }
        Ok(RecordBatch {
            schema,
            columns,
            rows,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Array::from_values(f.data_type, &[]).expect("empty column is always valid"))
            .collect();
        RecordBatch {
            schema,
            columns,
            rows: 0,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True if the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The columns, in schema order.
    pub fn columns(&self) -> &[Array] {
        &self.columns
    }

    /// The column at index `i`.
    pub fn column(&self, i: usize) -> &Array {
        &self.columns[i]
    }

    /// The column with the given name.
    pub fn column_by_name(&self, name: &str) -> Result<&Array, ArrowError> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Total in-memory footprint of all columns, in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Array::byte_size).sum()
    }

    /// One row as dynamically-typed values (used by the marshalling
    /// baseline and tests).
    pub fn row(&self, i: usize) -> Vec<Value> {
        assert!(i < self.rows, "row {i} out of bounds for {}", self.rows);
        self.columns.iter().map(|c| c.value_at(i)).collect()
    }

    /// Keeps only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<RecordBatch, ArrowError> {
        let schema = self.schema.project(names)?;
        let mut columns = Vec::with_capacity(names.len());
        for n in names {
            columns.push(self.column_by_name(n)?.clone());
        }
        RecordBatch::try_new(schema, columns)
    }

    /// Dictionary-encodes every eligible `Utf8` column (the cardinality
    /// policy lives in [`Array::dict_encoded`]), flipping the schema
    /// types to match. Columns that don't benefit stay plain.
    pub fn dict_encoded(&self) -> RecordBatch {
        self.recode(Array::dict_encoded)
    }

    /// Decodes every `DictUtf8` column back to plain `Utf8`, flipping
    /// the schema types to match. Output boundaries call this so results
    /// are identical whether or not the pipeline ran dictionary-encoded.
    pub fn dict_decoded(&self) -> RecordBatch {
        self.recode(Array::dict_decoded)
    }

    fn recode(&self, f: impl Fn(&Array) -> Array) -> RecordBatch {
        let columns: Vec<Array> = self.columns.iter().map(f).collect();
        let fields: Vec<Field> = self
            .schema
            .fields()
            .iter()
            .zip(&columns)
            .map(|(fld, col)| Field::new(fld.name.clone(), col.data_type(), fld.nullable))
            .collect();
        RecordBatch {
            schema: Schema::new(fields),
            columns,
            rows: self.rows,
        }
    }

    /// Concatenates batches with identical schemas.
    pub fn concat(batches: &[RecordBatch]) -> Result<RecordBatch, ArrowError> {
        let first = batches
            .first()
            .ok_or_else(|| ArrowError::ShapeMismatch("concat of zero batches".into()))?;
        let schema = first.schema.clone();
        for b in batches {
            if b.schema != schema {
                return Err(ArrowError::ShapeMismatch(
                    "concat of batches with differing schemas".into(),
                ));
            }
        }
        let mut columns = Vec::with_capacity(schema.len());
        for c in 0..schema.len() {
            // Typed concatenation: chain each batch's typed iterator, no
            // per-row `Value` boxing.
            let col = match batches[0].column(c) {
                Array::Int64(_) => {
                    let mut out = Vec::new();
                    for b in batches {
                        out.extend(b.column(c).as_i64()?.iter());
                    }
                    Array::from_opt_i64(out)
                }
                Array::Float64(_) => {
                    let mut out = Vec::new();
                    for b in batches {
                        out.extend(b.column(c).as_f64()?.iter());
                    }
                    Array::from_opt_f64(out)
                }
                Array::Bool(_) => {
                    let mut out = Vec::new();
                    for b in batches {
                        out.extend(b.column(c).as_bool()?.iter());
                    }
                    Array::from_opt_bool(out)
                }
                Array::Utf8(_) => {
                    let mut out = Vec::new();
                    for b in batches {
                        out.extend(b.column(c).as_utf8()?.iter());
                    }
                    Array::Utf8(crate::array::Utf8Array::from_options(out))
                }
                Array::DictUtf8(_) => {
                    // Per-batch dictionaries may differ; merge them by
                    // first appearance and remap the keys.
                    let mut parts = Vec::with_capacity(batches.len());
                    for b in batches {
                        parts.push(b.column(c).as_dict_utf8()?);
                    }
                    Array::DictUtf8(crate::array::DictUtf8Array::concat(&parts))
                }
            };
            columns.push(col);
        }
        RecordBatch::try_new(schema, columns)
    }
}

impl fmt::Display for RecordBatch {
    /// Compact textual rendering: header plus up to 10 rows.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for i in 0..self.rows.min(10) {
            let row: Vec<String> = self.row(i).iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", row.join(" | "))?;
        }
        if self.rows > 10 {
            writeln!(f, "... {} more rows", self.rows - 10)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::{Field, Schema};

    fn sample() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("name", DataType::Utf8, true),
        ]);
        RecordBatch::try_new(
            schema,
            vec![
                Array::from_i64(vec![1, 2, 3]),
                Array::from_opt_utf8(vec![Some("a"), None, Some("c")]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shapes() {
        let schema = Schema::new(vec![Field::new("id", DataType::Int64, false)]);
        // Wrong column count.
        assert!(RecordBatch::try_new(schema.clone(), vec![]).is_err());
        // Wrong type.
        let err = RecordBatch::try_new(schema.clone(), vec![Array::from_f64(vec![1.0])]);
        assert!(matches!(err, Err(ArrowError::TypeMismatch { .. })));
        // Nulls in non-nullable column.
        let err = RecordBatch::try_new(schema, vec![Array::from_opt_i64(vec![None])]);
        assert!(matches!(err, Err(ArrowError::ShapeMismatch(_))));
    }

    #[test]
    fn ragged_columns_rejected() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("b", DataType::Int64, false),
        ]);
        let err = RecordBatch::try_new(
            schema,
            vec![Array::from_i64(vec![1]), Array::from_i64(vec![1, 2])],
        );
        assert!(err.is_err());
    }

    #[test]
    fn row_access() {
        let b = sample();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.row(1), vec![Value::I64(2), Value::Null]);
    }

    #[test]
    fn column_by_name() {
        let b = sample();
        assert_eq!(b.column_by_name("id").unwrap().len(), 3);
        assert!(b.column_by_name("zzz").is_err());
    }

    #[test]
    fn projection() {
        let b = sample().project(&["name"]).unwrap();
        assert_eq!(b.num_columns(), 1);
        assert_eq!(b.schema().field(0).name, "name");
    }

    #[test]
    fn concat_stacks_rows() {
        let b = sample();
        let c = RecordBatch::concat(&[b.clone(), b.clone()]).unwrap();
        assert_eq!(c.num_rows(), 6);
        assert_eq!(c.row(3), c.row(0));
    }

    #[test]
    fn concat_schema_mismatch_errors() {
        let other = RecordBatch::try_new(
            Schema::new(vec![Field::new("x", DataType::Int64, false)]),
            vec![Array::from_i64(vec![9])],
        )
        .unwrap();
        assert!(RecordBatch::concat(&[sample(), other]).is_err());
    }

    #[test]
    fn empty_batch() {
        let b = RecordBatch::empty(sample().schema().clone());
        assert_eq!(b.num_rows(), 0);
        assert_eq!(b.num_columns(), 2);
    }

    #[test]
    fn dict_encode_decode_round_trips_batch() {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("kind", DataType::Utf8, true),
        ]);
        let b = RecordBatch::try_new(
            schema,
            vec![
                Array::from_i64(vec![1, 2, 3, 4]),
                Array::from_opt_utf8(vec![Some("a"), Some("b"), Some("a"), None]),
            ],
        )
        .unwrap();
        let enc = b.dict_encoded();
        assert_eq!(enc.column(1).data_type(), DataType::DictUtf8);
        assert_eq!(enc.schema().field(1).data_type, DataType::DictUtf8);
        assert_eq!(enc.column(0).data_type(), DataType::Int64);
        let dec = enc.dict_decoded();
        assert_eq!(dec, b);
    }

    #[test]
    fn display_truncates() {
        let schema = Schema::new(vec![Field::new("id", DataType::Int64, false)]);
        let b = RecordBatch::try_new(schema, vec![Array::from_i64((0..20).collect())]).unwrap();
        let s = b.to_string();
        assert!(s.contains("more rows"), "{s}");
    }

    use crate::array::Value;
}

//! Compute kernels over columnar data.
//!
//! These are the handcrafted operators the simulated vertices execute when
//! an experiment actually materializes data (most experiments only *price*
//! data movement, but the examples and the SQL frontend run real queries
//! end-to-end on small inputs).

use crate::array::{Array, Value};
use crate::batch::RecordBatch;
use crate::buffer::Bitmap;
use crate::error::ArrowError;

/// Selects the rows of `batch` where `mask` is true (null mask = false).
pub fn filter(batch: &RecordBatch, mask: &Array) -> Result<RecordBatch, ArrowError> {
    let mask = mask.as_bool()?;
    if mask.len() != batch.num_rows() {
        return Err(ArrowError::ShapeMismatch(format!(
            "mask has {} rows, batch has {}",
            mask.len(),
            batch.num_rows()
        )));
    }
    let indices: Vec<usize> = (0..mask.len())
        .filter(|i| mask.get(*i) == Some(true))
        .collect();
    take_indices(batch, &indices)
}

/// Reorders/selects rows by index.
pub fn take(batch: &RecordBatch, indices: &Array) -> Result<RecordBatch, ArrowError> {
    let idx = indices.as_i64()?;
    let mut out = Vec::with_capacity(idx.len());
    for i in 0..idx.len() {
        let v = idx
            .get(i)
            .ok_or_else(|| ArrowError::ShapeMismatch("take index may not be null".into()))?;
        let v = usize::try_from(v).map_err(|_| ArrowError::IndexOutOfBounds {
            index: 0,
            len: batch.num_rows(),
        })?;
        if v >= batch.num_rows() {
            return Err(ArrowError::IndexOutOfBounds {
                index: v,
                len: batch.num_rows(),
            });
        }
        out.push(v);
    }
    take_indices(batch, &out)
}

fn take_indices(batch: &RecordBatch, indices: &[usize]) -> Result<RecordBatch, ArrowError> {
    let mut columns = Vec::with_capacity(batch.num_columns());
    for c in 0..batch.num_columns() {
        let col = batch.column(c);
        let values: Vec<Value> = indices.iter().map(|i| col.value_at(*i)).collect();
        columns.push(Array::from_values(col.data_type(), &values)?);
    }
    RecordBatch::try_new(batch.schema().clone(), columns)
}

/// Sums an `Int64` column, skipping nulls. Returns `None` for an
/// all-null/empty column.
pub fn sum_i64(col: &Array) -> Result<Option<i64>, ArrowError> {
    let a = col.as_i64()?;
    let mut acc: Option<i64> = None;
    for v in a.iter().flatten() {
        acc = Some(acc.unwrap_or(0).wrapping_add(v));
    }
    Ok(acc)
}

/// Sums a `Float64` column, skipping nulls.
pub fn sum_f64(col: &Array) -> Result<Option<f64>, ArrowError> {
    let a = col.as_f64()?;
    let mut acc: Option<f64> = None;
    for v in a.iter().flatten() {
        acc = Some(acc.unwrap_or(0.0) + v);
    }
    Ok(acc)
}

/// Minimum of an `Int64` column, skipping nulls.
pub fn min_i64(col: &Array) -> Result<Option<i64>, ArrowError> {
    Ok(col.as_i64()?.iter().flatten().min())
}

/// Maximum of an `Int64` column, skipping nulls.
pub fn max_i64(col: &Array) -> Result<Option<i64>, ArrowError> {
    Ok(col.as_i64()?.iter().flatten().max())
}

/// Number of non-null values in any column.
pub fn count(col: &Array) -> usize {
    col.len() - col.null_count()
}

/// Comparison operators for scalar predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Compares each element of a column against a scalar, producing a `Bool`
/// mask. Null inputs produce null outputs.
pub fn cmp_scalar(col: &Array, op: CmpOp, scalar: &Value) -> Result<Array, ArrowError> {
    let n = col.len();
    let mut out: Vec<Option<bool>> = Vec::with_capacity(n);
    for i in 0..n {
        let v = col.value_at(i);
        let r = match (&v, scalar) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::I64(a), Value::I64(b)) => Some(op.eval(a, b)),
            (Value::F64(a), Value::F64(b)) => Some(op.eval(a, b)),
            (Value::I64(a), Value::F64(b)) => Some(op.eval(&(*a as f64), b)),
            (Value::F64(a), Value::I64(b)) => Some(op.eval(a, &(*b as f64))),
            (Value::Str(a), Value::Str(b)) => Some(op.eval(a, b)),
            (Value::Bool(a), Value::Bool(b)) => Some(op.eval(a, b)),
            _ => {
                return Err(ArrowError::ShapeMismatch(format!(
                    "cannot compare {} with {}",
                    col.data_type(),
                    scalar
                )))
            }
        };
        out.push(r);
    }
    Ok(Array::from_opt_bool(out))
}

/// Elementwise AND of two boolean masks (null-safe: null AND x = null
/// unless x is false).
pub fn and(a: &Array, b: &Array) -> Result<Array, ArrowError> {
    let (a, b) = (a.as_bool()?, b.as_bool()?);
    if a.len() != b.len() {
        return Err(ArrowError::ShapeMismatch("mask length mismatch".into()));
    }
    let out: Vec<Option<bool>> = (0..a.len())
        .map(|i| match (a.get(i), b.get(i)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        })
        .collect();
    Ok(Array::from_opt_bool(out))
}

/// FNV-1a hash of one row's values across the given columns; used for hash
/// partitioning keyed edges.
pub fn hash_row(batch: &RecordBatch, cols: &[usize], row: usize) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    let mut feed = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for &c in cols {
        match batch.column(c).value_at(row) {
            Value::Null => feed(&[0xFF]),
            Value::I64(v) => feed(&v.to_le_bytes()),
            Value::F64(v) => feed(&v.to_bits().to_le_bytes()),
            Value::Bool(v) => feed(&[v as u8]),
            Value::Str(s) => feed(s.as_bytes()),
        }
    }
    h
}

/// Splits a batch into `parts` partitions by hashing the given key
/// columns; the same keys always land in the same partition.
pub fn hash_partition(
    batch: &RecordBatch,
    key_cols: &[usize],
    parts: usize,
) -> Result<Vec<RecordBatch>, ArrowError> {
    assert!(parts > 0, "hash_partition into zero parts");
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for r in 0..batch.num_rows() {
        let h = hash_row(batch, key_cols, r);
        buckets[(h % parts as u64) as usize].push(r);
    }
    buckets
        .iter()
        .map(|rows| take_indices(batch, rows))
        .collect()
}

/// Builds a validity-style mask from an iterator of booleans.
pub fn mask_from_bools(bools: &[bool]) -> Array {
    Array::Bool(crate::array::BoolArray::from_parts(
        Bitmap::from_bools(bools),
        None,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::{Field, Schema};

    fn sample() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("score", DataType::Float64, true),
        ]);
        RecordBatch::try_new(
            schema,
            vec![
                Array::from_i64(vec![1, 2, 3, 4]),
                Array::from_opt_f64(vec![Some(0.1), None, Some(0.3), Some(0.4)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_keeps_true_rows() {
        let b = sample();
        let mask = Array::from_bool(&[true, false, true, false]);
        let out = filter(&b, &mask).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column(0).value_at(1), Value::I64(3));
    }

    #[test]
    fn filter_null_mask_drops() {
        let b = sample();
        let mask = Array::from_opt_bool(vec![Some(true), None, None, Some(true)]);
        assert_eq!(filter(&b, &mask).unwrap().num_rows(), 2);
    }

    #[test]
    fn filter_length_mismatch_errors() {
        let b = sample();
        let mask = Array::from_bool(&[true]);
        assert!(filter(&b, &mask).is_err());
    }

    #[test]
    fn take_reorders() {
        let b = sample();
        let out = take(&b, &Array::from_i64(vec![3, 0, 0])).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.column(0).value_at(0), Value::I64(4));
        assert_eq!(out.column(0).value_at(2), Value::I64(1));
    }

    #[test]
    fn take_out_of_bounds_errors() {
        let b = sample();
        assert!(matches!(
            take(&b, &Array::from_i64(vec![99])),
            Err(ArrowError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn aggregates() {
        let b = sample();
        assert_eq!(sum_i64(b.column(0)).unwrap(), Some(10));
        assert_eq!(min_i64(b.column(0)).unwrap(), Some(1));
        assert_eq!(max_i64(b.column(0)).unwrap(), Some(4));
        let s = sum_f64(b.column(1)).unwrap().unwrap();
        assert!((s - 0.8).abs() < 1e-12);
        assert_eq!(count(b.column(1)), 3);
        assert_eq!(sum_i64(&Array::from_i64(vec![])).unwrap(), None);
    }

    #[test]
    fn cmp_scalar_produces_mask() {
        let b = sample();
        let mask = cmp_scalar(b.column(0), CmpOp::Gt, &Value::I64(2)).unwrap();
        let bools: Vec<Option<bool>> = (0..4)
            .map(|i| match mask.value_at(i) {
                Value::Bool(v) => Some(v),
                Value::Null => None,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            bools,
            vec![Some(false), Some(false), Some(true), Some(true)]
        );
    }

    #[test]
    fn cmp_nulls_propagate() {
        let b = sample();
        let mask = cmp_scalar(b.column(1), CmpOp::Lt, &Value::F64(0.35)).unwrap();
        assert_eq!(mask.value_at(1), Value::Null);
        assert_eq!(mask.value_at(0), Value::Bool(true));
    }

    #[test]
    fn cmp_mixed_numeric_coerces() {
        let col = Array::from_i64(vec![1, 5]);
        let mask = cmp_scalar(&col, CmpOp::Ge, &Value::F64(2.5)).unwrap();
        assert_eq!(mask.value_at(0), Value::Bool(false));
        assert_eq!(mask.value_at(1), Value::Bool(true));
    }

    #[test]
    fn cmp_incompatible_errors() {
        let col = Array::from_i64(vec![1]);
        assert!(cmp_scalar(&col, CmpOp::Eq, &Value::Str("x".into())).is_err());
    }

    #[test]
    fn and_truth_table() {
        let a = Array::from_opt_bool(vec![Some(true), Some(true), Some(false), None]);
        let b = Array::from_opt_bool(vec![Some(true), None, None, None]);
        let r = and(&a, &b).unwrap();
        assert_eq!(r.value_at(0), Value::Bool(true));
        assert_eq!(r.value_at(1), Value::Null);
        assert_eq!(r.value_at(2), Value::Bool(false));
        assert_eq!(r.value_at(3), Value::Null);
    }

    #[test]
    fn hash_partition_is_stable_and_complete() {
        let n = 100i64;
        let schema = Schema::new(vec![Field::new("k", DataType::Int64, false)]);
        let b = RecordBatch::try_new(
            schema,
            vec![Array::from_i64((0..n).map(|i| i % 10).collect())],
        )
        .unwrap();
        let parts = hash_partition(&b, &[0], 4).unwrap();
        let total: usize = parts.iter().map(RecordBatch::num_rows).sum();
        assert_eq!(total, n as usize);
        // Same key never appears in two partitions.
        for key in 0..10i64 {
            let holders = parts
                .iter()
                .filter(|p| (0..p.num_rows()).any(|r| p.column(0).value_at(r) == Value::I64(key)))
                .count();
            assert_eq!(holders, 1, "key {key} appears in {holders} partitions");
        }
        // Deterministic across invocations.
        let parts2 = hash_partition(&b, &[0], 4).unwrap();
        assert_eq!(parts, parts2);
    }

    #[test]
    fn hash_row_distinguishes_null_from_zero() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int64, true)]);
        let b =
            RecordBatch::try_new(schema, vec![Array::from_opt_i64(vec![Some(0), None])]).unwrap();
        assert_ne!(hash_row(&b, &[0], 0), hash_row(&b, &[0], 1));
    }
}

/// Sort order for [`sort_to_indices`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first; NULLs first.
    Ascending,
    /// Largest first; NULLs last.
    Descending,
}

/// Computes the row permutation that sorts `col`. NULLs sort lowest.
/// Numeric columns sort numerically; strings lexicographically; booleans
/// false-before-true.
pub fn sort_to_indices(col: &Array, order: SortOrder) -> Array {
    let mut idx: Vec<usize> = (0..col.len()).collect();
    let key = |r: usize| col.value_at(r);
    idx.sort_by(|a, b| {
        let (va, vb) = (key(*a), key(*b));
        let ord = match (&va, &vb) {
            (Value::Null, Value::Null) => std::cmp::Ordering::Equal,
            (Value::Null, _) => std::cmp::Ordering::Less,
            (_, Value::Null) => std::cmp::Ordering::Greater,
            (Value::I64(x), Value::I64(y)) => x.cmp(y),
            (Value::F64(x), Value::F64(y)) => x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal),
            (Value::I64(x), Value::F64(y)) => (*x as f64)
                .partial_cmp(y)
                .unwrap_or(std::cmp::Ordering::Equal),
            (Value::F64(x), Value::I64(y)) => x
                .partial_cmp(&(*y as f64))
                .unwrap_or(std::cmp::Ordering::Equal),
            (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
            (Value::Str(x), Value::Str(y)) => x.cmp(y),
            _ => va.to_string().cmp(&vb.to_string()),
        };
        match order {
            SortOrder::Ascending => ord,
            SortOrder::Descending => ord.reverse(),
        }
        // Stable sort keeps equal keys in row order.
    });
    Array::from_i64(idx.into_iter().map(|i| i as i64).collect())
}

/// Elementwise addition of two numeric columns (null if either side is).
pub fn add(a: &Array, b: &Array) -> Result<Array, ArrowError> {
    binary_numeric(a, b, |x, y| x + y)
}

/// Elementwise multiplication of two numeric columns.
pub fn multiply(a: &Array, b: &Array) -> Result<Array, ArrowError> {
    binary_numeric(a, b, |x, y| x * y)
}

fn binary_numeric(a: &Array, b: &Array, f: impl Fn(f64, f64) -> f64) -> Result<Array, ArrowError> {
    if a.len() != b.len() {
        return Err(ArrowError::ShapeMismatch(format!(
            "binary op over {} vs {} rows",
            a.len(),
            b.len()
        )));
    }
    let num = |v: &Value| -> Result<Option<f64>, ArrowError> {
        Ok(match v {
            Value::Null => None,
            Value::I64(x) => Some(*x as f64),
            Value::F64(x) => Some(*x),
            other => {
                return Err(ArrowError::ShapeMismatch(format!(
                    "non-numeric value {other} in arithmetic"
                )))
            }
        })
    };
    let mut out = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let (x, y) = (num(&a.value_at(i))?, num(&b.value_at(i))?);
        out.push(match (x, y) {
            (Some(x), Some(y)) => Some(f(x, y)),
            _ => None,
        });
    }
    Ok(Array::from_opt_f64(out))
}

/// Minimum of a `Float64` column, skipping nulls.
pub fn min_f64(col: &Array) -> Result<Option<f64>, ArrowError> {
    Ok(col
        .as_f64()?
        .iter()
        .flatten()
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        }))
}

/// Maximum of a `Float64` column, skipping nulls.
pub fn max_f64(col: &Array) -> Result<Option<f64>, ArrowError> {
    Ok(col
        .as_f64()?
        .iter()
        .flatten()
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        }))
}

#[cfg(test)]
mod kernel_extension_tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::{Field, Schema};

    #[test]
    fn sort_numeric_with_nulls() {
        let col = Array::from_opt_f64(vec![Some(3.0), None, Some(1.0), Some(2.0)]);
        let asc = sort_to_indices(&col, SortOrder::Ascending);
        let order: Vec<i64> = (0..4)
            .map(|i| match asc.value_at(i) {
                Value::I64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3, 0]); // null, 1.0, 2.0, 3.0
        let desc = sort_to_indices(&col, SortOrder::Descending);
        assert_eq!(desc.value_at(0), Value::I64(0));
        assert_eq!(desc.value_at(3), Value::I64(1)); // null last
    }

    #[test]
    fn sort_strings() {
        let col = Array::from_utf8(&["pear", "apple", "fig"]);
        let idx = sort_to_indices(&col, SortOrder::Ascending);
        assert_eq!(idx.value_at(0), Value::I64(1));
        assert_eq!(idx.value_at(2), Value::I64(0));
    }

    #[test]
    fn sort_feeds_take() {
        let schema = Schema::new(vec![Field::new("v", DataType::Int64, false)]);
        let b = RecordBatch::try_new(schema, vec![Array::from_i64(vec![9, 1, 5])]).unwrap();
        let idx = sort_to_indices(b.column(0), SortOrder::Ascending);
        let sorted = take(&b, &idx).unwrap();
        assert_eq!(sorted.column(0).value_at(0), Value::I64(1));
        assert_eq!(sorted.column(0).value_at(2), Value::I64(9));
    }

    #[test]
    fn arithmetic_kernels() {
        let a = Array::from_f64(vec![1.0, 2.0, 3.0]);
        let b = Array::from_opt_f64(vec![Some(10.0), None, Some(30.0)]);
        let sum = add(&a, &b).unwrap();
        assert_eq!(sum.value_at(0), Value::F64(11.0));
        assert_eq!(sum.value_at(1), Value::Null);
        let prod = multiply(&a, &b).unwrap();
        assert_eq!(prod.value_at(2), Value::F64(90.0));
        // Mixed int/float coerces.
        let ints = Array::from_i64(vec![1, 2, 3]);
        let mixed = add(&a, &ints).unwrap();
        assert_eq!(mixed.value_at(2), Value::F64(6.0));
    }

    #[test]
    fn arithmetic_shape_and_type_errors() {
        let a = Array::from_f64(vec![1.0]);
        let b = Array::from_f64(vec![1.0, 2.0]);
        assert!(add(&a, &b).is_err());
        let s = Array::from_utf8(&["x"]);
        assert!(add(&a, &s).is_err());
    }

    #[test]
    fn float_min_max() {
        let col = Array::from_opt_f64(vec![Some(2.5), None, Some(-1.0)]);
        assert_eq!(min_f64(&col).unwrap(), Some(-1.0));
        assert_eq!(max_f64(&col).unwrap(), Some(2.5));
        let empty = Array::from_f64(vec![]);
        assert_eq!(min_f64(&empty).unwrap(), None);
    }
}

//! Compute kernels over columnar data.
//!
//! These are the handcrafted operators the simulated vertices execute when
//! an experiment actually materializes data (most experiments only *price*
//! data movement, but the examples and the SQL frontend run real queries
//! end-to-end on small inputs).
//!
//! Kernels are *vectorized*: each matches on the array variant once and
//! then runs a tight loop over raw values with bitmap validity, instead
//! of round-tripping every row through the boxed [`Value`] enum. Row
//! selections travel as `&[usize]` selection vectors ([`mask_to_indices`]
//! / [`take_indices`]) so operator chains can late-materialize.

use crate::array::{Array, Value};
use crate::batch::RecordBatch;
use crate::buffer::Bitmap;
use crate::error::ArrowError;

/// Selects the rows of `batch` where `mask` is true (null mask = false).
pub fn filter(batch: &RecordBatch, mask: &Array) -> Result<RecordBatch, ArrowError> {
    if mask.len() != batch.num_rows() {
        return Err(ArrowError::ShapeMismatch(format!(
            "mask has {} rows, batch has {}",
            mask.len(),
            batch.num_rows()
        )));
    }
    take_indices(batch, &mask_to_indices(mask)?)
}

/// Converts a boolean mask into a selection vector of the row indices
/// where it is true (null = false). The selection can be applied with
/// [`take_indices`], letting filter→filter→join chains gather once
/// instead of rebuilding a batch per step.
pub fn mask_to_indices(mask: &Array) -> Result<Vec<usize>, ArrowError> {
    let mask = mask.as_bool()?;
    let n = mask.len();
    let vals = mask.values().buffer().as_slice();
    let valid = mask.validity().map(|v| v.buffer().as_slice());
    let mut out = Vec::new();
    // Scan 64 rows per iteration: AND the value and validity words, skip
    // all-false words with one compare, and walk set bits by
    // `trailing_zeros` so cost tracks selected rows, not total rows.
    let whole_words = n / 64;
    for w in 0..whole_words {
        let at = w * 8;
        let mut word = u64::from_le_bytes(vals[at..at + 8].try_into().expect("8 bytes"));
        if let Some(vv) = valid {
            word &= u64::from_le_bytes(vv[at..at + 8].try_into().expect("8 bytes"));
        }
        let base = w * 64;
        while word != 0 {
            out.push(base + word.trailing_zeros() as usize);
            word &= word - 1;
        }
    }
    // Tail bytes; the final byte's padding bits are guarded against `n`
    // (an `all_set` values bitmap leaves them set).
    for i in whole_words * 8..n.div_ceil(8) {
        let mut byte = vals[i];
        if let Some(vv) = valid {
            byte &= vv[i];
        }
        let base = i * 8;
        while byte != 0 {
            let row = base + byte.trailing_zeros() as usize;
            if row < n {
                out.push(row);
            }
            byte &= byte - 1;
        }
    }
    Ok(out)
}

/// Reorders/selects rows by index.
pub fn take(batch: &RecordBatch, indices: &Array) -> Result<RecordBatch, ArrowError> {
    let idx = indices.as_i64()?;
    let mut out = Vec::with_capacity(idx.len());
    for i in 0..idx.len() {
        let v = idx
            .get(i)
            .ok_or_else(|| ArrowError::ShapeMismatch("take index may not be null".into()))?;
        let v = usize::try_from(v).map_err(|_| ArrowError::IndexOutOfBounds {
            index: 0,
            len: batch.num_rows(),
        })?;
        if v >= batch.num_rows() {
            return Err(ArrowError::IndexOutOfBounds {
                index: v,
                len: batch.num_rows(),
            });
        }
        out.push(v);
    }
    take_indices(batch, &out)
}

/// Gathers the rows at `indices` (a selection vector) into a new batch,
/// column-at-a-time through the typed gather paths.
pub fn take_indices(batch: &RecordBatch, indices: &[usize]) -> Result<RecordBatch, ArrowError> {
    for &i in indices {
        if i >= batch.num_rows() {
            return Err(ArrowError::IndexOutOfBounds {
                index: i,
                len: batch.num_rows(),
            });
        }
    }
    let columns = batch
        .columns()
        .iter()
        .map(|col| col.take_rows(indices))
        .collect();
    RecordBatch::try_new(batch.schema().clone(), columns)
}

/// Sums an `Int64` column, skipping nulls. Returns `None` for an
/// all-null/empty column.
pub fn sum_i64(col: &Array) -> Result<Option<i64>, ArrowError> {
    let a = col.as_i64()?;
    match a.validity() {
        None if a.is_empty() => Ok(None),
        None => Ok(Some(a.iter_raw().fold(0i64, i64::wrapping_add))),
        Some(v) => {
            let mut acc: Option<i64> = None;
            for (i, x) in a.iter_raw().enumerate() {
                if v.get(i) {
                    acc = Some(acc.unwrap_or(0).wrapping_add(x));
                }
            }
            Ok(acc)
        }
    }
}

/// Sums a `Float64` column, skipping nulls.
pub fn sum_f64(col: &Array) -> Result<Option<f64>, ArrowError> {
    let a = col.as_f64()?;
    match a.validity() {
        None if a.is_empty() => Ok(None),
        None => Ok(Some(a.iter_raw().sum())),
        Some(v) => {
            let mut acc: Option<f64> = None;
            for (i, x) in a.iter_raw().enumerate() {
                if v.get(i) {
                    acc = Some(acc.unwrap_or(0.0) + x);
                }
            }
            Ok(acc)
        }
    }
}

/// Minimum of an `Int64` column, skipping nulls.
pub fn min_i64(col: &Array) -> Result<Option<i64>, ArrowError> {
    let a = col.as_i64()?;
    match a.validity() {
        None => Ok(a.iter_raw().min()),
        Some(v) => Ok(a
            .iter_raw()
            .enumerate()
            .filter(|(i, _)| v.get(*i))
            .map(|(_, x)| x)
            .min()),
    }
}

/// Maximum of an `Int64` column, skipping nulls.
pub fn max_i64(col: &Array) -> Result<Option<i64>, ArrowError> {
    let a = col.as_i64()?;
    match a.validity() {
        None => Ok(a.iter_raw().max()),
        Some(v) => Ok(a
            .iter_raw()
            .enumerate()
            .filter(|(i, _)| v.get(*i))
            .map(|(_, x)| x)
            .max()),
    }
}

/// Number of non-null values in any column.
pub fn count(col: &Array) -> usize {
    col.len() - col.null_count()
}

/// Comparison operators for scalar predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Compares each element of a column against a scalar, producing a `Bool`
/// mask. Null inputs produce null outputs.
///
/// Dispatches on the (column variant, scalar variant) pair once, then
/// runs a tight loop over the raw values; the input's validity bitmap is
/// carried over unchanged (value bits are false at null slots, keeping
/// the canonical form).
pub fn cmp_scalar(col: &Array, op: CmpOp, scalar: &Value) -> Result<Array, ArrowError> {
    let n = col.len();
    if matches!(scalar, Value::Null) {
        return Ok(Array::from_opt_bool(vec![None; n]));
    }
    // Raw comparison results; slots that are null in `col` are forced to
    // false below so outputs stay canonical.
    let bits: Vec<bool> = match (col, scalar) {
        (Array::Int64(a), Value::I64(b)) => a.iter_raw().map(|x| op.eval(x, *b)).collect(),
        (Array::Int64(a), Value::F64(b)) => a.iter_raw().map(|x| op.eval(x as f64, *b)).collect(),
        (Array::Float64(a), Value::F64(b)) => a.iter_raw().map(|x| op.eval(x, *b)).collect(),
        (Array::Float64(a), Value::I64(b)) => {
            let b = *b as f64;
            a.iter_raw().map(|x| op.eval(x, b)).collect()
        }
        (Array::Utf8(a), Value::Str(b)) => {
            // Fast path over the raw offsets/data buffers — no per-row
            // UTF-8 validation or `&str` construction. Null slots span an
            // empty byte range; whatever they produce is masked to false
            // by the validity pass below.
            let needle = b.as_bytes();
            let data = a.data().as_slice();
            let off = a.offsets();
            match op {
                // Equality is decided by the offsets alone whenever the
                // lengths differ; only length-matched slots get a
                // byte compare.
                CmpOp::Eq | CmpOp::Ne => (0..n)
                    .map(|i| {
                        let start = off.get_i32(i) as usize;
                        let end = off.get_i32(i + 1) as usize;
                        let eq = end - start == needle.len() && &data[start..end] == needle;
                        (op == CmpOp::Eq) == eq
                    })
                    .collect(),
                // UTF-8's code-point order equals its byte order, so
                // ordered comparisons run directly over raw bytes.
                _ => (0..n)
                    .map(|i| {
                        let start = off.get_i32(i) as usize;
                        let end = off.get_i32(i + 1) as usize;
                        op.eval(&data[start..end], needle)
                    })
                    .collect(),
            }
        }
        (Array::DictUtf8(a), Value::Str(b)) => {
            // Resolve the scalar against the dictionary once; the per-row
            // loop then compares fixed-width u32 keys (Eq/Ne) or gathers
            // a precomputed per-entry verdict (ordered ops) — the string
            // bytes are never touched per row.
            let dict = a.dictionary();
            let keys = a.keys();
            match op {
                CmpOp::Eq | CmpOp::Ne => {
                    // Entries are deduplicated, so at most one key matches.
                    let hit = (0..dict.len()).find(|&k| dict.get(k) == Some(b.as_str()));
                    match (op == CmpOp::Eq, hit) {
                        (true, Some(h)) => {
                            let h = h as u32;
                            keys.iter_u32(n).map(|k| k == h).collect()
                        }
                        (true, None) => vec![false; n],
                        (false, Some(h)) => {
                            let h = h as u32;
                            keys.iter_u32(n).map(|k| k != h).collect()
                        }
                        (false, None) => vec![true; n],
                    }
                }
                _ => {
                    let verdicts: Vec<bool> = (0..dict.len())
                        .map(|k| op.eval(dict.get(k).expect("dict entry"), b.as_str()))
                        .collect();
                    if verdicts.is_empty() {
                        // Empty dictionary means every slot is null;
                        // whatever we produce is masked below.
                        vec![false; n]
                    } else {
                        keys.iter_u32(n).map(|k| verdicts[k as usize]).collect()
                    }
                }
            }
        }
        (Array::Bool(a), Value::Bool(b)) => (0..n)
            .map(|i| match a.get(i) {
                Some(x) => op.eval(x, *b),
                None => false,
            })
            .collect(),
        _ => {
            return Err(ArrowError::ShapeMismatch(format!(
                "cannot compare {} with {}",
                col.data_type(),
                scalar
            )))
        }
    };
    let validity = match col {
        Array::Int64(a) => a.validity().cloned(),
        Array::Float64(a) => a.validity().cloned(),
        Array::Bool(a) => a.validity().cloned(),
        Array::Utf8(a) => a.validity().cloned(),
        Array::DictUtf8(a) => a.validity().cloned(),
    };
    let values = match &validity {
        None => Bitmap::from_bools(&bits),
        Some(v) => {
            // Mask comparison results at null slots to the canonical
            // false so logically-equal masks compare equal.
            let masked: Vec<bool> = bits
                .iter()
                .enumerate()
                .map(|(i, b)| *b && v.get(i))
                .collect();
            Bitmap::from_bools(&masked)
        }
    };
    Ok(Array::Bool(crate::array::BoolArray::from_parts(
        values, validity,
    )))
}

/// Elementwise AND of two boolean masks (null-safe: null AND x = null
/// unless x is false).
///
/// Runs byte-at-a-time over the packed bitmaps (64 rows per two loads on
/// the fast path), producing canonical outputs: value bits false wherever
/// the result is null or false, validity omitted when nothing is null.
pub fn and(a: &Array, b: &Array) -> Result<Array, ArrowError> {
    let (a, b) = (a.as_bool()?, b.as_bool()?);
    let n = a.len();
    if n != b.len() {
        return Err(ArrowError::ShapeMismatch("mask length mismatch".into()));
    }
    let bytes = n.div_ceil(8);
    let av = a.values().buffer().as_slice();
    let bv = b.values().buffer().as_slice();
    // Validity bytes, treating an absent bitmap as all-set.
    let byte_at = |bm: Option<&Bitmap>, i: usize| -> u8 {
        match bm {
            None => 0xFF,
            Some(m) => m.buffer().as_slice()[i],
        }
    };
    let mut out_vals = vec![0u8; bytes];
    let mut out_valid = vec![0u8; bytes];
    let mut all_valid = true;
    for i in 0..bytes {
        let (xa, xb) = (av[i], bv[i]);
        let (va, vb) = (byte_at(a.validity(), i), byte_at(b.validity(), i));
        // Definite-false on either side dominates a null on the other.
        let false_a = va & !xa;
        let false_b = vb & !xb;
        let true_both = va & xa & vb & xb;
        out_vals[i] = true_both;
        out_valid[i] = false_a | false_b | true_both;
        // Only the real bits of the final byte count toward validity.
        let live = if (i + 1) * 8 <= n {
            0xFF
        } else {
            (1u16 << (n % 8)) as u8 - 1
        };
        if out_valid[i] & live != live {
            all_valid = false;
        }
    }
    // Zero the padding bits so logical equality sees canonical buffers.
    if n % 8 != 0 {
        let live = (1u16 << (n % 8)) as u8 - 1;
        if let Some(last) = out_vals.last_mut() {
            *last &= live;
        }
    }
    let values = Bitmap::from_buffer(crate::buffer::Buffer::from_vec(out_vals), n);
    let validity =
        (!all_valid).then(|| Bitmap::from_buffer(crate::buffer::Buffer::from_vec(out_valid), n));
    Ok(Array::Bool(crate::array::BoolArray::from_parts(
        values, validity,
    )))
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

#[inline]
fn fnv_feed(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash of one row's values across the given columns; used for hash
/// partitioning keyed edges. Equal to `hash_rows(batch, cols)[row]`.
pub fn hash_row(batch: &RecordBatch, cols: &[usize], row: usize) -> u64 {
    let mut h = FNV_OFFSET;
    for &c in cols {
        match batch.column(c).value_at(row) {
            Value::Null => h = fnv_feed(h, &[0xFF]),
            Value::I64(v) => h = fnv_feed(h, &v.to_le_bytes()),
            Value::F64(v) => h = fnv_feed(h, &v.to_bits().to_le_bytes()),
            Value::Bool(v) => h = fnv_feed(h, &[v as u8]),
            Value::Str(s) => h = fnv_feed(h, s.as_bytes()),
        }
    }
    h
}

/// Folds one column's raw bytes into a running hash per row, matching
/// [`hash_row`] bit-for-bit but dispatching on the variant once and never
/// rendering a value. Nulls feed the `0xFF` marker byte.
pub fn hash_column_into(col: &Array, hashes: &mut [u64]) {
    assert_eq!(col.len(), hashes.len(), "hash_column_into length mismatch");
    match col {
        Array::Int64(a) => {
            let validity = a.validity();
            for (i, x) in a.iter_raw().enumerate() {
                hashes[i] = match validity {
                    Some(v) if !v.get(i) => fnv_feed(hashes[i], &[0xFF]),
                    _ => fnv_feed(hashes[i], &x.to_le_bytes()),
                };
            }
        }
        Array::Float64(a) => {
            let validity = a.validity();
            for (i, x) in a.iter_raw().enumerate() {
                hashes[i] = match validity {
                    Some(v) if !v.get(i) => fnv_feed(hashes[i], &[0xFF]),
                    _ => fnv_feed(hashes[i], &x.to_bits().to_le_bytes()),
                };
            }
        }
        Array::Bool(a) => {
            for (i, h) in hashes.iter_mut().enumerate() {
                *h = match a.get(i) {
                    Some(x) => fnv_feed(*h, &[x as u8]),
                    None => fnv_feed(*h, &[0xFF]),
                };
            }
        }
        Array::Utf8(a) => {
            for (i, h) in hashes.iter_mut().enumerate() {
                *h = match a.get(i) {
                    Some(s) => fnv_feed(*h, s.as_bytes()),
                    None => fnv_feed(*h, &[0xFF]),
                };
            }
        }
        Array::DictUtf8(a) => {
            // Resolve each dictionary entry's byte slice once; the per-row
            // loop chains those bytes into the running hash (the FNV
            // accumulator differs per row, so only the slice lookup —
            // not the feed — can be hoisted here).
            let dict = a.dictionary();
            let entries: Vec<&[u8]> = (0..dict.len())
                .map(|k| dict.get(k).expect("dict entry").as_bytes())
                .collect();
            let validity = a.validity();
            for (i, k) in a.keys().iter_u32(a.len()).enumerate() {
                hashes[i] = match validity {
                    Some(v) if !v.get(i) => fnv_feed(hashes[i], &[0xFF]),
                    _ => fnv_feed(hashes[i], entries[k as usize]),
                };
            }
        }
    }
}

/// Per-row FNV-1a hash of a single key column over its raw bytes (the
/// join build/probe hash). `coerce_int_to_f64` hashes `Int64` values via
/// their `f64` bit pattern so an `Int64` column and a `Float64` column
/// holding numerically-equal keys land in the same bucket. Null rows get
/// the null-marker hash; join callers skip them.
pub fn hash_key_column(col: &Array, coerce_int_to_f64: bool) -> Vec<u64> {
    if coerce_int_to_f64 {
        if let Array::Int64(a) = col {
            let validity = a.validity();
            return a
                .iter_raw()
                .enumerate()
                .map(|(i, v)| match validity {
                    Some(m) if !m.get(i) => fnv_feed(FNV_OFFSET, &[0xFF]),
                    _ => fnv_feed(FNV_OFFSET, &(v as f64).to_bits().to_le_bytes()),
                })
                .collect();
        }
    }
    if let Array::DictUtf8(a) = col {
        // The key hash starts from a fixed seed, so each dictionary
        // entry's full hash can be computed once and gathered per row —
        // bit-identical to hashing the decoded strings.
        let dict = a.dictionary();
        let entry_hashes: Vec<u64> = (0..dict.len())
            .map(|k| fnv_feed(FNV_OFFSET, dict.get(k).expect("dict entry").as_bytes()))
            .collect();
        let null_hash = fnv_feed(FNV_OFFSET, &[0xFF]);
        let validity = a.validity();
        return a
            .keys()
            .iter_u32(a.len())
            .enumerate()
            .map(|(i, k)| match validity {
                Some(m) if !m.get(i) => null_hash,
                _ => entry_hashes[k as usize],
            })
            .collect();
    }
    let mut hashes = vec![FNV_OFFSET; col.len()];
    hash_column_into(col, &mut hashes);
    hashes
}

/// Hash of one row of a single key column, bit-identical to
/// `hash_key_column(col, coerce_int_to_f64)[row]`. Selective probes
/// (selection-vector pushdown) use this to hash only the rows they
/// actually touch instead of the whole column.
pub fn hash_key_at(col: &Array, coerce_int_to_f64: bool, row: usize) -> u64 {
    match col {
        Array::Int64(a) => match a.get(row) {
            Some(v) if coerce_int_to_f64 => {
                fnv_feed(FNV_OFFSET, &(v as f64).to_bits().to_le_bytes())
            }
            Some(v) => fnv_feed(FNV_OFFSET, &v.to_le_bytes()),
            None => fnv_feed(FNV_OFFSET, &[0xFF]),
        },
        Array::Float64(a) => match a.get(row) {
            Some(v) => fnv_feed(FNV_OFFSET, &v.to_bits().to_le_bytes()),
            None => fnv_feed(FNV_OFFSET, &[0xFF]),
        },
        Array::Bool(a) => match a.get(row) {
            Some(v) => fnv_feed(FNV_OFFSET, &[v as u8]),
            None => fnv_feed(FNV_OFFSET, &[0xFF]),
        },
        Array::Utf8(a) => match a.get(row) {
            Some(s) => fnv_feed(FNV_OFFSET, s.as_bytes()),
            None => fnv_feed(FNV_OFFSET, &[0xFF]),
        },
        Array::DictUtf8(a) => match a.get(row) {
            Some(s) => fnv_feed(FNV_OFFSET, s.as_bytes()),
            None => fnv_feed(FNV_OFFSET, &[0xFF]),
        },
    }
}

/// Exact `i64` ↔ `f64` join-key equality: true only when `f` is a whole
/// number that round-trips to exactly `i`. The old `i as f64 == f` check
/// rounded |i| > 2^53 onto nearby floats and manufactured matches between
/// distinct keys.
///
/// Bit-level on the float side (`-0.0` does not match `0`), which keeps
/// it consistent with [`hash_key_column`]'s coerced bucketing: any pair
/// this returns true for hashes into the same bucket.
#[inline]
pub fn i64_f64_key_eq(i: i64, f: f64) -> bool {
    // Only floats in [-2^63, 2^63) can equal an i64; this also rejects
    // NaN and the infinities before the `as` casts below can saturate.
    if !(-9_223_372_036_854_775_808.0..9_223_372_036_854_775_808.0).contains(&f) {
        return false;
    }
    f as i64 == i && ((f as i64) as f64).to_bits() == f.to_bits()
}

/// FNV-1a hashes of every row across the given columns, column-at-a-time.
/// `hash_rows(b, cols)[r] == hash_row(b, cols, r)` for every row.
pub fn hash_rows(batch: &RecordBatch, cols: &[usize]) -> Vec<u64> {
    let mut hashes = vec![FNV_OFFSET; batch.num_rows()];
    for &c in cols {
        hash_column_into(batch.column(c), &mut hashes);
    }
    hashes
}

/// Splits a batch into `parts` partitions by hashing the given key
/// columns; the same keys always land in the same partition.
pub fn hash_partition(
    batch: &RecordBatch,
    key_cols: &[usize],
    parts: usize,
) -> Result<Vec<RecordBatch>, ArrowError> {
    assert!(parts > 0, "hash_partition into zero parts");
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for (r, h) in hash_rows(batch, key_cols).into_iter().enumerate() {
        buckets[(h % parts as u64) as usize].push(r);
    }
    buckets
        .iter()
        .map(|rows| take_indices(batch, rows))
        .collect()
}

/// Builds a validity-style mask from an iterator of booleans.
pub fn mask_from_bools(bools: &[bool]) -> Array {
    Array::Bool(crate::array::BoolArray::from_parts(
        Bitmap::from_bools(bools),
        None,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::{Field, Schema};

    fn sample() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("score", DataType::Float64, true),
        ]);
        RecordBatch::try_new(
            schema,
            vec![
                Array::from_i64(vec![1, 2, 3, 4]),
                Array::from_opt_f64(vec![Some(0.1), None, Some(0.3), Some(0.4)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn hash_key_at_matches_hash_key_column() {
        let cols = vec![
            Array::from_opt_i64(vec![Some(1), None, Some(-7), Some(i64::MAX)]),
            Array::from_opt_f64(vec![Some(0.5), None, Some(-0.0), Some(f64::MAX)]),
            Array::from_opt_bool(vec![Some(true), None, Some(false), Some(true)]),
            Array::Utf8(crate::array::Utf8Array::from_options(vec![
                Some("a"),
                None,
                Some(""),
                Some("naïve"),
            ])),
        ];
        for col in &cols {
            for coerce in [false, true] {
                let full = hash_key_column(col, coerce);
                for (i, h) in full.iter().enumerate() {
                    assert_eq!(hash_key_at(col, coerce, i), *h, "row {i} coerce {coerce}");
                }
            }
        }
    }

    #[test]
    fn filter_keeps_true_rows() {
        let b = sample();
        let mask = Array::from_bool(&[true, false, true, false]);
        let out = filter(&b, &mask).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column(0).value_at(1), Value::I64(3));
    }

    #[test]
    fn filter_null_mask_drops() {
        let b = sample();
        let mask = Array::from_opt_bool(vec![Some(true), None, None, Some(true)]);
        assert_eq!(filter(&b, &mask).unwrap().num_rows(), 2);
    }

    #[test]
    fn filter_length_mismatch_errors() {
        let b = sample();
        let mask = Array::from_bool(&[true]);
        assert!(filter(&b, &mask).is_err());
    }

    #[test]
    fn take_reorders() {
        let b = sample();
        let out = take(&b, &Array::from_i64(vec![3, 0, 0])).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.column(0).value_at(0), Value::I64(4));
        assert_eq!(out.column(0).value_at(2), Value::I64(1));
    }

    #[test]
    fn take_out_of_bounds_errors() {
        let b = sample();
        assert!(matches!(
            take(&b, &Array::from_i64(vec![99])),
            Err(ArrowError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn aggregates() {
        let b = sample();
        assert_eq!(sum_i64(b.column(0)).unwrap(), Some(10));
        assert_eq!(min_i64(b.column(0)).unwrap(), Some(1));
        assert_eq!(max_i64(b.column(0)).unwrap(), Some(4));
        let s = sum_f64(b.column(1)).unwrap().unwrap();
        assert!((s - 0.8).abs() < 1e-12);
        assert_eq!(count(b.column(1)), 3);
        assert_eq!(sum_i64(&Array::from_i64(vec![])).unwrap(), None);
    }

    #[test]
    fn cmp_scalar_produces_mask() {
        let b = sample();
        let mask = cmp_scalar(b.column(0), CmpOp::Gt, &Value::I64(2)).unwrap();
        let bools: Vec<Option<bool>> = (0..4)
            .map(|i| match mask.value_at(i) {
                Value::Bool(v) => Some(v),
                Value::Null => None,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            bools,
            vec![Some(false), Some(false), Some(true), Some(true)]
        );
    }

    #[test]
    fn cmp_nulls_propagate() {
        let b = sample();
        let mask = cmp_scalar(b.column(1), CmpOp::Lt, &Value::F64(0.35)).unwrap();
        assert_eq!(mask.value_at(1), Value::Null);
        assert_eq!(mask.value_at(0), Value::Bool(true));
    }

    #[test]
    fn cmp_mixed_numeric_coerces() {
        let col = Array::from_i64(vec![1, 5]);
        let mask = cmp_scalar(&col, CmpOp::Ge, &Value::F64(2.5)).unwrap();
        assert_eq!(mask.value_at(0), Value::Bool(false));
        assert_eq!(mask.value_at(1), Value::Bool(true));
    }

    #[test]
    fn cmp_incompatible_errors() {
        let col = Array::from_i64(vec![1]);
        assert!(cmp_scalar(&col, CmpOp::Eq, &Value::Str("x".into())).is_err());
    }

    #[test]
    fn utf8_cmp_fast_path_matches_str_semantics() {
        // Length-prefiltered equality and raw-byte ordering must agree
        // with `&str` comparison everywhere: empty strings, shared
        // prefixes, multi-byte code points, nulls.
        let vals = [
            Some(""),
            Some("a"),
            Some("ab"),
            Some("abc"),
            None,
            Some("b"),
            Some("naïve"),
            Some("z\u{10348}"),
        ];
        let col = Array::from_opt_utf8(vals.to_vec());
        for needle in ["", "ab", "abd", "naïve", "z", "\u{10348}"] {
            for op in [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ] {
                let mask = cmp_scalar(&col, op, &Value::Str(needle.into())).unwrap();
                for (i, v) in vals.iter().enumerate() {
                    let want = match v {
                        Some(s) => Value::Bool(op.eval(*s, needle)),
                        None => Value::Null,
                    };
                    assert_eq!(mask.value_at(i), want, "{v:?} {op:?} {needle:?} (row {i})");
                }
            }
        }
    }

    #[test]
    fn and_truth_table() {
        let a = Array::from_opt_bool(vec![Some(true), Some(true), Some(false), None]);
        let b = Array::from_opt_bool(vec![Some(true), None, None, None]);
        let r = and(&a, &b).unwrap();
        assert_eq!(r.value_at(0), Value::Bool(true));
        assert_eq!(r.value_at(1), Value::Null);
        assert_eq!(r.value_at(2), Value::Bool(false));
        assert_eq!(r.value_at(3), Value::Null);
    }

    #[test]
    fn hash_partition_is_stable_and_complete() {
        let n = 100i64;
        let schema = Schema::new(vec![Field::new("k", DataType::Int64, false)]);
        let b = RecordBatch::try_new(
            schema,
            vec![Array::from_i64((0..n).map(|i| i % 10).collect())],
        )
        .unwrap();
        let parts = hash_partition(&b, &[0], 4).unwrap();
        let total: usize = parts.iter().map(RecordBatch::num_rows).sum();
        assert_eq!(total, n as usize);
        // Same key never appears in two partitions.
        for key in 0..10i64 {
            let holders = parts
                .iter()
                .filter(|p| (0..p.num_rows()).any(|r| p.column(0).value_at(r) == Value::I64(key)))
                .count();
            assert_eq!(holders, 1, "key {key} appears in {holders} partitions");
        }
        // Deterministic across invocations.
        let parts2 = hash_partition(&b, &[0], 4).unwrap();
        assert_eq!(parts, parts2);
    }

    #[test]
    fn hash_row_distinguishes_null_from_zero() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int64, true)]);
        let b =
            RecordBatch::try_new(schema, vec![Array::from_opt_i64(vec![Some(0), None])]).unwrap();
        assert_ne!(hash_row(&b, &[0], 0), hash_row(&b, &[0], 1));
    }

    fn mixed_batch() -> RecordBatch {
        RecordBatch::try_new(
            Schema::new(vec![
                Field::new("i", DataType::Int64, true),
                Field::new("f", DataType::Float64, true),
                Field::new("b", DataType::Bool, true),
                Field::new("s", DataType::Utf8, true),
            ]),
            vec![
                Array::from_opt_i64(vec![Some(1), None, Some(-3), Some(0), Some(7)]),
                Array::from_opt_f64(vec![Some(0.5), Some(-0.0), None, Some(f64::NAN), Some(2.0)]),
                Array::from_opt_bool(vec![Some(true), Some(false), None, Some(true), None]),
                Array::from_opt_utf8(vec![Some("a"), None, Some(""), Some("xyz"), Some("a")]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn hash_rows_matches_hash_row_per_row() {
        let b = mixed_batch();
        for cols in [vec![0usize], vec![1, 2], vec![0, 1, 2, 3], vec![3, 0]] {
            let vectorized = hash_rows(&b, &cols);
            assert_eq!(vectorized.len(), b.num_rows());
            for (r, &h) in vectorized.iter().enumerate() {
                assert_eq!(h, hash_row(&b, &cols, r), "cols {cols:?} row {r}");
            }
        }
    }

    #[test]
    fn mask_to_indices_keeps_valid_true_rows() {
        let mask = Array::from_opt_bool(vec![Some(true), Some(false), None, Some(true)]);
        assert_eq!(mask_to_indices(&mask).unwrap(), vec![0, 3]);
        assert!(mask_to_indices(&Array::from_i64(vec![1])).is_err());
    }

    #[test]
    fn hash_key_column_coerces_ints_onto_float_hashes() {
        let ints = Array::from_opt_i64(vec![Some(1), Some(2), None]);
        let floats = Array::from_opt_f64(vec![Some(1.0), Some(2.0), None]);
        // Coerced int hashes collide with the equal float keys...
        assert_eq!(
            hash_key_column(&ints, true),
            hash_key_column(&floats, false)
        );
        // ...while uncoerced ones hash the raw i64 bytes (and match the
        // row-hash path).
        let schema = Schema::new(vec![Field::new("k", DataType::Int64, true)]);
        let b = RecordBatch::try_new(schema, vec![ints.clone()]).unwrap();
        assert_eq!(hash_key_column(&ints, false), hash_rows(&b, &[0]));
        assert_ne!(
            hash_key_column(&ints, false)[0],
            hash_key_column(&ints, true)[0]
        );
    }

    #[test]
    fn take_rows_matches_value_gather_on_all_types() {
        let b = mixed_batch();
        let indices = vec![4usize, 0, 0, 2, 3, 1];
        let fast = take_indices(&b, &indices).unwrap();
        for c in 0..b.num_columns() {
            let values: Vec<Value> = indices.iter().map(|&r| b.column(c).value_at(r)).collect();
            let slow = Array::from_values(b.column(c).data_type(), &values).unwrap();
            assert_eq!(fast.column(c), &slow, "column {c}");
        }
    }

    #[test]
    fn and_matches_three_valued_reference_across_byte_boundaries() {
        // 20 elements forces the kernel across byte boundaries and into
        // the final partial byte.
        let pick = |i: usize, salt: usize| match (i + salt) % 3 {
            0 => Some(true),
            1 => Some(false),
            _ => None,
        };
        let a_vals: Vec<Option<bool>> = (0..20).map(|i| pick(i, 0)).collect();
        let b_vals: Vec<Option<bool>> = (0..20).map(|i| pick(i, 1)).collect();
        let out = and(
            &Array::from_opt_bool(a_vals.clone()),
            &Array::from_opt_bool(b_vals.clone()),
        )
        .unwrap();
        let reference: Vec<Option<bool>> = a_vals
            .iter()
            .zip(&b_vals)
            .map(|(x, y)| match (x, y) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            })
            .collect();
        assert_eq!(out, Array::from_opt_bool(reference));
    }
}

/// Sort order for [`sort_to_indices`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first; NULLs first.
    Ascending,
    /// Largest first; NULLs last.
    Descending,
}

/// Computes the row permutation that sorts `col`. NULLs sort lowest.
/// Numeric columns sort numerically; strings lexicographically; booleans
/// false-before-true.
///
/// Dispatches on the variant once and sorts over typed keys gathered
/// into a flat vector — no `Value` boxing in the comparator.
pub fn sort_to_indices(col: &Array, order: SortOrder) -> Array {
    let idx = SortKeys::new(col).sort_range(order, 0, col.len() as u32);
    Array::from_i64(idx.into_iter().map(|i| i as i64).collect())
}

/// Typed sort keys extracted from a column once, reusable across range
/// sorts and run merges. Owned (the `Utf8` variant holds an O(1) clone of
/// the array's shared buffers) and `Send + Sync`, so morsel-parallel sorts
/// can share one extraction across worker threads.
///
/// The comparison rules are exactly [`sort_to_indices`]'s: NULLs lowest,
/// floats by `total_cmp` (NaN above +inf), strings by code-point order,
/// dictionary columns via precomputed entry ranks.
pub struct SortKeys {
    repr: KeyRepr,
}

enum KeyRepr {
    I64(Vec<Option<i64>>),
    F64(Vec<Option<f64>>),
    Bool(Vec<Option<bool>>),
    // Owned clone of the Utf8 array; comparisons read raw offset/data
    // buffers (UTF-8 byte order equals code-point order).
    Utf8(crate::array::Utf8Array),
    Rank(Vec<Option<u32>>),
}

impl SortKeys {
    /// Extracts sort keys from `col` (one pass; O(dict) extra for
    /// dictionary rank assignment).
    pub fn new(col: &Array) -> SortKeys {
        let repr = match col {
            Array::Int64(a) => KeyRepr::I64(a.iter().collect()),
            Array::Float64(a) => KeyRepr::F64(a.iter().collect()),
            Array::Bool(a) => KeyRepr::Bool(a.iter().collect()),
            Array::Utf8(a) => KeyRepr::Utf8(a.clone()),
            Array::DictUtf8(a) => {
                // Rank each dictionary entry once (entries are
                // deduplicated, so ranks are a total order identical to
                // string order); comparisons then work over u32 ranks,
                // never string bytes.
                let dict = a.dictionary();
                let mut by_str: Vec<u32> = (0..dict.len() as u32).collect();
                by_str.sort_by(|&x, &y| dict.get(x as usize).cmp(&dict.get(y as usize)));
                let mut rank = vec![0u32; dict.len()];
                for (r, k) in by_str.iter().enumerate() {
                    rank[*k as usize] = r as u32;
                }
                KeyRepr::Rank(
                    (0..a.len())
                        .map(|i| a.get(i).map(|_| rank[a.key_at(i) as usize]))
                        .collect(),
                )
            }
        };
        SortKeys { repr }
    }

    /// Ascending-semantics comparison of two rows' keys (NULLs first).
    #[inline]
    fn cmp_rows(&self, x: u32, y: u32) -> std::cmp::Ordering {
        let (x, y) = (x as usize, y as usize);
        match &self.repr {
            KeyRepr::I64(k) => k[x].cmp(&k[y]),
            KeyRepr::F64(k) => match (k[x], k[y]) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                // `total_cmp`, not `partial_cmp`: NaN has no partial
                // order, and a non-total comparator makes `sort_by`
                // placement arbitrary (or panics). IEEE total order puts
                // NaN above +inf (and -NaN below -inf), so NaNs sort last
                // ascending, deterministically.
                (Some(a), Some(b)) => a.total_cmp(&b),
            },
            KeyRepr::Bool(k) => k[x].cmp(&k[y]),
            KeyRepr::Utf8(a) => {
                let bytes_at = |i: usize| -> Option<&[u8]> {
                    if a.validity().is_some_and(|v| !v.get(i)) {
                        return None;
                    }
                    let start = a.offsets().get_i32(i) as usize;
                    let end = a.offsets().get_i32(i + 1) as usize;
                    Some(&a.data().as_slice()[start..end])
                };
                bytes_at(x).cmp(&bytes_at(y))
            }
            KeyRepr::Rank(k) => k[x].cmp(&k[y]),
        }
    }

    /// Stably sorts the row range `lo..hi` into an index run: indices
    /// ordered by `(key under order, row ascending)`. With the full range
    /// this is exactly [`sort_to_indices`].
    pub fn sort_range(&self, order: SortOrder, lo: u32, hi: u32) -> Vec<u32> {
        let dir = |ord: std::cmp::Ordering| match order {
            SortOrder::Ascending => ord,
            SortOrder::Descending => ord.reverse(),
        };
        let mut idx: Vec<u32> = (lo..hi).collect();
        // Stable sorts keep equal keys in row order.
        idx.sort_by(|&x, &y| dir(self.cmp_rows(x, y)));
        idx
    }

    /// Merges two sorted index runs, breaking key ties by row index so the
    /// result is ordered by `(key under order, row ascending)` — merging
    /// per-morsel runs therefore reproduces the stable full sort
    /// bit-for-bit, independent of how rows were split into runs.
    pub fn merge(&self, order: SortOrder, a: &[u32], b: &[u32]) -> Vec<u32> {
        let dir = |ord: std::cmp::Ordering| match order {
            SortOrder::Ascending => ord,
            SortOrder::Descending => ord.reverse(),
        };
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            let (x, y) = (a[i], b[j]);
            if dir(self.cmp_rows(x, y)).then(x.cmp(&y)) != std::cmp::Ordering::Greater {
                out.push(x);
                i += 1;
            } else {
                out.push(y);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out
    }
}

/// Elementwise addition of two numeric columns (null if either side is).
pub fn add(a: &Array, b: &Array) -> Result<Array, ArrowError> {
    binary_numeric(a, b, |x, y| x + y)
}

/// Elementwise multiplication of two numeric columns.
pub fn multiply(a: &Array, b: &Array) -> Result<Array, ArrowError> {
    binary_numeric(a, b, |x, y| x * y)
}

/// Reads one numeric column as `(raw f64 values, validity)`; the raw
/// vector holds the null placeholder at invalid slots.
fn numeric_raw(a: &Array) -> Result<(Vec<f64>, Option<&Bitmap>), ArrowError> {
    match a {
        Array::Int64(a) => Ok((a.iter_raw().map(|x| x as f64).collect(), a.validity())),
        Array::Float64(a) => Ok((a.iter_raw().collect(), a.validity())),
        other => Err(ArrowError::ShapeMismatch(format!(
            "non-numeric column {} in arithmetic",
            other.data_type()
        ))),
    }
}

fn binary_numeric(a: &Array, b: &Array, f: impl Fn(f64, f64) -> f64) -> Result<Array, ArrowError> {
    let n = a.len();
    if n != b.len() {
        return Err(ArrowError::ShapeMismatch(format!(
            "binary op over {} vs {} rows",
            a.len(),
            b.len()
        )));
    }
    let (xa, va) = numeric_raw(a)?;
    let (xb, vb) = numeric_raw(b)?;
    if va.is_none() && vb.is_none() {
        let out: Vec<f64> = xa.iter().zip(&xb).map(|(x, y)| f(*x, *y)).collect();
        return Ok(Array::from_f64(out));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let ok = va.is_none_or(|v| v.get(i)) && vb.is_none_or(|v| v.get(i));
        out.push(ok.then(|| f(xa[i], xb[i])));
    }
    Ok(Array::from_opt_f64(out))
}

/// Minimum of a `Float64` column, skipping nulls.
pub fn min_f64(col: &Array) -> Result<Option<f64>, ArrowError> {
    fold_f64(col, f64::min)
}

/// Maximum of a `Float64` column, skipping nulls.
pub fn max_f64(col: &Array) -> Result<Option<f64>, ArrowError> {
    fold_f64(col, f64::max)
}

fn fold_f64(col: &Array, f: impl Fn(f64, f64) -> f64) -> Result<Option<f64>, ArrowError> {
    let a = col.as_f64()?;
    let mut acc: Option<f64> = None;
    match a.validity() {
        None => {
            for v in a.iter_raw() {
                acc = Some(acc.map_or(v, |x| f(x, v)));
            }
        }
        Some(valid) => {
            for (i, v) in a.iter_raw().enumerate() {
                if valid.get(i) {
                    acc = Some(acc.map_or(v, |x| f(x, v)));
                }
            }
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod kernel_extension_tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::{Field, Schema};

    #[test]
    fn sort_numeric_with_nulls() {
        let col = Array::from_opt_f64(vec![Some(3.0), None, Some(1.0), Some(2.0)]);
        let asc = sort_to_indices(&col, SortOrder::Ascending);
        let order: Vec<i64> = (0..4)
            .map(|i| match asc.value_at(i) {
                Value::I64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3, 0]); // null, 1.0, 2.0, 3.0
        let desc = sort_to_indices(&col, SortOrder::Descending);
        assert_eq!(desc.value_at(0), Value::I64(0));
        assert_eq!(desc.value_at(3), Value::I64(1)); // null last
    }

    #[test]
    fn sort_strings() {
        let col = Array::from_utf8(&["pear", "apple", "fig"]);
        let idx = sort_to_indices(&col, SortOrder::Ascending);
        assert_eq!(idx.value_at(0), Value::I64(1));
        assert_eq!(idx.value_at(2), Value::I64(0));
    }

    #[test]
    fn sort_feeds_take() {
        let schema = Schema::new(vec![Field::new("v", DataType::Int64, false)]);
        let b = RecordBatch::try_new(schema, vec![Array::from_i64(vec![9, 1, 5])]).unwrap();
        let idx = sort_to_indices(b.column(0), SortOrder::Ascending);
        let sorted = take(&b, &idx).unwrap();
        assert_eq!(sorted.column(0).value_at(0), Value::I64(1));
        assert_eq!(sorted.column(0).value_at(2), Value::I64(9));
    }

    #[test]
    fn arithmetic_kernels() {
        let a = Array::from_f64(vec![1.0, 2.0, 3.0]);
        let b = Array::from_opt_f64(vec![Some(10.0), None, Some(30.0)]);
        let sum = add(&a, &b).unwrap();
        assert_eq!(sum.value_at(0), Value::F64(11.0));
        assert_eq!(sum.value_at(1), Value::Null);
        let prod = multiply(&a, &b).unwrap();
        assert_eq!(prod.value_at(2), Value::F64(90.0));
        // Mixed int/float coerces.
        let ints = Array::from_i64(vec![1, 2, 3]);
        let mixed = add(&a, &ints).unwrap();
        assert_eq!(mixed.value_at(2), Value::F64(6.0));
    }

    #[test]
    fn arithmetic_shape_and_type_errors() {
        let a = Array::from_f64(vec![1.0]);
        let b = Array::from_f64(vec![1.0, 2.0]);
        assert!(add(&a, &b).is_err());
        let s = Array::from_utf8(&["x"]);
        assert!(add(&a, &s).is_err());
    }

    #[test]
    fn float_min_max() {
        let col = Array::from_opt_f64(vec![Some(2.5), None, Some(-1.0)]);
        assert_eq!(min_f64(&col).unwrap(), Some(-1.0));
        assert_eq!(max_f64(&col).unwrap(), Some(2.5));
        let empty = Array::from_f64(vec![]);
        assert_eq!(min_f64(&empty).unwrap(), None);
    }

    #[test]
    fn sort_float_with_nan_is_total_and_deterministic() {
        // Regression: `partial_cmp(..).unwrap_or(Equal)` is not a total
        // order with NaN present — `sort_by` may panic or place NaN
        // arbitrarily. `total_cmp` sorts NaN after +inf, before nothing.
        let col = Array::from_opt_f64(vec![
            Some(f64::NAN),
            Some(1.0),
            None,
            Some(f64::INFINITY),
            Some(-1.0),
            Some(f64::NAN),
            Some(f64::NEG_INFINITY),
        ]);
        let asc = sort_to_indices(&col, SortOrder::Ascending);
        let order: Vec<i64> = (0..7)
            .map(|i| match asc.value_at(i) {
                Value::I64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        // null, -inf, -1, 1, +inf, NaN, NaN (stable: row 0 before row 5).
        assert_eq!(order, vec![2, 6, 4, 1, 3, 0, 5]);
        // Descending is the exact reverse ordering rule, still total.
        let desc = sort_to_indices(&col, SortOrder::Descending);
        assert_eq!(desc.value_at(0), Value::I64(0)); // first NaN (stable)
        assert_eq!(desc.value_at(6), Value::I64(2)); // null last
                                                     // Deterministic across invocations.
        assert_eq!(asc, sort_to_indices(&col, SortOrder::Ascending));
    }

    #[test]
    fn i64_f64_key_eq_is_exact_at_the_2_53_boundary() {
        let b = 1i64 << 53;
        // Exactly representable values match their float twins...
        assert!(i64_f64_key_eq(b, b as f64));
        assert!(i64_f64_key_eq(0, 0.0));
        assert!(i64_f64_key_eq(-7, -7.0));
        // ...but 2^53 + 1 rounds to 2^53 as f64 and must NOT match.
        assert!(!i64_f64_key_eq(b + 1, (b + 1) as f64));
        assert!(!i64_f64_key_eq(b + 1, b as f64));
        // Saturation edge: 2^63 as f64 is one past i64::MAX.
        assert!(!i64_f64_key_eq(i64::MAX, i64::MAX as f64));
        assert!(i64_f64_key_eq(i64::MIN, i64::MIN as f64));
        // Non-integers, NaN, infinities, and -0.0 (bit-level, consistent
        // with the coerced hash) never match.
        assert!(!i64_f64_key_eq(1, 1.5));
        assert!(!i64_f64_key_eq(0, f64::NAN));
        assert!(!i64_f64_key_eq(i64::MAX, f64::INFINITY));
        assert!(!i64_f64_key_eq(0, -0.0));
    }

    fn dict_pair(vals: &[Option<&'static str>]) -> (Array, Array) {
        (
            Array::from_opt_utf8(vals.to_vec()),
            Array::from_opt_dict_utf8(vals.to_vec()),
        )
    }

    #[test]
    fn dict_cmp_scalar_matches_plain() {
        let vals = [
            Some("b"),
            Some("a"),
            None,
            Some(""),
            Some("b"),
            Some("naïve"),
        ];
        let (plain, dict) = dict_pair(&vals);
        for needle in ["", "a", "b", "zz", "naïve"] {
            for op in [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ] {
                let want = cmp_scalar(&plain, op, &Value::Str(needle.into())).unwrap();
                let got = cmp_scalar(&dict, op, &Value::Str(needle.into())).unwrap();
                assert_eq!(got, want, "{op:?} {needle:?}");
            }
        }
        // All-null dict column (empty dictionary) must not panic.
        let all_null = Array::from_opt_dict_utf8(vec![None, None]);
        let m = cmp_scalar(&all_null, CmpOp::Lt, &Value::Str("x".into())).unwrap();
        assert_eq!(m.value_at(0), Value::Null);
    }

    #[test]
    fn dict_hashes_match_plain_bit_for_bit() {
        let vals = [Some("a"), None, Some(""), Some("xyz"), Some("a")];
        let (plain, dict) = dict_pair(&vals);
        for coerce in [false, true] {
            assert_eq!(
                hash_key_column(&dict, coerce),
                hash_key_column(&plain, coerce)
            );
            for row in 0..vals.len() {
                assert_eq!(
                    hash_key_at(&dict, coerce, row),
                    hash_key_at(&plain, coerce, row)
                );
            }
        }
        // Multi-column row hashes chain identically.
        let schema_p = Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("s", DataType::Utf8, true),
        ]);
        let schema_d = Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("s", DataType::DictUtf8, true),
        ]);
        let ints = Array::from_i64(vec![1, 2, 3, 4, 5]);
        let bp = RecordBatch::try_new(schema_p, vec![ints.clone(), plain]).unwrap();
        let bd = RecordBatch::try_new(schema_d, vec![ints, dict]).unwrap();
        assert_eq!(hash_rows(&bp, &[0, 1]), hash_rows(&bd, &[0, 1]));
        assert_eq!(hash_rows(&bp, &[1]), hash_rows(&bd, &[1]));
    }

    #[test]
    fn sorted_run_merge_reproduces_full_stable_sort() {
        // Split rows into uneven runs, sort each range, merge pairwise in
        // arbitrary order: the result must equal the one-shot stable sort
        // for every type, with nulls, NaN, and duplicate keys present.
        let cols = vec![
            Array::from_opt_i64((0..97).map(|i| (i % 7 != 0).then_some(i % 5)).collect()),
            Array::from_opt_f64(
                (0..97)
                    .map(|i| match i % 9 {
                        0 => None,
                        1 => Some(f64::NAN),
                        2 => Some(-0.0),
                        _ => Some(((i * 13) % 11) as f64 - 5.0),
                    })
                    .collect(),
            ),
            Array::from_opt_bool(
                (0..97)
                    .map(|i| (i % 4 != 0).then_some(i % 3 == 0))
                    .collect(),
            ),
            Array::from_opt_utf8(
                (0..97)
                    .map(|i| [None, Some("a"), Some(""), Some("bb"), Some("a")][i % 5])
                    .collect::<Vec<_>>(),
            ),
            Array::from_opt_dict_utf8(
                (0..97)
                    .map(|i| [Some("x"), None, Some("m"), Some("x"), Some("")][i % 5])
                    .collect::<Vec<_>>(),
            ),
        ];
        for col in &cols {
            for order in [SortOrder::Ascending, SortOrder::Descending] {
                let keys = SortKeys::new(col);
                let bounds = [0u32, 10, 11, 40, 96, 97];
                let mut runs: Vec<Vec<u32>> = bounds
                    .windows(2)
                    .map(|w| keys.sort_range(order, w[0], w[1]))
                    .collect();
                // Merge in a non-left-to-right order to show the merge
                // tree shape doesn't matter.
                while runs.len() > 1 {
                    let b = runs.pop().unwrap();
                    let a = runs.remove(0);
                    runs.push(keys.merge(order, &a, &b));
                }
                let merged: Vec<i64> = runs.pop().unwrap().into_iter().map(i64::from).collect();
                assert_eq!(
                    Array::from_i64(merged),
                    sort_to_indices(col, order),
                    "{:?} {order:?}",
                    col.data_type()
                );
            }
        }
    }

    #[test]
    fn mask_to_indices_word_scan_matches_naive() {
        // Cross word boundaries, with and without validity, and with an
        // `all_set` values bitmap whose padding bits are set.
        for n in [0usize, 1, 63, 64, 65, 127, 130, 517] {
            let bools: Vec<bool> = (0..n).map(|i| (i * 11 + 3) % 7 < 3).collect();
            let plain = mask_from_bools(&bools);
            let want: Vec<usize> = (0..n).filter(|&i| bools[i]).collect();
            assert_eq!(mask_to_indices(&plain).unwrap(), want, "plain n={n}");

            let opts: Vec<Option<bool>> = (0..n)
                .map(|i| match (i * 5 + 1) % 4 {
                    0 => None,
                    k => Some(k % 2 == 0 && bools[i]),
                })
                .collect();
            let masked = Array::from_opt_bool(opts.clone());
            let want: Vec<usize> = (0..n).filter(|&i| opts[i] == Some(true)).collect();
            assert_eq!(mask_to_indices(&masked).unwrap(), want, "valid n={n}");

            let all = Array::Bool(crate::array::BoolArray::from_parts(
                Bitmap::all_set(n),
                None,
            ));
            assert_eq!(
                mask_to_indices(&all).unwrap(),
                (0..n).collect::<Vec<_>>(),
                "all_set n={n}"
            );
        }
    }

    #[test]
    fn dict_sort_matches_plain() {
        let vals = [
            Some("pear"),
            None,
            Some("apple"),
            Some("fig"),
            Some("apple"),
            Some(""),
        ];
        let (plain, dict) = dict_pair(&vals);
        for order in [SortOrder::Ascending, SortOrder::Descending] {
            assert_eq!(
                sort_to_indices(&dict, order),
                sort_to_indices(&plain, order),
                "{order:?}"
            );
        }
    }
}

//! Row-at-a-time marshalling: the *costly* baseline.
//!
//! This is the conventional way systems without a shared format exchange
//! data between heterogeneous runtimes: walk every row, tag every value,
//! copy every string, and re-parse on the other side. The Skadi paper
//! (§1, data-plane benefit 2) argues that a shared columnar format
//! eliminates this per-value work; experiment E9 measures the difference
//! against [`crate::ipc`].
//!
//! Layout per row, per column: `tag u8` (0 = null, else type tag + 1)
//! followed by the value (`i64`/`f64` as 8 LE bytes, bool as 1 byte,
//! strings as `u32 len | bytes`).

use crate::array::{Array, Value};
use crate::batch::RecordBatch;
use crate::datatype::DataType;
use crate::error::ArrowError;
use crate::schema::{Field, Schema};

/// Serializes a batch row-by-row with per-value tags and string copies.
pub fn to_rows(batch: &RecordBatch) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(batch.num_columns() as u16).to_le_bytes());
    out.extend_from_slice(&(batch.num_rows() as u64).to_le_bytes());
    for field in batch.schema().fields() {
        let name = field.name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.push(field.data_type.tag());
        out.push(field.nullable as u8);
    }
    for r in 0..batch.num_rows() {
        for c in 0..batch.num_columns() {
            match batch.column(c).value_at(r) {
                Value::Null => out.push(0),
                Value::I64(v) => {
                    out.push(DataType::Int64.tag() + 1);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Value::F64(v) => {
                    out.push(DataType::Float64.tag() + 1);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Value::Bool(v) => {
                    out.push(DataType::Bool.tag() + 1);
                    out.push(v as u8);
                }
                Value::Str(s) => {
                    out.push(DataType::Utf8.tag() + 1);
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
    }
    out
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArrowError> {
        if self.pos + n > self.data.len() {
            return Err(ArrowError::Corrupt("truncated row encoding".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ArrowError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ArrowError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ArrowError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ArrowError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// Deserializes a row encoding back into a columnar batch. Every value is
/// re-parsed and strings are copied — deliberately, that is the cost this
/// baseline exists to demonstrate.
pub fn from_rows(data: &[u8]) -> Result<RecordBatch, ArrowError> {
    let mut rd = Reader { data, pos: 0 };
    let ncols = rd.u16()? as usize;
    let nrows = rd.u64()? as usize;
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name_len = rd.u16()? as usize;
        let name = std::str::from_utf8(rd.take(name_len)?)
            .map_err(|_| ArrowError::Corrupt("field name is not UTF-8".into()))?
            .to_string();
        let tag = rd.u8()?;
        let dt = DataType::from_tag(tag)
            .ok_or_else(|| ArrowError::Corrupt(format!("unknown type tag {tag}")))?;
        let nullable = rd.u8()? != 0;
        fields.push(Field::new(name, dt, nullable));
    }
    let schema = Schema::new(fields);

    let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(nrows); ncols];
    for _ in 0..nrows {
        for col in cols.iter_mut() {
            let tag = rd.u8()?;
            let v = if tag == 0 {
                Value::Null
            } else {
                match DataType::from_tag(tag - 1) {
                    Some(DataType::Int64) => {
                        Value::I64(i64::from_le_bytes(rd.take(8)?.try_into().expect("8")))
                    }
                    Some(DataType::Float64) => {
                        Value::F64(f64::from_le_bytes(rd.take(8)?.try_into().expect("8")))
                    }
                    Some(DataType::Bool) => Value::Bool(rd.u8()? != 0),
                    Some(DataType::Utf8) => {
                        let len = rd.u32()? as usize;
                        let s = std::str::from_utf8(rd.take(len)?)
                            .map_err(|_| ArrowError::Corrupt("string is not UTF-8".into()))?;
                        Value::Str(s.to_string())
                    }
                    // Dict columns marshal their values with the plain
                    // Utf8 tag, so a DictUtf8 *value* tag never appears.
                    Some(DataType::DictUtf8) | None => {
                        return Err(ArrowError::Corrupt(format!("unknown value tag {tag}")))
                    }
                }
            };
            col.push(v);
        }
    }

    let mut arrays = Vec::with_capacity(ncols);
    for (i, values) in cols.into_iter().enumerate() {
        arrays.push(Array::from_values(schema.field(i).data_type, &values)?);
    }
    RecordBatch::try_new(schema, arrays)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("score", DataType::Float64, true),
            Field::new("ok", DataType::Bool, true),
            Field::new("name", DataType::Utf8, true),
        ]);
        RecordBatch::try_new(
            schema,
            vec![
                Array::from_i64(vec![10, 20]),
                Array::from_opt_f64(vec![None, Some(2.5)]),
                Array::from_opt_bool(vec![Some(false), None]),
                Array::from_opt_utf8(vec![Some("x"), Some("yz")]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let b = sample();
        assert_eq!(from_rows(&to_rows(&b)).unwrap(), b);
    }

    #[test]
    fn truncation_detected() {
        let raw = to_rows(&sample());
        assert!(from_rows(&raw[..raw.len() - 3]).is_err());
    }

    #[test]
    fn garbage_tag_detected() {
        let mut raw = to_rows(&sample());
        let n = raw.len();
        raw[n - 4] = 200; // Clobber a value tag near the end.
        assert!(from_rows(&raw).is_err());
    }

    #[test]
    fn marshalled_form_is_larger_than_ipc_for_strings() {
        // Per-row tags and lengths cost more than columnar buffers.
        let strings: Vec<String> = (0..1000).map(|i| format!("row-{i}")).collect();
        let schema = Schema::new(vec![Field::new("s", DataType::Utf8, false)]);
        let b = RecordBatch::try_new(schema, vec![Array::from_utf8(&strings)]).unwrap();
        let rows = to_rows(&b).len();
        let ipc = crate::ipc::encode(&b).len();
        assert!(rows as f64 > ipc as f64 * 0.9, "rows={rows} ipc={ipc}");
    }
}

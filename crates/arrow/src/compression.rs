//! LZ4-style byte-oriented block compression.
//!
//! The shuffle path and the wire server compress IPC frames with this
//! codec: `measured_output_bytes` — and therefore every storage/network
//! price the simulator charges — reflect the *compressed* frame length.
//!
//! The format is a self-framing LZ4-flavored block:
//!
//! ```text
//! magic "SKLZ" | raw_len u32 LE | sequences...
//! ```
//!
//! Each sequence is `token | [ext lit len] | literals | offset u16 LE |
//! [ext match len]`: the token's high nibble is the literal run length
//! and its low nibble is the match length minus [`MIN_MATCH`], both
//! extended by `0xFF`-saturated continuation bytes when they hit 15. The
//! final sequence carries literals only. Matches copy byte-at-a-time so
//! overlapping copies (RLE-style `offset < len`) work.
//!
//! [`decompress`] is fully bounds-checked and never panics on junk,
//! truncated, or bit-flipped input — it returns [`ArrowError::Corrupt`].
//! Declared output sizes are validated against both a hard cap and the
//! codec's maximum expansion ratio before any allocation, so hostile
//! headers cannot trigger huge allocations either.

use crate::error::ArrowError;

/// Magic prefix of a compressed block. Distinct from the IPC frame magic
/// (`"SKAR"`), so a receiver can tell compressed and plain frames apart
/// from the first four bytes.
pub const COMPRESSED_MAGIC: [u8; 4] = *b"SKLZ";

/// Shortest back-reference worth encoding.
pub const MIN_MATCH: usize = 4;

/// Hard cap on a declared decompressed size (1 GiB); anything larger is
/// rejected as corrupt before allocating.
pub const MAX_DECOMPRESSED: usize = 1 << 30;

/// Match window: offsets are u16, so references reach back 64 KiB.
const MAX_OFFSET: usize = u16::MAX as usize;

const HASH_BITS: u32 = 14;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// True if `bytes` start with the compressed-block magic.
pub fn is_compressed(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == COMPRESSED_MAGIC
}

fn write_len(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(0xFF);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_nibble = literals.len().min(15) as u8;
    let match_nibble = m.map_or(0, |(_, len)| (len - MIN_MATCH).min(15)) as u8;
    out.push((lit_nibble << 4) | match_nibble);
    if literals.len() >= 15 {
        write_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((offset, len)) = m {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if len - MIN_MATCH >= 15 {
            write_len(out, len - MIN_MATCH - 15);
        }
    }
}

/// Compresses `raw` into a framed block. Incompressible input grows by a
/// small constant plus one byte per 255 input bytes; use
/// [`maybe_compress`] when the caller wants a never-larger guarantee.
///
/// # Panics
///
/// Panics if `raw` exceeds [`MAX_DECOMPRESSED`].
pub fn compress(raw: &[u8]) -> Vec<u8> {
    assert!(raw.len() <= MAX_DECOMPRESSED, "block too large to compress");
    let mut out = Vec::with_capacity(raw.len() / 2 + 16);
    out.extend_from_slice(&COMPRESSED_MAGIC);
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());

    // Greedy LZ4-style matcher: a hash table over 4-byte sequences maps
    // to the most recent position; `0` means empty (positions are
    // stored + 1).
    let mut table = vec![0u32; 1 << HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 0usize;
    // The last MIN_MATCH bytes are always literals (no room to match).
    while i + MIN_MATCH <= raw.len() {
        let h = hash4(&raw[i..]);
        let candidate = table[h] as usize;
        table[h] = (i + 1) as u32;
        let found = candidate > 0 && {
            let c = candidate - 1;
            i - c <= MAX_OFFSET && raw[c..c + MIN_MATCH] == raw[i..i + MIN_MATCH]
        };
        if !found {
            i += 1;
            continue;
        }
        let c = candidate - 1;
        let mut len = MIN_MATCH;
        while i + len < raw.len() && raw[c + len] == raw[i + len] {
            len += 1;
        }
        emit_sequence(&mut out, &raw[lit_start..i], Some((i - c, len)));
        // Seed the table inside the match so runs keep chaining.
        let mut j = i + 1;
        while j + MIN_MATCH <= raw.len() && j < i + len {
            table[hash4(&raw[j..])] = (j + 1) as u32;
            j += 1;
        }
        i += len;
        lit_start = i;
    }
    if lit_start < raw.len() || raw.is_empty() {
        emit_sequence(&mut out, &raw[lit_start..], None);
    } else {
        // Format requires a terminating literals-only sequence.
        emit_sequence(&mut out, &[], None);
    }
    out
}

/// Compresses `frame` if that makes it smaller; otherwise returns the
/// original bytes. The receiver tells the cases apart by magic (the
/// plain payloads this is used on — IPC frames, wire packets — never
/// start with [`COMPRESSED_MAGIC`]).
pub fn maybe_compress(frame: &[u8]) -> Vec<u8> {
    let compressed = compress(frame);
    if compressed.len() < frame.len() {
        compressed
    } else {
        frame.to_vec()
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, ArrowError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| ArrowError::Corrupt("compressed block truncated".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArrowError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| ArrowError::Corrupt("compressed block truncated".into()))?;
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn ext_len(&mut self, base: usize) -> Result<usize, ArrowError> {
        let mut len = base;
        if base == 15 {
            loop {
                let b = self.u8()?;
                len = len
                    .checked_add(b as usize)
                    .ok_or_else(|| ArrowError::Corrupt("length overflow".into()))?;
                if b != 0xFF {
                    break;
                }
            }
        }
        Ok(len)
    }

    fn done(&self) -> bool {
        self.pos >= self.data.len()
    }
}

/// Decompresses a block produced by [`compress`]. Every read and copy is
/// bounds-checked; junk, truncated, or bit-flipped input yields
/// [`ArrowError::Corrupt`], never a panic.
pub fn decompress(frame: &[u8]) -> Result<Vec<u8>, ArrowError> {
    if !is_compressed(frame) {
        return Err(ArrowError::Corrupt("missing compression magic".into()));
    }
    let mut r = Reader {
        data: frame,
        pos: 4,
    };
    let raw_len = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes")) as usize;
    if raw_len > MAX_DECOMPRESSED {
        return Err(ArrowError::Corrupt(format!(
            "declared size {raw_len} exceeds cap {MAX_DECOMPRESSED}"
        )));
    }
    // A sequence byte can produce at most 255 output bytes, so a valid
    // header can never declare more than that ratio — reject hostile
    // headers before allocating.
    let body = frame.len() - r.pos;
    if raw_len > body.saturating_mul(255).saturating_add(15) {
        return Err(ArrowError::Corrupt(
            "declared size impossible for body length".into(),
        ));
    }
    let mut out: Vec<u8> = Vec::with_capacity(raw_len);
    loop {
        let token = r.u8()?;
        let lit_len = r.ext_len((token >> 4) as usize)?;
        let literals = r.take(lit_len)?;
        if out.len() + lit_len > raw_len {
            return Err(ArrowError::Corrupt("literal run overflows block".into()));
        }
        out.extend_from_slice(literals);
        if r.done() {
            // Final sequence: literals only.
            if (token & 0x0F) != 0 {
                return Err(ArrowError::Corrupt("dangling match token".into()));
            }
            break;
        }
        let offset = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes")) as usize;
        if offset == 0 || offset > out.len() {
            return Err(ArrowError::Corrupt(format!(
                "match offset {offset} outside {} decoded bytes",
                out.len()
            )));
        }
        let match_len = r.ext_len((token & 0x0F) as usize)? + MIN_MATCH;
        if out.len() + match_len > raw_len {
            return Err(ArrowError::Corrupt("match run overflows block".into()));
        }
        // Byte-at-a-time so overlapping (offset < match_len) copies work.
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != raw_len {
        return Err(ArrowError::Corrupt(format!(
            "decoded {} bytes, header declared {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(raw: &[u8]) {
        let c = compress(raw);
        assert!(is_compressed(&c));
        assert_eq!(decompress(&c).unwrap(), raw, "{} bytes", raw.len());
    }

    #[test]
    fn round_trips_representative_blocks() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(&[0u8; 10_000]); // RLE-style overlap copies
        round_trip("hello hello hello hello!".as_bytes());
        round_trip(&(0..255u8).cycle().take(4096).collect::<Vec<_>>());
        // Long literal and match runs exercise extended lengths.
        let mut mixed: Vec<u8> = (0..100u32).flat_map(|x| x.to_le_bytes()).collect();
        mixed.extend(std::iter::repeat_n(7u8, 1000));
        mixed.extend((0..50u8).map(|x| x.wrapping_mul(17)));
        round_trip(&mixed);
    }

    #[test]
    fn repetitive_input_shrinks() {
        let raw: Vec<u8> = std::iter::repeat_n(b"abcdefgh".as_slice(), 512)
            .flatten()
            .copied()
            .collect();
        let c = compress(&raw);
        assert!(c.len() * 4 < raw.len(), "{} !< {} / 4", c.len(), raw.len());
    }

    #[test]
    fn maybe_compress_never_grows() {
        // Random-ish incompressible bytes fall back to the original.
        let raw: Vec<u8> = (0u32..200)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        let kept = maybe_compress(&raw);
        assert!(kept.len() <= raw.len());
        if !is_compressed(&kept) {
            assert_eq!(kept, raw);
        }
        // Compressible bytes do compress.
        let zeros = vec![0u8; 4096];
        let c = maybe_compress(&zeros);
        assert!(is_compressed(&c) && c.len() < zeros.len());
        assert_eq!(decompress(&c).unwrap(), zeros);
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(decompress(b"").is_err());
        assert!(decompress(b"SKL").is_err());
        assert!(decompress(b"XXXX\x00\x00\x00\x00").is_err());
        // Declared size beyond the cap.
        let mut huge = COMPRESSED_MAGIC.to_vec();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(decompress(&huge).is_err());
        // Declared size impossible for the body length.
        let mut lying = COMPRESSED_MAGIC.to_vec();
        lying.extend_from_slice(&1_000_000u32.to_le_bytes());
        lying.push(0x00);
        assert!(decompress(&lying).is_err());
    }

    #[test]
    fn truncations_and_bit_flips_never_panic() {
        let raw: Vec<u8> = std::iter::repeat_n(b"skadi shuffle frame ".as_slice(), 64)
            .flatten()
            .copied()
            .collect();
        let c = compress(&raw);
        for cut in 0..c.len() {
            let _ = decompress(&c[..cut]); // must not panic
        }
        for i in 0..c.len() {
            for bit in 0..8 {
                let mut m = c.clone();
                m[i] ^= 1 << bit;
                if let Ok(out) = decompress(&m) {
                    // A surviving decode must still honor the header.
                    assert!(out.len() <= MAX_DECOMPRESSED);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_round_trip(raw in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let c = compress(&raw);
            prop_assert_eq!(decompress(&c).unwrap(), raw);
        }

        #[test]
        fn prop_junk_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decompress(&junk);
            let mut framed = COMPRESSED_MAGIC.to_vec();
            framed.extend_from_slice(&junk);
            let _ = decompress(&framed);
        }

        #[test]
        fn prop_repetition_round_trips_through_overlap(
            unit in proptest::collection::vec(any::<u8>(), 1..16),
            reps in 1usize..200,
        ) {
            let raw: Vec<u8> = std::iter::repeat_n(unit.as_slice(), reps).flatten().copied().collect();
            let c = compress(&raw);
            prop_assert_eq!(decompress(&c).unwrap(), raw);
        }
    }
}

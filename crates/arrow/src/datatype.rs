//! Logical data types.

use std::fmt;

/// The logical type of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float.
    Float64,
    /// Boolean, bit-packed.
    Bool,
    /// UTF-8 string with 32-bit offsets.
    Utf8,
    /// Dictionary-encoded (LowCardinality) UTF-8: u32 keys into a
    /// deduplicated [`DataType::Utf8`] dictionary. Logically identical
    /// to `Utf8`; the encoding only changes how kernels and wire
    /// frames move the bytes.
    DictUtf8,
}

impl DataType {
    /// Fixed width in bytes of one value, or `None` for variable-width
    /// types.
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            DataType::Int64 | DataType::Float64 => Some(8),
            DataType::Bool => None, // Bit-packed, not byte-addressable.
            DataType::Utf8 => None,
            DataType::DictUtf8 => None,
        }
    }

    /// Stable numeric tag used by the wire formats.
    pub fn tag(self) -> u8 {
        match self {
            DataType::Int64 => 0,
            DataType::Float64 => 1,
            DataType::Bool => 2,
            DataType::Utf8 => 3,
            DataType::DictUtf8 => 4,
        }
    }

    /// Inverse of [`DataType::tag`].
    pub fn from_tag(tag: u8) -> Option<DataType> {
        match tag {
            0 => Some(DataType::Int64),
            1 => Some(DataType::Float64),
            2 => Some(DataType::Bool),
            3 => Some(DataType::Utf8),
            4 => Some(DataType::DictUtf8),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "int64",
            DataType::Float64 => "float64",
            DataType::Bool => "bool",
            DataType::Utf8 => "utf8",
            DataType::DictUtf8 => "dict<utf8>",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for dt in [
            DataType::Int64,
            DataType::Float64,
            DataType::Bool,
            DataType::Utf8,
            DataType::DictUtf8,
        ] {
            assert_eq!(DataType::from_tag(dt.tag()), Some(dt));
        }
        assert_eq!(DataType::from_tag(200), None);
    }

    #[test]
    fn widths() {
        assert_eq!(DataType::Int64.fixed_width(), Some(8));
        assert_eq!(DataType::Utf8.fixed_width(), None);
        assert_eq!(DataType::Bool.fixed_width(), None);
    }
}

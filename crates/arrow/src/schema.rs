//! Record schemas.

use std::fmt;
use std::sync::Arc;

use crate::datatype::DataType;
use crate::error::ArrowError;

/// One named, typed column in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Whether values may be null.
    pub nullable: bool,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType, nullable: bool) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}{}",
            self.name,
            self.data_type,
            if self.nullable { "?" } else { "" }
        )
    }
}

/// An ordered set of fields. Shared via [`SchemaRef`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    fields: Vec<Field>,
}

/// A reference-counted schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Creates a schema.
    pub fn new(fields: Vec<Field>) -> SchemaRef {
        Arc::new(Schema { fields })
    }

    /// Creates an empty schema.
    pub fn empty() -> SchemaRef {
        Schema::new(Vec::new())
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if there are no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Finds a column index by name.
    pub fn index_of(&self, name: &str) -> Result<usize, ArrowError> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| ArrowError::ShapeMismatch(format!("no column named {name:?}")))
    }

    /// Builds a new schema with a subset of columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<SchemaRef, ArrowError> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            fields.push(self.fields[self.index_of(n)?].clone());
        }
        Ok(Schema::new(fields))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fld}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SchemaRef {
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("score", DataType::Float64, true),
            Field::new("name", DataType::Utf8, true),
        ])
    }

    #[test]
    fn index_of_finds_columns() {
        let s = sample();
        assert_eq!(s.index_of("score").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn project_reorders() {
        let s = sample();
        let p = s.project(&["name", "id"]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.field(0).name, "name");
        assert_eq!(p.field(1).data_type, DataType::Int64);
    }

    #[test]
    fn project_unknown_errors() {
        assert!(sample().project(&["nope"]).is_err());
    }

    #[test]
    fn display_format() {
        let s = sample();
        let d = s.to_string();
        assert!(d.contains("id: int64"), "{d}");
        assert!(d.contains("score: float64?"), "{d}");
    }
}

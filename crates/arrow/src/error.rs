//! Error type for the columnar format.

use std::fmt;

use crate::datatype::DataType;

/// Errors produced by array construction, kernels, and (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrowError {
    /// Column count or column lengths disagree with the schema.
    ShapeMismatch(String),
    /// A kernel was asked to operate on an incompatible type.
    TypeMismatch {
        /// Type the operation expected.
        expected: DataType,
        /// Type it actually received.
        actual: DataType,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Length of the array.
        len: usize,
    },
    /// Wire bytes could not be decoded.
    Corrupt(String),
}

impl fmt::Display for ArrowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrowError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            ArrowError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            ArrowError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            ArrowError::Corrupt(msg) => write!(f, "corrupt encoding: {msg}"),
        }
    }
}

impl std::error::Error for ArrowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ArrowError::TypeMismatch {
            expected: DataType::Int64,
            actual: DataType::Utf8,
        };
        assert!(e.to_string().contains("expected int64"));
        let e = ArrowError::IndexOutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains("index 9"));
    }
}

//! # skadi-ownership — ownership table and future resolution
//!
//! Ray resolves futures through an *ownership* protocol: the worker that
//! creates a future owns its metadata, and consumers ask the owner where
//! the value lives. Skadi (§2.3.2, Figure 3) makes two changes that this
//! crate implements:
//!
//! 1. **Heterogeneity-aware ownership table.** Each entry carries, besides
//!    the classic `[ID, Owner, Value, Locations]` columns, a `DeviceID`
//!    and a `DeviceHandle` for the device communication driver, so
//!    objects resident in accelerator HBM or disaggregated memory can be
//!    referenced with regular opaque pointers ([`table`]).
//! 2. **Push-based future resolution.** Ray's pull model makes the
//!    consumer fetch data on demand, which "creates long stalls for
//!    short-lived ops"; Skadi adds a push model where the producer sends
//!    data to the consumer proactively ([`resolve`]).
//!
//! [`refcount`] implements the distributed reference counting that decides
//! when an object can be freed.

pub mod refcount;
pub mod resolve;
pub mod table;

pub use refcount::RefLedger;
pub use resolve::{resolve_pull, resolve_push, ResolutionMode, ResolveOutcome, RoutePolicy};
pub use table::{DeviceHandle, DeviceSlot, OwnershipError, OwnershipTable, ValueState};

//! The heterogeneity-aware ownership table.
//!
//! Figure 3 of the paper shows the extension: the classic Ray columns
//! `[*ID, *Owner, *Value, ...]` plus `[Locations, DeviceID, DeviceHandle]`.
//! The device columns let a raylet on a DPU (Gen-1) or inside a device
//! (Gen-2) manage memory on its companion accelerator through the device
//! driver, while the rest of the system keeps using opaque object IDs.

use std::collections::HashMap;
use std::fmt;

use skadi_dcsim::topology::NodeId;
use skadi_store::object::ObjectId;

/// An opaque handle to a device communication driver (what the modified
/// raylet uses to reach HBM behind a DPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceHandle(pub u32);

/// The device residency of an object: which device, through which driver
/// handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSlot {
    /// The accelerator/memory device holding the bytes.
    pub device: NodeId,
    /// Driver handle used to address them.
    pub handle: DeviceHandle,
}

/// Lifecycle of a future's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueState {
    /// The producing task has not finished.
    Pending,
    /// The value exists; `size` bytes.
    Ready {
        /// Payload size in bytes.
        size: u64,
    },
    /// The producing task failed; lineage may re-create it.
    Failed,
}

/// Errors from the ownership table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwnershipError {
    /// No entry for the object.
    UnknownObject(ObjectId),
    /// The object was registered twice.
    AlreadyOwned(ObjectId),
    /// A reference count went negative.
    RefUnderflow(ObjectId),
}

impl fmt::Display for OwnershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OwnershipError::UnknownObject(id) => write!(f, "unknown object {id}"),
            OwnershipError::AlreadyOwned(id) => write!(f, "object {id} already registered"),
            OwnershipError::RefUnderflow(id) => write!(f, "refcount underflow on {id}"),
        }
    }
}

impl std::error::Error for OwnershipError {}

/// One row of the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The object this row describes.
    pub id: ObjectId,
    /// The node whose worker created the future (the owner).
    pub owner: NodeId,
    /// Value lifecycle state.
    pub value: ValueState,
    /// Nodes holding copies.
    pub locations: Vec<NodeId>,
    /// Device residency, when the primary copy lives in device memory.
    pub device: Option<DeviceSlot>,
    /// Outstanding references.
    pub refcount: u64,
}

/// The ownership table. In the real system each worker owns a shard of
/// this table; the simulation keeps one logical table and charges the
/// message costs separately (see [`crate::resolve`]).
#[derive(Debug, Clone, Default)]
pub struct OwnershipTable {
    entries: HashMap<ObjectId, Entry>,
}

impl OwnershipTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        OwnershipTable::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a new future owned by `owner`, with one initial
    /// reference.
    pub fn register(&mut self, id: ObjectId, owner: NodeId) -> Result<(), OwnershipError> {
        if self.entries.contains_key(&id) {
            return Err(OwnershipError::AlreadyOwned(id));
        }
        self.entries.insert(
            id,
            Entry {
                id,
                owner,
                value: ValueState::Pending,
                locations: Vec::new(),
                device: None,
                refcount: 1,
            },
        );
        Ok(())
    }

    /// Looks up an entry.
    pub fn get(&self, id: ObjectId) -> Result<&Entry, OwnershipError> {
        self.entries
            .get(&id)
            .ok_or(OwnershipError::UnknownObject(id))
    }

    /// The owner of an object.
    pub fn owner_of(&self, id: ObjectId) -> Result<NodeId, OwnershipError> {
        Ok(self.get(id)?.owner)
    }

    /// Marks the value ready at `location`, optionally recording device
    /// residency.
    pub fn mark_ready(
        &mut self,
        id: ObjectId,
        size: u64,
        location: NodeId,
        device: Option<DeviceSlot>,
    ) -> Result<(), OwnershipError> {
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(OwnershipError::UnknownObject(id))?;
        e.value = ValueState::Ready { size };
        if !e.locations.contains(&location) {
            e.locations.push(location);
        }
        e.device = device;
        Ok(())
    }

    /// Marks the value failed (producer crashed).
    pub fn mark_failed(&mut self, id: ObjectId) -> Result<(), OwnershipError> {
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(OwnershipError::UnknownObject(id))?;
        e.value = ValueState::Failed;
        e.locations.clear();
        e.device = None;
        Ok(())
    }

    /// Adds a copy location.
    pub fn add_location(&mut self, id: ObjectId, node: NodeId) -> Result<(), OwnershipError> {
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(OwnershipError::UnknownObject(id))?;
        if !e.locations.contains(&node) {
            e.locations.push(node);
        }
        Ok(())
    }

    /// Drops a copy location (e.g. after eviction or node failure).
    pub fn remove_location(&mut self, id: ObjectId, node: NodeId) -> Result<(), OwnershipError> {
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(OwnershipError::UnknownObject(id))?;
        e.locations.retain(|n| *n != node);
        if e.locations.is_empty() {
            if let ValueState::Ready { .. } = e.value {
                // All copies gone: from the table's perspective the value
                // must be re-created (lineage) or fetched from durable.
                e.value = ValueState::Failed;
            }
        }
        Ok(())
    }

    /// Increments the reference count.
    pub fn incref(&mut self, id: ObjectId) -> Result<u64, OwnershipError> {
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(OwnershipError::UnknownObject(id))?;
        e.refcount += 1;
        Ok(e.refcount)
    }

    /// Decrements the reference count. When it reaches zero the entry is
    /// removed and `true` is returned — the caller should free the bytes.
    pub fn decref(&mut self, id: ObjectId) -> Result<bool, OwnershipError> {
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(OwnershipError::UnknownObject(id))?;
        if e.refcount == 0 {
            return Err(OwnershipError::RefUnderflow(id));
        }
        e.refcount -= 1;
        if e.refcount == 0 {
            self.entries.remove(&id);
            return Ok(true);
        }
        Ok(false)
    }

    /// Drops an entry outright, returning it if it existed. Used when a
    /// task is reset for re-execution: its old output registration is
    /// stale and the re-run will register the object afresh.
    pub fn remove(&mut self, id: ObjectId) -> Option<Entry> {
        self.entries.remove(&id)
    }

    /// All objects owned by workers on `node` (used when a node fails:
    /// these futures lose their owner and must be re-driven by lineage).
    pub fn owned_by(&self, node: NodeId) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self
            .entries
            .values()
            .filter(|e| e.owner == node)
            .map(|e| e.id)
            .collect();
        v.sort();
        v
    }

    /// Number of rows listing `node` as a holder of the value — the rows
    /// that node re-reports when a newly elected scheduler reconstructs
    /// the table, so failover reconstruction can be priced by actual
    /// per-node state size instead of a flat per-peer round trip.
    pub fn rows_located_on(&self, node: NodeId) -> usize {
        self.entries
            .values()
            .filter(|e| e.locations.contains(&node))
            .count()
    }

    /// Re-registers every row owned by `from` under `to`, returning the
    /// affected objects (sorted). Used at control-plane failover: the
    /// rows the dead scheduler hosted are reconstructed on the newly
    /// elected node from what the surviving raylets report.
    pub fn rehome_owner(&mut self, from: NodeId, to: NodeId) -> Vec<ObjectId> {
        let mut moved = Vec::new();
        for e in self.entries.values_mut() {
            if e.owner == from {
                e.owner = to;
                moved.push(e.id);
            }
        }
        moved.sort();
        moved
    }

    /// Handles a node failure: removes the node from all location lists
    /// and returns `(objects_now_unavailable, objects_whose_owner_died)`.
    pub fn fail_node(&mut self, node: NodeId) -> (Vec<ObjectId>, Vec<ObjectId>) {
        let ids: Vec<ObjectId> = self.entries.keys().copied().collect();
        let mut unavailable = Vec::new();
        for id in ids {
            let had = {
                let e = self.entries.get(&id).expect("listed");
                e.locations.contains(&node)
            };
            if had {
                self.remove_location(id, node).expect("exists");
                let e = self.entries.get(&id).expect("exists");
                if e.value == ValueState::Failed {
                    unavailable.push(id);
                }
            }
        }
        unavailable.sort();
        (unavailable, self.owned_by(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);

    #[test]
    fn register_and_ready() {
        let mut t = OwnershipTable::new();
        t.register(ObjectId(1), N0).unwrap();
        assert_eq!(t.get(ObjectId(1)).unwrap().value, ValueState::Pending);
        t.mark_ready(ObjectId(1), 64, N1, None).unwrap();
        let e = t.get(ObjectId(1)).unwrap();
        assert_eq!(e.value, ValueState::Ready { size: 64 });
        assert_eq!(e.locations, vec![N1]);
        assert_eq!(t.owner_of(ObjectId(1)).unwrap(), N0);
    }

    #[test]
    fn double_register_rejected() {
        let mut t = OwnershipTable::new();
        t.register(ObjectId(1), N0).unwrap();
        assert!(matches!(
            t.register(ObjectId(1), N1),
            Err(OwnershipError::AlreadyOwned(_))
        ));
    }

    #[test]
    fn device_slot_recorded() {
        let mut t = OwnershipTable::new();
        t.register(ObjectId(1), N0).unwrap();
        let slot = DeviceSlot {
            device: N2,
            handle: DeviceHandle(7),
        };
        t.mark_ready(ObjectId(1), 10, N2, Some(slot)).unwrap();
        assert_eq!(t.get(ObjectId(1)).unwrap().device, Some(slot));
    }

    #[test]
    fn refcounting_frees_at_zero() {
        let mut t = OwnershipTable::new();
        t.register(ObjectId(1), N0).unwrap();
        assert_eq!(t.incref(ObjectId(1)).unwrap(), 2);
        assert!(!t.decref(ObjectId(1)).unwrap());
        assert!(t.decref(ObjectId(1)).unwrap());
        assert!(t.get(ObjectId(1)).is_err());
    }

    #[test]
    fn losing_last_location_fails_value() {
        let mut t = OwnershipTable::new();
        t.register(ObjectId(1), N0).unwrap();
        t.mark_ready(ObjectId(1), 10, N1, None).unwrap();
        t.add_location(ObjectId(1), N2).unwrap();
        t.remove_location(ObjectId(1), N1).unwrap();
        assert_eq!(
            t.get(ObjectId(1)).unwrap().value,
            ValueState::Ready { size: 10 }
        );
        t.remove_location(ObjectId(1), N2).unwrap();
        assert_eq!(t.get(ObjectId(1)).unwrap().value, ValueState::Failed);
    }

    #[test]
    fn fail_node_reports_losses_and_orphans() {
        let mut t = OwnershipTable::new();
        // obj1: owned by N0, stored only on N1 -> unavailable when N1 dies.
        t.register(ObjectId(1), N0).unwrap();
        t.mark_ready(ObjectId(1), 1, N1, None).unwrap();
        // obj2: owned by N1 -> orphaned when N1 dies.
        t.register(ObjectId(2), N1).unwrap();
        t.mark_ready(ObjectId(2), 1, N2, None).unwrap();
        // obj3: stored on N1 and N2 -> survives.
        t.register(ObjectId(3), N0).unwrap();
        t.mark_ready(ObjectId(3), 1, N1, None).unwrap();
        t.add_location(ObjectId(3), N2).unwrap();
        let (unavailable, orphaned) = t.fail_node(N1);
        assert_eq!(unavailable, vec![ObjectId(1)]);
        assert_eq!(orphaned, vec![ObjectId(2)]);
        assert_eq!(
            t.get(ObjectId(3)).unwrap().value,
            ValueState::Ready { size: 1 }
        );
    }

    #[test]
    fn unknown_object_errors() {
        let mut t = OwnershipTable::new();
        assert!(t.get(ObjectId(9)).is_err());
        assert!(t.incref(ObjectId(9)).is_err());
        assert!(t.mark_ready(ObjectId(9), 1, N0, None).is_err());
    }

    #[test]
    fn rehome_owner_moves_only_the_dead_nodes_rows() {
        let mut t = OwnershipTable::new();
        t.register(ObjectId(1), N0).unwrap();
        t.register(ObjectId(2), N0).unwrap();
        t.register(ObjectId(3), N1).unwrap();
        let moved = t.rehome_owner(N0, N2);
        assert_eq!(moved, vec![ObjectId(1), ObjectId(2)]);
        assert_eq!(t.owner_of(ObjectId(1)).unwrap(), N2);
        assert_eq!(t.owner_of(ObjectId(2)).unwrap(), N2);
        assert_eq!(t.owner_of(ObjectId(3)).unwrap(), N1);
        // Idempotent once rehomed.
        assert!(t.rehome_owner(N0, N2).is_empty());
    }
}

//! Distributed reference counting.
//!
//! The ownership table tracks one aggregate count per object; this ledger
//! tracks *who* holds the references (tasks, actors, other objects), so
//! borrowers that exit can release everything they held — including after
//! a crash, when the runtime releases a dead worker's borrows in bulk.

use std::collections::HashMap;

use skadi_store::object::ObjectId;

use crate::table::OwnershipError;

/// An opaque borrower identity (task, actor, or driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BorrowerId(pub u64);

/// Per-borrower reference ledger.
#[derive(Debug, Clone, Default)]
pub struct RefLedger {
    /// object -> borrower -> count
    refs: HashMap<ObjectId, HashMap<BorrowerId, u64>>,
    /// borrower -> objects it references (reverse index)
    held: HashMap<BorrowerId, Vec<ObjectId>>,
}

impl RefLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        RefLedger::default()
    }

    /// Records that `borrower` took a reference to `id`.
    pub fn borrow(&mut self, id: ObjectId, borrower: BorrowerId) {
        *self
            .refs
            .entry(id)
            .or_default()
            .entry(borrower)
            .or_insert(0) += 1;
        let held = self.held.entry(borrower).or_default();
        if !held.contains(&id) {
            held.push(id);
        }
    }

    /// Releases one reference from `borrower`. Returns `true` if the
    /// object now has zero references overall.
    pub fn release(&mut self, id: ObjectId, borrower: BorrowerId) -> Result<bool, OwnershipError> {
        let per_obj = self
            .refs
            .get_mut(&id)
            .ok_or(OwnershipError::UnknownObject(id))?;
        let count = per_obj
            .get_mut(&borrower)
            .ok_or(OwnershipError::RefUnderflow(id))?;
        if *count == 0 {
            return Err(OwnershipError::RefUnderflow(id));
        }
        *count -= 1;
        if *count == 0 {
            per_obj.remove(&borrower);
            if let Some(held) = self.held.get_mut(&borrower) {
                held.retain(|o| *o != id);
            }
        }
        if per_obj.is_empty() {
            self.refs.remove(&id);
            return Ok(true);
        }
        Ok(false)
    }

    /// Total outstanding references to `id`.
    pub fn count(&self, id: ObjectId) -> u64 {
        self.refs.get(&id).map(|m| m.values().sum()).unwrap_or(0)
    }

    /// True if any borrower still references `id`.
    pub fn is_referenced(&self, id: ObjectId) -> bool {
        self.count(id) > 0
    }

    /// Releases everything `borrower` held (worker exit or crash).
    /// Returns the objects that dropped to zero references.
    pub fn release_all(&mut self, borrower: BorrowerId) -> Vec<ObjectId> {
        let held = self.held.remove(&borrower).unwrap_or_default();
        let mut freed = Vec::new();
        for id in held {
            if let Some(per_obj) = self.refs.get_mut(&id) {
                per_obj.remove(&borrower);
                if per_obj.is_empty() {
                    self.refs.remove(&id);
                    freed.push(id);
                }
            }
        }
        freed.sort();
        freed
    }

    /// Objects currently referenced by `borrower`, sorted.
    pub fn held_by(&self, borrower: BorrowerId) -> Vec<ObjectId> {
        let mut v = self.held.get(&borrower).cloned().unwrap_or_default();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B1: BorrowerId = BorrowerId(1);
    const B2: BorrowerId = BorrowerId(2);

    #[test]
    fn borrow_release_cycle() {
        let mut l = RefLedger::new();
        l.borrow(ObjectId(1), B1);
        l.borrow(ObjectId(1), B2);
        assert_eq!(l.count(ObjectId(1)), 2);
        assert!(!l.release(ObjectId(1), B1).unwrap());
        assert!(l.release(ObjectId(1), B2).unwrap());
        assert!(!l.is_referenced(ObjectId(1)));
    }

    #[test]
    fn multiple_borrows_same_borrower() {
        let mut l = RefLedger::new();
        l.borrow(ObjectId(1), B1);
        l.borrow(ObjectId(1), B1);
        assert_eq!(l.count(ObjectId(1)), 2);
        assert!(!l.release(ObjectId(1), B1).unwrap());
        assert!(l.release(ObjectId(1), B1).unwrap());
    }

    #[test]
    fn underflow_detected() {
        let mut l = RefLedger::new();
        l.borrow(ObjectId(1), B1);
        l.release(ObjectId(1), B1).unwrap();
        assert!(l.release(ObjectId(1), B1).is_err());
        assert!(l.release(ObjectId(2), B1).is_err());
    }

    #[test]
    fn release_all_on_crash() {
        let mut l = RefLedger::new();
        l.borrow(ObjectId(1), B1);
        l.borrow(ObjectId(2), B1);
        l.borrow(ObjectId(2), B2);
        let freed = l.release_all(B1);
        assert_eq!(freed, vec![ObjectId(1)]);
        assert!(l.is_referenced(ObjectId(2)));
        assert_eq!(l.held_by(B1), Vec::<ObjectId>::new());
        assert_eq!(l.held_by(B2), vec![ObjectId(2)]);
    }

    #[test]
    fn held_by_lists_objects() {
        let mut l = RefLedger::new();
        l.borrow(ObjectId(3), B1);
        l.borrow(ObjectId(1), B1);
        assert_eq!(l.held_by(B1), vec![ObjectId(1), ObjectId(3)]);
    }
}

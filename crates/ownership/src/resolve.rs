//! Future resolution protocols: Ray's pull model and Skadi's push model.
//!
//! §2.3.2 of the paper: "Ray's future resolution uses a pull-based model
//! in which the consumer pulls data from the producer on demand. This
//! creates long stalls for short-lived ops. [...] We add another
//! push-based model for future resolution, in which the producer pushes
//! data to the consumer proactively."
//!
//! The functions here price one future resolution between a producer and
//! a consumer, given who owns the metadata and how control messages are
//! routed ([`RoutePolicy`]): Gen-1 detours every device message through
//! the fronting DPU, Gen-2 runs a device raylet inside the device. The
//! runtime calls these on every graph edge; the Fig-3 experiments sweep
//! them directly.

use skadi_dcsim::network::Network;
use skadi_dcsim::span::{Category, SpanId, Tracer};
use skadi_dcsim::time::{SimDuration, SimTime};
use skadi_dcsim::topology::NodeId;

/// Which resolution protocol an edge uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionMode {
    /// Consumer pulls: ask the owner for the location, then fetch.
    Pull,
    /// Producer pushes data to the (known) consumer when ready.
    Push,
}

impl std::fmt::Display for ResolutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolutionMode::Pull => f.write_str("pull"),
            ResolutionMode::Push => f.write_str("push"),
        }
    }
}

/// How control/data messages reach code running on a DPU-fronted device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutePolicy {
    /// Gen-1: true — the DPU orchestrates its device, so every message
    /// to or from the device pays the DPU's per-message processing delay
    /// plus the internal PCIe hop in both directions. Gen-2: false — a
    /// device-resident raylet handles messages locally.
    pub dpu_detour: bool,
    /// Per-message processing cost of the Gen-2 device raylet (small but
    /// not free).
    pub device_raylet_overhead: SimDuration,
}

impl RoutePolicy {
    /// The Gen-1 (DPU-centric) routing policy.
    pub const GEN1: RoutePolicy = RoutePolicy {
        dpu_detour: true,
        device_raylet_overhead: SimDuration::ZERO,
    };

    /// The Gen-2 (device-centric) routing policy.
    pub const GEN2: RoutePolicy = RoutePolicy {
        dpu_detour: false,
        device_raylet_overhead: SimDuration::from_nanos(500),
    };

    /// Per-message overhead paid at `node` under this policy.
    pub fn endpoint_overhead(&self, net: &Network, node: NodeId) -> SimDuration {
        let dpu = net.dpu_delay(node);
        if dpu.is_zero() {
            // Regular server: raylet runs on the host CPU either way.
            return SimDuration::ZERO;
        }
        if self.dpu_detour {
            // In via NIC -> DPU processing -> PCIe hop to the device, and
            // symmetrically on the way out.
            dpu + net.internal_hop(node) * 2
        } else {
            self.device_raylet_overhead
        }
    }
}

/// One resolution to price.
#[derive(Debug, Clone, Copy)]
pub struct ResolveScenario {
    /// Node whose worker owns the future's metadata.
    pub owner: NodeId,
    /// Node producing the value.
    pub producer: NodeId,
    /// Node consuming the value.
    pub consumer: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// When the producer finishes computing the value.
    pub value_ready: SimTime,
    /// When the consumer is scheduled and would start if its input were
    /// already local.
    pub consumer_ready: SimTime,
}

/// The priced outcome of one resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolveOutcome {
    /// When the consumer has the bytes locally and can start.
    pub input_available: SimTime,
    /// Protocol-induced wait beyond the intrinsic data dependency
    /// (`input_available - max(value_ready, consumer_ready)`).
    pub stall: SimDuration,
    /// Control messages on and off the critical path.
    pub control_msgs: u32,
    /// Bulk bytes moved.
    pub data_bytes: u64,
}

fn control_msg(
    net: &mut Network,
    now: SimTime,
    from: NodeId,
    to: NodeId,
    route: &RoutePolicy,
) -> SimTime {
    let depart = now + route.endpoint_overhead(net, from);
    let arrive = net.control(depart, from, to);
    arrive + route.endpoint_overhead(net, to)
}

fn data_msg(
    net: &mut Network,
    now: SimTime,
    from: NodeId,
    to: NodeId,
    bytes: u64,
    route: &RoutePolicy,
) -> SimTime {
    let depart = now + route.endpoint_overhead(net, from);
    let t = net.transfer(depart, from, to, bytes);
    t.arrival + route.endpoint_overhead(net, to)
}

/// Where resolution spans hang in the caller's span tree.
///
/// Consumer-side spans (the round trip and its steps) nest under
/// `parent` — typically the consuming task's umbrella span, whose
/// interval starts no later than `consumer_ready`. Producer-side spans
/// that can predate the consumer's window (the asynchronous ownership
/// update, an early push) nest under `root` — typically the job root,
/// which covers the whole run. With a disabled tracer both ids are the
/// sentinel and nothing is recorded.
#[derive(Debug, Clone, Copy)]
pub struct ResolveSpanCtx<'a> {
    /// Consumer-side parent span (task umbrella).
    pub parent: SpanId,
    /// Fallback parent for spans starting before `consumer_ready`.
    pub root: SpanId,
    /// Component (track) name for the consumer-side round trip.
    pub component: &'a str,
    /// Label of the input being resolved (producer task name).
    pub input: &'a str,
}

impl ResolveSpanCtx<'_> {
    /// A context for untraced callers.
    pub fn detached() -> ResolveSpanCtx<'static> {
        ResolveSpanCtx {
            parent: SpanId::NONE,
            root: SpanId::NONE,
            component: "",
            input: "",
        }
    }
}

/// Prices a pull-based resolution (Ray's ownership protocol), recording
/// one span per protocol state transition into `tracer`:
///
/// 1. producer -> owner: "value ready at my store" (table update);
/// 2. consumer -> owner: "where is the value?" (at `consumer_ready`);
/// 3. owner -> consumer: location reply (waits for step 1 if the ask
///    arrives early — this wait is the pull stall the paper calls out);
/// 4. consumer -> producer: fetch request;
/// 5. producer -> consumer: bulk data.
pub fn resolve_pull_traced(
    net: &mut Network,
    s: &ResolveScenario,
    route: &RoutePolicy,
    tracer: &mut Tracer,
    ctx: &ResolveSpanCtx,
) -> ResolveOutcome {
    // Step 1: the owner learns of readiness only after this arrives.
    let owner_knows = control_msg(net, s.value_ready, s.producer, s.owner, route);
    // The consumer-side round trip starts when the consumer asks.
    let rt = tracer.open(
        "resolve.pull",
        ctx.component,
        Category::Resolve,
        Some(ctx.parent),
        s.consumer_ready,
    );
    tracer.span(
        "resolve.update",
        "net",
        Category::Control,
        Some(ctx.root),
        s.value_ready,
        owner_knows,
        &[("input", ctx.input), ("step", "producer->owner")],
    );
    // Step 2: consumer asks.
    let ask_arrives = control_msg(net, s.consumer_ready, s.consumer, s.owner, route);
    tracer.span(
        "resolve.ask",
        "net",
        Category::Control,
        Some(rt),
        s.consumer_ready,
        ask_arrives,
        &[("input", ctx.input), ("step", "consumer->owner")],
    );
    // Step 3: owner replies once it both has the ask and knows the value.
    let reply_departs = ask_arrives.max(owner_knows);
    let reply_arrives = control_msg(net, reply_departs, s.owner, s.consumer, route);
    tracer.span(
        "resolve.reply",
        "net",
        Category::Control,
        Some(rt),
        reply_departs,
        reply_arrives,
        &[("input", ctx.input), ("step", "owner->consumer")],
    );
    // Step 4: fetch request to the holder.
    let fetch_arrives = control_msg(net, reply_arrives, s.consumer, s.producer, route);
    tracer.span(
        "resolve.fetch",
        "net",
        Category::Control,
        Some(rt),
        reply_arrives,
        fetch_arrives,
        &[("input", ctx.input), ("step", "consumer->producer")],
    );
    // Step 5: bulk data.
    let input_available = data_msg(net, fetch_arrives, s.producer, s.consumer, s.bytes, route);
    tracer.span(
        "resolve.data",
        "net",
        Category::Data,
        Some(rt),
        fetch_arrives,
        input_available,
        &[("input", ctx.input), ("bytes", &s.bytes.to_string())],
    );

    let intrinsic = s.value_ready.max(s.consumer_ready);
    let stall = input_available.saturating_since(intrinsic);
    tracer.close(rt, input_available);
    tracer.attr(rt, "input", ctx.input);
    tracer.attr(rt, "stall", &stall.to_string());
    ResolveOutcome {
        input_available,
        stall,
        control_msgs: 4,
        data_bytes: s.bytes,
    }
}

/// Prices a push-based resolution (Skadi's addition), recording spans
/// for the proactive data send and the off-path table update:
///
/// 1. producer -> consumer: bulk data, sent proactively at `value_ready`
///    (the producer knows the consumer from the physical graph);
/// 2. producer -> owner: asynchronous table update, off the critical
///    path (still counted as a control message).
pub fn resolve_push_traced(
    net: &mut Network,
    s: &ResolveScenario,
    route: &RoutePolicy,
    tracer: &mut Tracer,
    ctx: &ResolveSpanCtx,
) -> ResolveOutcome {
    let rt = tracer.open(
        "resolve.push",
        ctx.component,
        Category::Resolve,
        Some(ctx.parent),
        s.consumer_ready,
    );
    let data_arrives = data_msg(net, s.value_ready, s.producer, s.consumer, s.bytes, route);
    // An early push predates the consumer's window; hang it off the root.
    let data_parent = if s.value_ready >= s.consumer_ready {
        rt
    } else {
        ctx.root
    };
    tracer.span(
        "resolve.data",
        "net",
        Category::Data,
        Some(data_parent),
        s.value_ready,
        data_arrives,
        &[("input", ctx.input), ("bytes", &s.bytes.to_string())],
    );
    // Off-critical-path ownership update.
    let update_arrives = control_msg(net, s.value_ready, s.producer, s.owner, route);
    tracer.span(
        "resolve.update",
        "net",
        Category::Control,
        Some(ctx.root),
        s.value_ready,
        update_arrives,
        &[("input", ctx.input), ("step", "producer->owner")],
    );

    let intrinsic = s.value_ready.max(s.consumer_ready);
    // The consumer can only start once it is itself ready.
    let input_available = data_arrives.max(s.consumer_ready);
    let stall = input_available.saturating_since(intrinsic);
    tracer.close(rt, input_available);
    tracer.attr(rt, "input", ctx.input);
    tracer.attr(rt, "stall", &stall.to_string());
    ResolveOutcome {
        input_available,
        stall,
        control_msgs: 1,
        data_bytes: s.bytes,
    }
}

/// Pull pricing without tracing.
pub fn resolve_pull(net: &mut Network, s: &ResolveScenario, route: &RoutePolicy) -> ResolveOutcome {
    let mut tracer = Tracer::new(false);
    resolve_pull_traced(net, s, route, &mut tracer, &ResolveSpanCtx::detached())
}

/// Push pricing without tracing.
pub fn resolve_push(net: &mut Network, s: &ResolveScenario, route: &RoutePolicy) -> ResolveOutcome {
    let mut tracer = Tracer::new(false);
    resolve_push_traced(net, s, route, &mut tracer, &ResolveSpanCtx::detached())
}

/// Dispatches on the mode, without tracing.
pub fn resolve(
    mode: ResolutionMode,
    net: &mut Network,
    s: &ResolveScenario,
    route: &RoutePolicy,
) -> ResolveOutcome {
    let mut tracer = Tracer::new(false);
    resolve_traced(
        mode,
        net,
        s,
        route,
        &mut tracer,
        &ResolveSpanCtx::detached(),
    )
}

/// Dispatches on the mode, recording protocol spans into `tracer`.
pub fn resolve_traced(
    mode: ResolutionMode,
    net: &mut Network,
    s: &ResolveScenario,
    route: &RoutePolicy,
    tracer: &mut Tracer,
    ctx: &ResolveSpanCtx,
) -> ResolveOutcome {
    match mode {
        ResolutionMode::Pull => resolve_pull_traced(net, s, route, tracer, ctx),
        ResolutionMode::Push => resolve_push_traced(net, s, route, tracer, ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_dcsim::network::LinkParams;
    use skadi_dcsim::topology::{presets, Topology};

    fn setup() -> (Topology, Network) {
        let topo = presets::device_rack();
        let net = Network::new(&topo, LinkParams::default());
        (topo, net)
    }

    fn scenario(topo: &Topology, bytes: u64) -> ResolveScenario {
        let devs = topo.accel_devices(None);
        ResolveScenario {
            owner: topo.servers()[0],
            producer: devs[0],
            consumer: devs[1],
            bytes,
            value_ready: SimTime::from_micros(100),
            consumer_ready: SimTime::from_micros(100),
        }
    }

    #[test]
    fn push_beats_pull_for_small_objects() {
        let (topo, mut net) = setup();
        let s = scenario(&topo, 4 << 10);
        let pull = resolve_pull(&mut net, &s, &RoutePolicy::GEN1);
        let mut net2 = Network::new(&topo, LinkParams::default());
        let push = resolve_push(&mut net2, &s, &RoutePolicy::GEN1);
        assert!(
            push.stall < pull.stall,
            "push {} vs pull {}",
            push.stall,
            pull.stall
        );
        assert!(push.control_msgs < pull.control_msgs);
    }

    #[test]
    fn gen2_beats_gen1_between_devices() {
        let (topo, mut net) = setup();
        let s = scenario(&topo, 4 << 10);
        let g1 = resolve_pull(&mut net, &s, &RoutePolicy::GEN1);
        let mut net2 = Network::new(&topo, LinkParams::default());
        let g2 = resolve_pull(&mut net2, &s, &RoutePolicy::GEN2);
        assert!(
            g2.stall < g1.stall,
            "gen2 {} vs gen1 {}",
            g2.stall,
            g1.stall
        );
    }

    #[test]
    fn stall_never_negative_and_data_counted() {
        let (topo, mut net) = setup();
        let s = scenario(&topo, 1 << 20);
        for (mode, route) in [
            (ResolutionMode::Pull, RoutePolicy::GEN1),
            (ResolutionMode::Pull, RoutePolicy::GEN2),
            (ResolutionMode::Push, RoutePolicy::GEN1),
            (ResolutionMode::Push, RoutePolicy::GEN2),
        ] {
            let o = resolve(mode, &mut net, &s, &route);
            assert!(o.input_available >= s.value_ready);
            assert_eq!(o.data_bytes, 1 << 20);
        }
    }

    #[test]
    fn pull_waits_for_late_producer() {
        let (topo, mut net) = setup();
        let mut s = scenario(&topo, 1024);
        // Consumer is ready long before the value.
        s.consumer_ready = SimTime::from_micros(0);
        s.value_ready = SimTime::from_millis(5);
        let o = resolve_pull(&mut net, &s, &RoutePolicy::GEN1);
        assert!(o.input_available > s.value_ready);
        // Stall is measured beyond the intrinsic dependency, so it is just
        // protocol overhead, far below the 5 ms skew.
        assert!(o.stall < SimDuration::from_millis(1));
    }

    #[test]
    fn push_respects_consumer_not_ready() {
        let (topo, mut net) = setup();
        let mut s = scenario(&topo, 1024);
        s.value_ready = SimTime::from_micros(0);
        s.consumer_ready = SimTime::from_millis(3);
        let o = resolve_push(&mut net, &s, &RoutePolicy::GEN2);
        // Data arrived early; the consumer starts when it is ready.
        assert_eq!(o.input_available, s.consumer_ready);
        assert_eq!(o.stall, SimDuration::ZERO);
    }

    #[test]
    fn server_endpoints_pay_no_device_overhead() {
        let (topo, net) = setup();
        let server = topo.servers()[0];
        assert_eq!(
            RoutePolicy::GEN1.endpoint_overhead(&net, server),
            SimDuration::ZERO
        );
        let dev = topo.accel_devices(None)[0];
        assert!(RoutePolicy::GEN1.endpoint_overhead(&net, dev) > SimDuration::ZERO);
        assert!(
            RoutePolicy::GEN2.endpoint_overhead(&net, dev)
                < RoutePolicy::GEN1.endpoint_overhead(&net, dev)
        );
    }

    #[test]
    fn traced_pull_records_protocol_steps() {
        let (topo, mut net) = setup();
        let s = scenario(&topo, 4 << 10);
        let mut tracer = Tracer::new(true);
        let root = tracer.open(
            "job",
            "driver",
            Category::Job,
            None,
            skadi_dcsim::time::SimTime::ZERO,
        );
        let task = tracer.open(
            "task",
            "n",
            Category::Task,
            Some(root),
            SimTime::from_micros(50),
        );
        let ctx = ResolveSpanCtx {
            parent: task,
            root,
            component: "n",
            input: "x",
        };
        let out = resolve_pull_traced(&mut net, &s, &RoutePolicy::GEN1, &mut tracer, &ctx);
        tracer.close(task, out.input_available);
        let end = tracer.latest_end();
        tracer.close(root, end);
        let trace = tracer.finish();
        trace.validate().expect("well-formed trace");
        // 4 control messages: update, ask, reply, fetch.
        assert_eq!(trace.count_category(Category::Control), 4);
        assert_eq!(trace.count_category(Category::Data), 1);
        assert_eq!(trace.count_category(Category::Resolve), 1);
        let rt = trace
            .spans()
            .iter()
            .find(|sp| sp.name == "resolve.pull")
            .unwrap();
        assert_eq!(rt.attr("input"), Some("x"));
        assert_eq!(rt.end, out.input_available);
    }

    #[test]
    fn traced_push_records_single_control_msg() {
        let (topo, mut net) = setup();
        let mut s = scenario(&topo, 4 << 10);
        // Early push: value ready before the consumer exists.
        s.value_ready = SimTime::from_micros(10);
        s.consumer_ready = SimTime::from_micros(200);
        let mut tracer = Tracer::new(true);
        let root = tracer.open(
            "job",
            "driver",
            Category::Job,
            None,
            skadi_dcsim::time::SimTime::ZERO,
        );
        let task = tracer.open(
            "task",
            "n",
            Category::Task,
            Some(root),
            SimTime::from_micros(150),
        );
        let ctx = ResolveSpanCtx {
            parent: task,
            root,
            component: "n",
            input: "y",
        };
        let out = resolve_push_traced(&mut net, &s, &RoutePolicy::GEN2, &mut tracer, &ctx);
        tracer.close(task, out.input_available.max(SimTime::from_micros(150)));
        let end = tracer.latest_end();
        tracer.close(root, end);
        let trace = tracer.finish();
        trace.validate().expect("well-formed trace");
        assert_eq!(trace.count_category(Category::Control), 1);
        assert_eq!(trace.count_category(Category::Data), 1);
    }

    #[test]
    fn untraced_and_traced_price_identically() {
        let (topo, _) = setup();
        let s = scenario(&topo, 64 << 10);
        for (mode, route) in [
            (ResolutionMode::Pull, RoutePolicy::GEN1),
            (ResolutionMode::Push, RoutePolicy::GEN2),
        ] {
            let mut n1 = Network::new(&topo, LinkParams::default());
            let mut n2 = Network::new(&topo, LinkParams::default());
            let plain = resolve(mode, &mut n1, &s, &route);
            let mut tracer = Tracer::new(true);
            let ctx = ResolveSpanCtx {
                parent: SpanId::NONE,
                root: SpanId::NONE,
                component: "n",
                input: "z",
            };
            let traced = resolve_traced(mode, &mut n2, &s, &route, &mut tracer, &ctx);
            assert_eq!(plain, traced, "tracing must not change pricing");
            assert!(!tracer.is_empty());
        }
    }

    #[test]
    fn relative_gap_shrinks_for_large_transfers() {
        // For bulk data the serialization dominates, so pull's extra
        // control round-trips matter relatively less.
        let (topo, _) = setup();
        let small = scenario(&topo, 1 << 10);
        let large = scenario(&topo, 64 << 20);
        let mut n1 = Network::new(&topo, LinkParams::default());
        let mut n2 = Network::new(&topo, LinkParams::default());
        let mut n3 = Network::new(&topo, LinkParams::default());
        let mut n4 = Network::new(&topo, LinkParams::default());
        let ps = resolve_pull(&mut n1, &small, &RoutePolicy::GEN1);
        let qs = resolve_push(&mut n2, &small, &RoutePolicy::GEN1);
        let pl = resolve_pull(&mut n3, &large, &RoutePolicy::GEN1);
        let ql = resolve_push(&mut n4, &large, &RoutePolicy::GEN1);
        let small_ratio = ps.stall.as_secs_f64() / qs.stall.as_secs_f64();
        let large_ratio = pl.stall.as_secs_f64() / ql.stall.as_secs_f64();
        assert!(
            small_ratio > large_ratio,
            "small {small_ratio:.2} vs large {large_ratio:.2}"
        );
    }
}

//! Key partitioning schemes for keyed edges.
//!
//! Lowering "decides [...] keyed edges with a default or user-supplied
//! hashing scheme" (§2.1). The partitioner maps a key's hash to one of
//! `n` downstream shards; it must be *stable* (same key, same shard —
//! correctness of shuffles) and reasonably *balanced*.

use std::fmt;

/// FNV-1a over a byte string; the default key hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// How keys map to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partitioner {
    /// `hash(key) % n` with FNV-1a — the default scheme.
    Hash,
    /// Contiguous ranges of the hash space (preserves hash order across
    /// shards; used by sort-based consumers).
    Range,
    /// Ignores the key: round-robin by row index (only valid for
    /// key-insensitive consumers).
    RoundRobin,
}

impl fmt::Display for Partitioner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Partitioner::Hash => "hash",
            Partitioner::Range => "range",
            Partitioner::RoundRobin => "round-robin",
        };
        f.write_str(s)
    }
}

impl Partitioner {
    /// Assigns a key (or row index for round-robin) to a shard in
    /// `[0, parts)`.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn assign(&self, key_bytes: &[u8], row_index: u64, parts: u32) -> u32 {
        assert!(parts > 0, "partition into zero shards");
        match self {
            Partitioner::Hash => (fnv1a(key_bytes) % parts as u64) as u32,
            Partitioner::Range => {
                let h = fnv1a(key_bytes);
                // Divide the hash space into `parts` equal ranges.
                let width = u64::MAX / parts as u64 + 1;
                ((h / width) as u32).min(parts - 1)
            }
            Partitioner::RoundRobin => (row_index % parts as u64) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable() {
        let p = Partitioner::Hash;
        for key in ["alpha", "beta", "gamma"] {
            let a = p.assign(key.as_bytes(), 0, 7);
            let b = p.assign(key.as_bytes(), 99, 7);
            assert_eq!(a, b, "key {key} moved shards");
        }
    }

    #[test]
    fn hash_is_balanced() {
        let p = Partitioner::Hash;
        let parts = 8u32;
        let mut counts = vec![0u32; parts as usize];
        for i in 0..8000u64 {
            let key = format!("key-{i}");
            counts[p.assign(key.as_bytes(), i, parts) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.3, "imbalance: {counts:?}");
    }

    #[test]
    fn range_is_ordered_by_hash() {
        let p = Partitioner::Range;
        let parts = 4;
        // Keys whose hash falls in a lower range get a lower shard.
        let mut pairs: Vec<(u64, u32)> = (0..100u64)
            .map(|i| {
                let key = format!("k{i}");
                (fnv1a(key.as_bytes()), p.assign(key.as_bytes(), 0, parts))
            })
            .collect();
        pairs.sort();
        let shards: Vec<u32> = pairs.iter().map(|(_, s)| *s).collect();
        let mut sorted = shards.clone();
        sorted.sort_unstable();
        assert_eq!(shards, sorted, "range shards not monotone in hash");
    }

    #[test]
    fn round_robin_cycles() {
        let p = Partitioner::RoundRobin;
        let shards: Vec<u32> = (0..6).map(|i| p.assign(b"same", i, 3)).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn assignments_in_range() {
        for p in [
            Partitioner::Hash,
            Partitioner::Range,
            Partitioner::RoundRobin,
        ] {
            for i in 0..100u64 {
                let key = format!("x{i}");
                let s = p.assign(key.as_bytes(), i, 5);
                assert!(s < 5, "{p} returned {s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero shards")]
    fn zero_parts_panics() {
        Partitioner::Hash.assign(b"k", 0, 0);
    }

    #[test]
    fn fnv_known_values_differ() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
        assert_eq!(fnv1a(b"skadi"), fnv1a(b"skadi"));
    }
}

//! # skadi-flowgraph — the logical FlowGraph and physical sharded graph
//!
//! The middle tiers of the paper's access layer (§2.1, Figure 2):
//!
//! 1. Domain-specific declarations are parsed onto **FlowGraph**, "a
//!    classical data flow graph" whose edges dictate how data flow and
//!    whose vertices are built either from handcrafted operators or from
//!    hardware-agnostic IR ops ([`logical`]).
//! 2. The logical graph is optimized with predefined rules
//!    ([`optimize`]).
//! 3. Lowering to the **physical sharded graph** (a) selects hardware
//!    backends for IR-based ops and (b) decides a degree of parallelism
//!    per vertex, creating sharded vertices along keyed edges with a hash
//!    scheme ([`lower`], [`physical`], [`partition`]).
//!
//! Crucially — as the paper stresses — neither graph specifies *when* or
//! *who* executes the vertices; that is delegated to the stateful
//! serverless runtime (the `skadi-runtime` crate).
//!
//! # Examples
//!
//! ```
//! use skadi_flowgraph::prelude::*;
//! use skadi_ir::prelude::*;
//!
//! let mut g = FlowGraph::new();
//! let src = g.add_source("events", 1 << 20, 8 << 20);
//! let filt = g.add_ir_op("rel.filter", 1 << 20, 4 << 20);
//! let agg = g.add_ir_op("rel.aggregate", 1 << 20, 1 << 10);
//! g.connect(src, filt).unwrap();
//! g.connect_keyed(filt, agg, "k").unwrap();
//! g.validate().unwrap();
//!
//! let phys = lower_graph(&g, &LowerConfig::new(4, BackendPolicy::cost_based())).unwrap();
//! assert_eq!(phys.shards_of(agg).len(), 4);
//! ```

pub mod error;
pub mod exec;
pub mod logical;
pub mod lower;
pub mod optimize;
pub mod partition;
pub mod physical;
pub mod profile;

pub use error::GraphError;
pub use exec::{ExecAgg, ExecCompare, ExecLiteral, ExecOp};
pub use logical::{EdgeKind, FlowGraph, Vertex, VertexBody, VertexId};
pub use lower::{lower_graph, LowerConfig};
pub use optimize::{optimize_graph, OptimizeReport};
pub use partition::Partitioner;
pub use physical::{PEdgeKind, PVertexId, PhysicalGraph, PhysicalVertex};
pub use profile::{OpProfile, QueryProfile, ShardStats};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::error::GraphError;
    pub use crate::logical::{EdgeKind, FlowGraph, VertexBody, VertexId};
    pub use crate::lower::{lower_graph, LowerConfig};
    pub use crate::optimize::optimize_graph;
    pub use crate::partition::Partitioner;
    pub use crate::physical::{PEdgeKind, PVertexId, PhysicalGraph};
}

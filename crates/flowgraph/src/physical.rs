//! The physical sharded graph.
//!
//! Physical vertices are shards of logical vertices, each annotated with
//! the hardware backend chosen for it and a per-shard cost estimate;
//! physical edges are the expanded per-shard transfers (pipelines,
//! shuffles, gathers, scatters, broadcasts). The runtime executes this
//! graph one task per vertex.

use std::collections::HashMap;
use std::fmt;

use skadi_ir::Backend;

use crate::error::GraphError;
use crate::exec::ExecOp;
use crate::logical::VertexId;
use crate::partition::Partitioner;

/// Identifies a physical vertex (one shard of one logical vertex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PVertexId(pub u32);

impl fmt::Display for PVertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The role of a physical vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PVertexKind {
    /// Reads external input.
    Source,
    /// Computes.
    Compute,
    /// Delivers a job output.
    Sink,
}

/// One shard of one logical vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalVertex {
    /// Identity.
    pub id: PVertexId,
    /// Stable operator identity: every shard of one (post-optimization)
    /// logical operator carries the same `op_id`, so per-shard
    /// measurements group back into per-operator profiles. Assigned
    /// during lowering from the logical vertex id; deterministic for a
    /// given plan.
    pub op_id: u32,
    /// The logical vertex this shards.
    pub logical: VertexId,
    /// Shard index in `[0, shards)`.
    pub shard: u32,
    /// Total shards of the logical vertex.
    pub shards: u32,
    /// Op name.
    pub op: String,
    /// Constituent ops (fused bodies; singleton otherwise).
    pub body: Vec<String>,
    /// Chosen hardware backend.
    pub backend: Backend,
    /// Role.
    pub kind: PVertexKind,
    /// Estimated per-shard compute time, microseconds.
    pub compute_us: f64,
    /// Per-shard output size in bytes.
    pub output_bytes: u64,
    /// Per-shard input cardinality.
    pub rows: u64,
    /// Executable shard descriptor, inherited from the logical vertex.
    pub exec: Option<ExecOp>,
}

/// How bytes move along a physical edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PEdgeKind {
    /// Shard-aligned pipeline (same parallelism, no key).
    Pipeline,
    /// Hash shuffle on a key.
    Shuffle {
        /// The key column.
        key: String,
        /// The hashing scheme.
        partitioner: Partitioner,
    },
    /// Many shards into one.
    Gather,
    /// One (or few) shards fanned out / rebalanced.
    Scatter,
    /// Full copy to every consumer shard.
    Broadcast,
}

/// One physical transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalEdge {
    /// Producing shard.
    pub from: PVertexId,
    /// Consuming shard.
    pub to: PVertexId,
    /// Bytes carried.
    pub bytes: u64,
    /// Flow kind.
    pub kind: PEdgeKind,
    /// Consumer input port, inherited from the logical edge.
    pub port: u8,
}

/// The physical sharded graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhysicalGraph {
    vertices: Vec<PhysicalVertex>,
    edges: Vec<PhysicalEdge>,
    by_logical: HashMap<VertexId, Vec<PVertexId>>,
}

impl PhysicalGraph {
    /// Creates an empty graph (used by the lowering code).
    pub fn new() -> Self {
        PhysicalGraph::default()
    }

    /// Appends a vertex.
    pub fn push_vertex(&mut self, mut v: PhysicalVertex) -> PVertexId {
        let id = PVertexId(self.vertices.len() as u32);
        v.id = id;
        self.by_logical.entry(v.logical).or_default().push(id);
        self.vertices.push(v);
        id
    }

    /// Appends an edge.
    pub fn push_edge(&mut self, e: PhysicalEdge) {
        self.edges.push(e);
    }

    /// All vertices.
    pub fn vertices(&self) -> &[PhysicalVertex] {
        &self.vertices
    }

    /// All edges.
    pub fn edges(&self) -> &[PhysicalEdge] {
        &self.edges
    }

    /// Number of physical vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True if the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The vertex with the given ID.
    pub fn vertex(&self, id: PVertexId) -> &PhysicalVertex {
        &self.vertices[id.0 as usize]
    }

    /// The shards of a logical vertex, in shard order.
    pub fn shards_of(&self, logical: VertexId) -> &[PVertexId] {
        self.by_logical
            .get(&logical)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Incoming edges of a shard.
    pub fn in_edges(&self, v: PVertexId) -> Vec<&PhysicalEdge> {
        self.edges.iter().filter(|e| e.to == v).collect()
    }

    /// Outgoing edges of a shard.
    pub fn out_edges(&self, v: PVertexId) -> Vec<&PhysicalEdge> {
        self.edges.iter().filter(|e| e.from == v).collect()
    }

    /// Topological order over physical vertices.
    pub fn topo_order(&self) -> Result<Vec<PVertexId>, GraphError> {
        let n = self.vertices.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to.0 as usize] += 1;
        }
        let mut ready: Vec<PVertexId> = (0..n as u32)
            .map(PVertexId)
            .filter(|v| indegree[v.0 as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = ready.first().copied() {
            ready.remove(0);
            order.push(v);
            for e in &self.edges {
                if e.from == v {
                    let d = &mut indegree[e.to.0 as usize];
                    *d -= 1;
                    if *d == 0 {
                        let pos = ready.partition_point(|x| *x < e.to);
                        ready.insert(pos, e.to);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::Cyclic);
        }
        Ok(order)
    }

    /// Sum of all per-shard compute estimates, microseconds.
    pub fn total_compute_us(&self) -> f64 {
        self.vertices.iter().map(|v| v.compute_us).sum()
    }

    /// Sum of all edge bytes (the job's total data movement if nothing is
    /// co-located).
    pub fn total_edge_bytes(&self) -> u64 {
        self.edges.iter().map(|e| e.bytes).sum()
    }

    /// Length of the critical path in estimated microseconds, ignoring
    /// data movement (a lower bound on job time with infinite resources).
    pub fn critical_path_us(&self) -> f64 {
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return f64::NAN,
        };
        let mut finish: Vec<f64> = vec![0.0; self.vertices.len()];
        for v in order {
            let start = self
                .in_edges(v)
                .iter()
                .map(|e| finish[e.from.0 as usize])
                .fold(0.0, f64::max);
            finish[v.0 as usize] = start + self.vertex(v).compute_us;
        }
        finish.into_iter().fold(0.0, f64::max)
    }

    /// Vertices assigned to a backend.
    pub fn on_backend(&self, b: Backend) -> Vec<&PhysicalVertex> {
        self.vertices.iter().filter(|v| v.backend == b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertex(logical: u32, shard: u32, shards: u32, cost: f64) -> PhysicalVertex {
        PhysicalVertex {
            id: PVertexId(0),
            op_id: logical,
            logical: VertexId(logical),
            shard,
            shards,
            op: "rel.filter".into(),
            body: vec!["rel.filter".into()],
            backend: Backend::Cpu,
            kind: PVertexKind::Compute,
            compute_us: cost,
            output_bytes: 100,
            rows: 10,
            exec: None,
        }
    }

    #[test]
    fn push_and_lookup() {
        let mut g = PhysicalGraph::new();
        let a = g.push_vertex(vertex(0, 0, 2, 1.0));
        let b = g.push_vertex(vertex(0, 1, 2, 1.0));
        let c = g.push_vertex(vertex(1, 0, 1, 2.0));
        assert_eq!(g.shards_of(VertexId(0)), &[a, b]);
        assert_eq!(g.shards_of(VertexId(1)), &[c]);
        assert_eq!(g.shards_of(VertexId(9)), &[] as &[PVertexId]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn topo_and_critical_path() {
        let mut g = PhysicalGraph::new();
        let a = g.push_vertex(vertex(0, 0, 1, 5.0));
        let b = g.push_vertex(vertex(1, 0, 1, 3.0));
        let c = g.push_vertex(vertex(2, 0, 1, 7.0));
        g.push_edge(PhysicalEdge {
            from: a,
            to: c,
            bytes: 10,
            kind: PEdgeKind::Pipeline,
            port: 0,
        });
        g.push_edge(PhysicalEdge {
            from: b,
            to: c,
            bytes: 10,
            kind: PEdgeKind::Pipeline,
            port: 0,
        });
        let order = g.topo_order().unwrap();
        assert_eq!(order.last(), Some(&c));
        // Critical path: max(5, 3) + 7 = 12.
        assert!((g.critical_path_us() - 12.0).abs() < 1e-9);
        assert_eq!(g.total_edge_bytes(), 20);
        assert!((g.total_compute_us() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_detection() {
        let mut g = PhysicalGraph::new();
        let a = g.push_vertex(vertex(0, 0, 1, 1.0));
        let b = g.push_vertex(vertex(1, 0, 1, 1.0));
        g.push_edge(PhysicalEdge {
            from: a,
            to: b,
            bytes: 1,
            kind: PEdgeKind::Pipeline,
            port: 0,
        });
        g.push_edge(PhysicalEdge {
            from: b,
            to: a,
            bytes: 1,
            kind: PEdgeKind::Pipeline,
            port: 0,
        });
        assert_eq!(g.topo_order(), Err(GraphError::Cyclic));
    }

    #[test]
    fn backend_filter() {
        let mut g = PhysicalGraph::new();
        let mut v = vertex(0, 0, 1, 1.0);
        v.backend = Backend::Gpu;
        g.push_vertex(v);
        g.push_vertex(vertex(1, 0, 1, 1.0));
        assert_eq!(g.on_backend(Backend::Gpu).len(), 1);
        assert_eq!(g.on_backend(Backend::Cpu).len(), 1);
        assert_eq!(g.on_backend(Backend::Fpga).len(), 0);
    }
}

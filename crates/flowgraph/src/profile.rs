//! Per-operator query profiles.
//!
//! Every physical vertex carries a stable `op_id` (the post-optimization
//! logical vertex id, shared by all shards of one operator). Executors —
//! the local engine and the distributed shard runners — record one
//! [`ShardStats`] per operator per shard; those group into [`OpProfile`]s
//! and finally a [`QueryProfile`] attached to the query result.
//!
//! Determinism contract: everything except `wall_nanos` is a pure
//! function of the plan and the data, so [`QueryProfile::to_json`] and
//! the deterministic render mode (`render(false)`) omit wall time and are
//! byte-identical across same-seed runs. `render(true)` adds measured
//! wall times and a time-skew check for interactive use.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Measurements from one shard of one operator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Shard index in `[0, shards)`.
    pub shard: u32,
    /// Rows entering the operator (sum over input ports).
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// Measured output bytes (IPC-encoded payload size; 0 where the
    /// output never crosses a task boundary).
    pub output_bytes: u64,
    /// Measured wall time in nanoseconds. Non-deterministic; excluded
    /// from the JSON artifact and from deterministic rendering.
    pub wall_nanos: u64,
    /// For filters: `rows_out / rows_in` (None when rows_in is 0 or the
    /// operator is not a filter).
    pub selectivity: Option<f64>,
    /// For hash join / group-by: hash-table capacity in slots.
    pub hash_slots: u64,
    /// For hash join / group-by: probe steps that visited an occupied
    /// slot without matching (chain walks / linear-probe steps).
    pub hash_collisions: u64,
    /// For group-by: number of distinct groups produced.
    pub groups: u64,
    /// Hash-table capacity-growth events. The kernels preallocate from
    /// exact row counts, so any non-zero value flags a sizing bug.
    pub rehashes: u64,
}

/// Min / median / max over a set of per-shard values. The median of an
/// even-length set is the mean of the two middle values.
fn stats3(mut v: Vec<u64>) -> (u64, f64, u64) {
    if v.is_empty() {
        return (0, 0.0, 0);
    }
    v.sort_unstable();
    let n = v.len();
    let med = if n % 2 == 1 {
        v[n / 2] as f64
    } else {
        (v[n / 2 - 1] + v[n / 2]) as f64 / 2.0
    };
    (v[0], med, v[n - 1])
}

/// Profile of one operator across all of its shards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpProfile {
    /// Stable operator id (shared by all shards; see
    /// [`crate::physical::PhysicalVertex::op_id`]).
    pub op_id: u32,
    /// Op name (e.g. `rel.join`, `kernel.fused`).
    pub op: String,
    /// Constituent ops (fused bodies; singleton otherwise).
    pub body: Vec<String>,
    /// Producers feeding this operator: `(producer op_id, input port)`.
    pub inputs: Vec<(u32, u8)>,
    /// Per-shard measurements, in shard order.
    pub shards: Vec<ShardStats>,
}

impl OpProfile {
    /// (min, median, max) of rows entering the operator per shard.
    pub fn rows_in_stats(&self) -> (u64, f64, u64) {
        stats3(self.shards.iter().map(|s| s.rows_in).collect())
    }

    /// (min, median, max) of rows leaving the operator per shard.
    pub fn rows_out_stats(&self) -> (u64, f64, u64) {
        stats3(self.shards.iter().map(|s| s.rows_out).collect())
    }

    /// (min, median, max) of wall nanoseconds per shard.
    pub fn wall_stats(&self) -> (u64, f64, u64) {
        stats3(self.shards.iter().map(|s| s.wall_nanos).collect())
    }

    /// Total measured output bytes across shards.
    pub fn total_output_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.output_bytes).sum()
    }

    /// Total rows out across shards.
    pub fn total_rows_out(&self) -> u64 {
        self.shards.iter().map(|s| s.rows_out).sum()
    }

    /// Total rows in across shards.
    pub fn total_rows_in(&self) -> u64 {
        self.shards.iter().map(|s| s.rows_in).sum()
    }

    /// True if the largest shard's row count (in or out) exceeds
    /// `multiple` times the median shard's. Deterministic — based on row
    /// counts, not time. Single-shard operators are never skewed.
    pub fn skewed(&self, multiple: f64) -> bool {
        if self.shards.len() < 2 {
            return false;
        }
        let (_, med_in, max_in) = self.rows_in_stats();
        let (_, med_out, max_out) = self.rows_out_stats();
        max_in as f64 > multiple * med_in.max(1.0) || max_out as f64 > multiple * med_out.max(1.0)
    }

    /// True if the slowest shard's wall time exceeds `multiple` times the
    /// median shard's. Non-deterministic; only used in timed rendering.
    pub fn time_skewed(&self, multiple: f64) -> bool {
        if self.shards.len() < 2 {
            return false;
        }
        let (_, med, max) = self.wall_stats();
        max as f64 > multiple * med.max(1.0)
    }
}

/// A full per-operator profile for one query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// The query text (SQL or a pipeline name).
    pub query: String,
    /// Degree of parallelism the plan was lowered with.
    pub parallelism: u32,
    /// Skew threshold: a shard is flagged when its rows (or, in timed
    /// mode, wall time) exceed this multiple of the median shard's.
    pub skew_multiple: f64,
    /// Operator profiles, sorted by `op_id`.
    pub ops: Vec<OpProfile>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl QueryProfile {
    /// Builds a profile for a single-shard linear pipeline (the local
    /// engine): each entry is `(op name, stats)` in execution order and
    /// feeds the next.
    pub fn from_chain(query: &str, skew_multiple: f64, chain: Vec<(String, ShardStats)>) -> Self {
        let ops = chain
            .into_iter()
            .enumerate()
            .map(|(i, (op, stats))| OpProfile {
                op_id: i as u32,
                op: op.clone(),
                body: vec![op],
                inputs: if i == 0 {
                    Vec::new()
                } else {
                    vec![(i as u32 - 1, 0)]
                },
                shards: vec![stats],
            })
            .collect();
        QueryProfile {
            query: query.to_string(),
            parallelism: 1,
            skew_multiple,
            ops,
        }
    }

    /// The operator with the given id, if present.
    pub fn op(&self, op_id: u32) -> Option<&OpProfile> {
        self.ops.iter().find(|o| o.op_id == op_id)
    }

    /// Operators flagged as row-skewed under this profile's threshold.
    pub fn skewed_ops(&self) -> Vec<&OpProfile> {
        self.ops
            .iter()
            .filter(|o| o.skewed(self.skew_multiple))
            .collect()
    }

    /// Serializes the deterministic portion of the profile as JSON.
    /// Wall times are deliberately omitted: for a given seed and plan the
    /// output is byte-identical across runs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"query\": \"{}\",", json_escape(&self.query));
        let _ = writeln!(out, "  \"parallelism\": {},", self.parallelism);
        let _ = writeln!(out, "  \"skew_multiple\": {:.6},", self.skew_multiple);
        out.push_str("  \"ops\": [\n");
        for (i, op) in self.ops.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"op_id\": {},", op.op_id);
            let _ = writeln!(out, "      \"op\": \"{}\",", json_escape(&op.op));
            let body: Vec<String> = op
                .body
                .iter()
                .map(|b| format!("\"{}\"", json_escape(b)))
                .collect();
            let _ = writeln!(out, "      \"body\": [{}],", body.join(", "));
            let inputs: Vec<String> = op
                .inputs
                .iter()
                .map(|(id, port)| format!("{{\"op_id\": {id}, \"port\": {port}}}"))
                .collect();
            let _ = writeln!(out, "      \"inputs\": [{}],", inputs.join(", "));
            let _ = writeln!(out, "      \"skewed\": {},", op.skewed(self.skew_multiple));
            out.push_str("      \"shards\": [\n");
            for (j, s) in op.shards.iter().enumerate() {
                let mut fields = vec![
                    format!("\"shard\": {}", s.shard),
                    format!("\"rows_in\": {}", s.rows_in),
                    format!("\"rows_out\": {}", s.rows_out),
                    format!("\"output_bytes\": {}", s.output_bytes),
                ];
                if let Some(sel) = s.selectivity {
                    fields.push(format!("\"selectivity\": {sel:.6}"));
                }
                if s.hash_slots > 0 {
                    fields.push(format!("\"hash_slots\": {}", s.hash_slots));
                    fields.push(format!("\"hash_collisions\": {}", s.hash_collisions));
                }
                if s.groups > 0 {
                    fields.push(format!("\"groups\": {}", s.groups));
                }
                if s.rehashes > 0 {
                    fields.push(format!("\"rehashes\": {}", s.rehashes));
                }
                let comma = if j + 1 < op.shards.len() { "," } else { "" };
                let _ = writeln!(out, "        {{{}}}{}", fields.join(", "), comma);
            }
            out.push_str("      ]\n");
            let comma = if i + 1 < self.ops.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{}", comma);
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the annotated plan tree. The root (sink-most) operator is
    /// printed first; producers are indented beneath their consumer in
    /// `(port, op_id)` order. With `show_time` the per-shard wall-time
    /// spread is included and time skew also raises the `[SKEW]` flag;
    /// without it the output is deterministic for a given seed.
    pub fn render(&self, show_time: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "EXPLAIN ANALYZE {} (parallelism={}, skew>{}x median)",
            self.query, self.parallelism, self.skew_multiple
        );
        // Roots: ops no other op consumes.
        let consumed: BTreeSet<u32> = self
            .ops
            .iter()
            .flat_map(|o| o.inputs.iter().map(|(id, _)| *id))
            .collect();
        let mut visited = BTreeSet::new();
        for op in &self.ops {
            if !consumed.contains(&op.op_id) {
                self.render_op(&mut out, op.op_id, 0, show_time, &mut visited);
            }
        }
        out
    }

    fn render_op(
        &self,
        out: &mut String,
        op_id: u32,
        depth: usize,
        show_time: bool,
        visited: &mut BTreeSet<u32>,
    ) {
        let indent = "  ".repeat(depth);
        let Some(op) = self.op(op_id) else {
            let _ = writeln!(out, "{indent}#{op_id} <missing>");
            return;
        };
        if !visited.insert(op_id) {
            let _ = writeln!(out, "{indent}#{op_id} {} (see above)", op.op);
            return;
        }
        let mut line = format!("{indent}#{op_id} {}", op.op);
        if op.body.len() > 1 {
            let _ = write!(line, " [{}]", op.body.join("+"));
        }
        let _ = write!(line, " shards={}", op.shards.len());
        let (i_min, i_med, i_max) = op.rows_in_stats();
        let (o_min, o_med, o_max) = op.rows_out_stats();
        let _ = write!(
            line,
            " rows_in[min={i_min} med={i_med:.1} max={i_max}] rows_out[min={o_min} med={o_med:.1} max={o_max}]"
        );
        let _ = write!(line, " bytes={}", op.total_output_bytes());
        let sels: Vec<f64> = op.shards.iter().filter_map(|s| s.selectivity).collect();
        if !sels.is_empty() {
            let avg = sels.iter().sum::<f64>() / sels.len() as f64;
            let _ = write!(line, " sel={avg:.4}");
        }
        let slots: u64 = op.shards.iter().map(|s| s.hash_slots).sum();
        if slots > 0 {
            let coll: u64 = op.shards.iter().map(|s| s.hash_collisions).sum();
            let _ = write!(line, " ht[slots={slots} collisions={coll}]");
        }
        let groups: u64 = op.shards.iter().map(|s| s.groups).sum();
        if groups > 0 {
            let _ = write!(line, " groups={groups}");
        }
        let mut skew = op.skewed(self.skew_multiple);
        if show_time {
            let (t_min, t_med, t_max) = op.wall_stats();
            let _ = write!(
                line,
                " time[min={:.3}ms med={:.3}ms max={:.3}ms]",
                t_min as f64 / 1e6,
                t_med / 1e6,
                t_max as f64 / 1e6
            );
            skew = skew || op.time_skewed(self.skew_multiple);
        }
        if skew {
            line.push_str(" [SKEW]");
        }
        out.push_str(&line);
        out.push('\n');
        let mut children = op.inputs.clone();
        children.sort_by_key(|&(id, port)| (port, id));
        for (child, _) in children {
            self.render_op(out, child, depth + 1, show_time, visited);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(shard: u32, rows_in: u64, rows_out: u64, bytes: u64) -> ShardStats {
        ShardStats {
            shard,
            rows_in,
            rows_out,
            output_bytes: bytes,
            wall_nanos: 1_000_000,
            ..ShardStats::default()
        }
    }

    fn two_op_profile() -> QueryProfile {
        QueryProfile {
            query: "SELECT 1".into(),
            parallelism: 4,
            skew_multiple: 2.0,
            ops: vec![
                OpProfile {
                    op_id: 0,
                    op: "rel.scan".into(),
                    body: vec!["rel.scan".into()],
                    inputs: vec![],
                    shards: vec![shard(0, 0, 100, 800), shard(1, 0, 100, 800)],
                },
                OpProfile {
                    op_id: 1,
                    op: "rel.filter".into(),
                    body: vec!["rel.filter".into()],
                    inputs: vec![(0, 0)],
                    shards: vec![shard(0, 100, 10, 80), shard(1, 100, 90, 720)],
                },
            ],
        }
    }

    #[test]
    fn stats3_median_handles_even_and_odd() {
        assert_eq!(stats3(vec![3, 1, 2]), (1, 2.0, 3));
        assert_eq!(stats3(vec![4, 1, 2, 3]), (1, 2.5, 4));
        assert_eq!(stats3(vec![]), (0, 0.0, 0));
        assert_eq!(stats3(vec![7]), (7, 7.0, 7));
    }

    #[test]
    fn skew_flags_uneven_shards() {
        let p = two_op_profile();
        // Scan is perfectly balanced.
        assert!(!p.ops[0].skewed(2.0));
        // Filter rows_out: median (10+90)/2 = 50, max 90 — not > 2x.
        assert!(!p.ops[1].skewed(2.0));
        // But at a tighter threshold it is.
        assert!(p.ops[1].skewed(1.5));
        // Single shard never skews.
        let mut solo = p.ops[1].clone();
        solo.shards.truncate(1);
        assert!(!solo.skewed(0.1));
    }

    #[test]
    fn json_is_deterministic_and_omits_wall_time() {
        let p = two_op_profile();
        let a = p.to_json();
        let mut q = p.clone();
        // Wall time differs between "runs" but JSON must not.
        for op in &mut q.ops {
            for s in &mut op.shards {
                s.wall_nanos = s.wall_nanos.wrapping_mul(7) + 13;
            }
        }
        assert_eq!(a, q.to_json());
        assert!(!a.contains("wall"));
        assert!(a.contains("\"op\": \"rel.filter\""));
    }

    #[test]
    fn render_deterministic_mode_excludes_time() {
        let p = two_op_profile();
        let det = p.render(false);
        assert!(!det.contains("time["));
        assert!(det.contains("#1 rel.filter"));
        // Child (scan) is indented beneath the filter.
        assert!(det.contains("\n  #0 rel.scan"));
        let timed = p.render(true);
        assert!(timed.contains("time["));
    }

    #[test]
    fn from_chain_links_linear_pipeline() {
        let p = QueryProfile::from_chain(
            "SELECT x",
            2.0,
            vec![
                ("rel.scan".into(), shard(0, 0, 10, 0)),
                ("rel.filter".into(), shard(0, 10, 4, 0)),
            ],
        );
        assert_eq!(p.ops.len(), 2);
        assert_eq!(p.ops[1].inputs, vec![(0, 0)]);
        let tree = p.render(false);
        assert!(tree.contains("#1 rel.filter"));
        assert!(tree.contains("\n  #0 rel.scan"));
    }
}

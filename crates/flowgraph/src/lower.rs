//! Logical-to-physical lowering.
//!
//! §2.1: "Skadi lowers the logical FlowGraph to a physical sharded graph
//! in two steps: (1) selects hardware backends for MLIR-based ops using
//! predefined rules; (b) decides a default degree of parallelism for each
//! vertex, and keyed edges with a default or user-supplied hashing
//! scheme."

use std::collections::HashMap;

use skadi_ir::backend::estimate_named;
use skadi_ir::{Backend, BackendPolicy};

use crate::error::GraphError;
use crate::logical::{EdgeKind, FlowGraph, VertexBody, VertexId};
use crate::partition::Partitioner;
use crate::physical::{PEdgeKind, PVertexKind, PhysicalEdge, PhysicalGraph, PhysicalVertex};

/// Lowering configuration.
#[derive(Debug, Clone)]
pub struct LowerConfig {
    /// Default degree of parallelism for compute and source vertices.
    pub default_parallelism: u32,
    /// Backend-selection policy for IR-based vertices.
    pub policy: BackendPolicy,
    /// Per-vertex parallelism overrides.
    pub overrides: HashMap<VertexId, u32>,
    /// Hash scheme for keyed edges.
    pub partitioner: Partitioner,
}

impl LowerConfig {
    /// Creates a config with the given default parallelism and policy.
    pub fn new(default_parallelism: u32, policy: BackendPolicy) -> Self {
        LowerConfig {
            default_parallelism: default_parallelism.max(1),
            policy,
            overrides: HashMap::new(),
            partitioner: Partitioner::Hash,
        }
    }

    /// Overrides one vertex's parallelism.
    pub fn with_parallelism(mut self, v: VertexId, n: u32) -> Self {
        self.overrides.insert(v, n.max(1));
        self
    }

    /// Uses a different hashing scheme for keyed edges.
    pub fn with_partitioner(mut self, p: Partitioner) -> Self {
        self.partitioner = p;
        self
    }

    fn parallelism_of(&self, g: &FlowGraph, v: VertexId) -> u32 {
        if let Some(n) = self.overrides.get(&v) {
            return *n;
        }
        let vertex = g.vertex(v);
        // A global aggregate folds every row into one output row; it only
        // makes sense on a single shard.
        if vertex
            .exec
            .as_ref()
            .is_some_and(|e| e.requires_single_shard())
        {
            return 1;
        }
        match vertex.body {
            VertexBody::Sink { .. } => 1,
            _ => self.default_parallelism,
        }
    }
}

/// Per-element cost of a handcrafted operator in elements/us terms; uses
/// the generic throughput of its bound backend with a nominal factor.
fn handcrafted_cost_us(backend: Backend, rows: u64) -> f64 {
    // One unit of work per row through the generic backend cost model via
    // the closest generic op (a map-like pass over the data).
    estimate_named("tensor.map", None, rows, backend)
        .map(|c| c.total_us())
        .unwrap_or(rows as f64 / 100.0)
}

/// Lowers the logical graph to a physical sharded graph.
pub fn lower_graph(g: &FlowGraph, cfg: &LowerConfig) -> Result<PhysicalGraph, GraphError> {
    g.validate()
        .map_err(|e| GraphError::LoweringFailed(format!("logical graph invalid: {e}")))?;
    let mut phys = PhysicalGraph::new();

    // Step 1 + 2 per vertex: pick backend, decide parallelism, emit
    // shards.
    for v in g.vertices() {
        let shards = cfg.parallelism_of(g, v.id);
        let per_shard_rows = (v.rows_hint / shards as u64).max(1);
        let per_shard_bytes = v.output_bytes_hint / shards as u64;
        let (kind, op, body, backend, compute_us) = match &v.body {
            VertexBody::Source { name } => {
                // Reading input: priced as a light scan on CPU.
                let cost = estimate_named("rel.scan", None, per_shard_rows, Backend::Cpu)
                    .map(|c| c.total_us())
                    .unwrap_or(0.0);
                (
                    PVertexKind::Source,
                    name.clone(),
                    vec![name.clone()],
                    Backend::Cpu,
                    cost,
                )
            }
            VertexBody::Sink { name } => (
                PVertexKind::Sink,
                name.clone(),
                vec![name.clone()],
                Backend::Cpu,
                0.0,
            ),
            VertexBody::IrOp { name, body } => {
                let sel = cfg
                    .policy
                    .select_named(name, Some(body), per_shard_rows)
                    .ok_or_else(|| {
                        GraphError::LoweringFailed(format!(
                            "no backend for vertex {} ({name})",
                            v.id
                        ))
                    })?;
                (
                    PVertexKind::Compute,
                    name.clone(),
                    body.clone(),
                    sel.0,
                    sel.1.total_us(),
                )
            }
            VertexBody::Handcrafted { name, backend } => (
                PVertexKind::Compute,
                name.clone(),
                vec![name.clone()],
                *backend,
                handcrafted_cost_us(*backend, per_shard_rows),
            ),
        };
        for shard in 0..shards {
            phys.push_vertex(PhysicalVertex {
                id: crate::physical::PVertexId(0), // Reassigned by push.
                op_id: v.id.0,
                logical: v.id,
                shard,
                shards,
                op: op.clone(),
                body: body.clone(),
                backend,
                kind,
                compute_us,
                output_bytes: per_shard_bytes,
                rows: per_shard_rows,
                exec: v.exec.clone(),
            });
        }
    }

    // Expand edges.
    for e in g.edges() {
        let from_shards: Vec<_> = phys.shards_of(e.from).to_vec();
        let to_shards: Vec<_> = phys.shards_of(e.to).to_vec();
        let (m, n) = (from_shards.len() as u64, to_shards.len() as u64);
        let out_bytes = g.vertex(e.from).output_bytes_hint;
        match &e.kind {
            EdgeKind::Keyed(key) => {
                // All-to-all shuffle: every producer shard sends each
                // consumer its hash bucket.
                let bytes = (out_bytes / (m * n)).max(1);
                for &f in &from_shards {
                    for &t in &to_shards {
                        phys.push_edge(PhysicalEdge {
                            from: f,
                            to: t,
                            bytes,
                            kind: PEdgeKind::Shuffle {
                                key: key.clone(),
                                partitioner: cfg.partitioner.clone(),
                            },
                            port: e.port,
                        });
                    }
                }
            }
            EdgeKind::Broadcast => {
                // Every consumer shard receives the full producer output.
                let bytes = (out_bytes / m).max(1);
                for &f in &from_shards {
                    for &t in &to_shards {
                        phys.push_edge(PhysicalEdge {
                            from: f,
                            to: t,
                            bytes,
                            kind: PEdgeKind::Broadcast,
                            port: e.port,
                        });
                    }
                }
            }
            EdgeKind::Data => {
                if m == n {
                    for (f, t) in from_shards.iter().zip(&to_shards) {
                        phys.push_edge(PhysicalEdge {
                            from: *f,
                            to: *t,
                            bytes: (out_bytes / m).max(1),
                            kind: PEdgeKind::Pipeline,
                            port: e.port,
                        });
                    }
                } else if n == 1 {
                    for &f in &from_shards {
                        phys.push_edge(PhysicalEdge {
                            from: f,
                            to: to_shards[0],
                            bytes: (out_bytes / m).max(1),
                            kind: PEdgeKind::Gather,
                            port: e.port,
                        });
                    }
                } else if m == 1 {
                    for &t in &to_shards {
                        phys.push_edge(PhysicalEdge {
                            from: from_shards[0],
                            to: t,
                            bytes: (out_bytes / n).max(1),
                            kind: PEdgeKind::Scatter,
                            port: e.port,
                        });
                    }
                } else {
                    // Rebalance: all-to-all round-robin.
                    let bytes = (out_bytes / (m * n)).max(1);
                    for &f in &from_shards {
                        for &t in &to_shards {
                            phys.push_edge(PhysicalEdge {
                                from: f,
                                to: t,
                                bytes,
                                kind: PEdgeKind::Scatter,
                                port: e.port,
                            });
                        }
                    }
                }
            }
        }
    }

    Ok(phys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline_graph() -> (FlowGraph, VertexId, VertexId, VertexId, VertexId) {
        let mut g = FlowGraph::new();
        let src = g.add_source("events", 1 << 20, 64 << 20);
        let filt = g.add_ir_op("rel.filter", 1 << 20, 32 << 20);
        let agg = g.add_ir_op("rel.aggregate", 1 << 20, 1 << 10);
        let sink = g.add_sink("out");
        g.connect(src, filt).unwrap();
        g.connect_keyed(filt, agg, "k").unwrap();
        g.connect(agg, sink).unwrap();
        (g, src, filt, agg, sink)
    }

    #[test]
    fn sharding_respects_parallelism() {
        let (g, src, filt, agg, sink) = pipeline_graph();
        let cfg = LowerConfig::new(4, BackendPolicy::cost_based()).with_parallelism(agg, 2);
        let p = lower_graph(&g, &cfg).unwrap();
        assert_eq!(p.shards_of(src).len(), 4);
        assert_eq!(p.shards_of(filt).len(), 4);
        assert_eq!(p.shards_of(agg).len(), 2);
        assert_eq!(p.shards_of(sink).len(), 1);
    }

    #[test]
    fn keyed_edge_becomes_all_to_all_shuffle() {
        let (g, _, filt, agg, _) = pipeline_graph();
        let cfg = LowerConfig::new(4, BackendPolicy::cost_based());
        let p = lower_graph(&g, &cfg).unwrap();
        let shuffles: Vec<_> = p
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, PEdgeKind::Shuffle { .. }))
            .collect();
        assert_eq!(
            shuffles.len(),
            p.shards_of(filt).len() * p.shards_of(agg).len()
        );
        match &shuffles[0].kind {
            PEdgeKind::Shuffle { key, partitioner } => {
                assert_eq!(key, "k");
                assert_eq!(*partitioner, Partitioner::Hash);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn aligned_data_edge_becomes_pipeline() {
        let (g, src, filt, ..) = pipeline_graph();
        let cfg = LowerConfig::new(4, BackendPolicy::cost_based());
        let p = lower_graph(&g, &cfg).unwrap();
        let pipes: Vec<_> = p
            .edges()
            .iter()
            .filter(|e| e.kind == PEdgeKind::Pipeline)
            .collect();
        assert_eq!(pipes.len(), 4);
        // Shard i feeds shard i.
        for e in pipes {
            let f = p.vertex(e.from);
            let t = p.vertex(e.to);
            assert_eq!(f.logical, src);
            assert_eq!(t.logical, filt);
            assert_eq!(f.shard, t.shard);
        }
    }

    #[test]
    fn gather_into_sink() {
        let (g, .., agg, sink) = pipeline_graph();
        let cfg = LowerConfig::new(4, BackendPolicy::cost_based());
        let p = lower_graph(&g, &cfg).unwrap();
        let gathers: Vec<_> = p
            .edges()
            .iter()
            .filter(|e| e.kind == PEdgeKind::Gather)
            .collect();
        assert_eq!(gathers.len(), p.shards_of(agg).len());
        assert!(gathers.iter().all(|e| e.to == p.shards_of(sink)[0]));
    }

    #[test]
    fn broadcast_sends_full_copies() {
        let mut g = FlowGraph::new();
        let w = g.add_source("weights", 1 << 10, 4 << 20);
        let train = g.add_ir_op("tensor.sgd_step", 1 << 20, 4 << 20);
        g.connect_broadcast(w, train).unwrap();
        let cfg = LowerConfig::new(4, BackendPolicy::cost_based()).with_parallelism(w, 1);
        let p = lower_graph(&g, &cfg).unwrap();
        let bcasts: Vec<_> = p
            .edges()
            .iter()
            .filter(|e| e.kind == PEdgeKind::Broadcast)
            .collect();
        assert_eq!(bcasts.len(), 4);
        // Each consumer gets the full 4 MiB.
        assert!(bcasts.iter().all(|e| e.bytes == 4 << 20));
    }

    #[test]
    fn backend_selection_uses_policy() {
        let mut g = FlowGraph::new();
        let src = g.add_source("x", 1 << 22, 32 << 20);
        let mm = g.add_ir_op("tensor.matmul", 1 << 22, 32 << 20);
        g.connect(src, mm).unwrap();
        let p = lower_graph(&g, &LowerConfig::new(2, BackendPolicy::cost_based())).unwrap();
        for shard in p.shards_of(mm) {
            assert_eq!(p.vertex(*shard).backend, Backend::Gpu);
        }
        let p = lower_graph(&g, &LowerConfig::new(2, BackendPolicy::cpu_only())).unwrap();
        for shard in p.shards_of(mm) {
            assert_eq!(p.vertex(*shard).backend, Backend::Cpu);
        }
    }

    #[test]
    fn handcrafted_keeps_its_backend() {
        let mut g = FlowGraph::new();
        let src = g.add_source("x", 1 << 20, 8 << 20);
        let h = g.add_handcrafted("cudf.join", Backend::Gpu, 1 << 20, 8 << 20);
        g.connect(src, h).unwrap();
        let p = lower_graph(&g, &LowerConfig::new(2, BackendPolicy::cpu_only())).unwrap();
        for shard in p.shards_of(h) {
            assert_eq!(p.vertex(*shard).backend, Backend::Gpu);
            assert!(p.vertex(*shard).compute_us > 0.0);
        }
    }

    #[test]
    fn unsupported_op_fails_lowering() {
        let mut g = FlowGraph::new();
        let src = g.add_source("x", 10, 10);
        let bad = g.add_ir_op("tensor.matmul", 10, 10);
        g.connect(src, bad).unwrap();
        let cfg = LowerConfig::new(1, BackendPolicy::cost_based().restrict(&[Backend::Fpga]));
        assert!(matches!(
            lower_graph(&g, &cfg),
            Err(GraphError::LoweringFailed(_))
        ));
    }

    #[test]
    fn physical_graph_is_acyclic_and_costed() {
        let (g, ..) = pipeline_graph();
        let p = lower_graph(&g, &LowerConfig::new(8, BackendPolicy::cost_based())).unwrap();
        p.topo_order().unwrap();
        assert!(p.total_compute_us() > 0.0);
        assert!(p.total_edge_bytes() > 0);
        assert!(p.critical_path_us() > 0.0);
    }

    #[test]
    fn lowering_is_deterministic() {
        let (g, ..) = pipeline_graph();
        let cfg = LowerConfig::new(4, BackendPolicy::cost_based());
        let a = lower_graph(&g, &cfg).unwrap();
        let b = lower_graph(&g, &cfg).unwrap();
        assert_eq!(a, b);
    }
}

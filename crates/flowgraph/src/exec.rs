//! Executable shard descriptors.
//!
//! Physical lowering used to emit shards that carried only *cost* (rows,
//! bytes, microseconds); the runtime priced them but nothing executed.
//! An [`ExecOp`] is the missing half: a self-contained description of the
//! relational work one shard performs, attached to a logical vertex by
//! the planner and carried through optimization and lowering unchanged.
//! The executor layer (in `skadi-frontends`/`skadi`) interprets it
//! against real `skadi-arrow` record batches.
//!
//! Descriptors are plain data — no column references into any particular
//! batch, no engine types — so this crate stays dependency-free and the
//! same descriptor can be replayed deterministically under lineage
//! recovery.

/// A literal in a filter predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecLiteral {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

/// One comparison conjunct: `column op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecCompare {
    /// Column name.
    pub column: String,
    /// Operator: one of `=`, `!=`, `<`, `<=`, `>`, `>=`.
    pub op: String,
    /// Right-hand literal.
    pub value: ExecLiteral,
}

/// One aggregate item: `func(column) AS name`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecAgg {
    /// Aggregate function: `count`, `sum`, `min`, `max`, `avg`.
    pub func: String,
    /// Input column (`*` for `count(*)`).
    pub column: String,
    /// Output column name.
    pub name: String,
}

/// What one shard of a vertex executes.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOp {
    /// Read a contiguous slice of a base table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Keep rows passing every conjunct.
    Filter {
        /// The conjuncts, ANDed.
        conjuncts: Vec<ExecCompare>,
    },
    /// Keep the named columns, in order.
    Project {
        /// Output columns.
        columns: Vec<String>,
    },
    /// Hash equi-join; port-0 inputs are the probe (left) side, port-1
    /// inputs the build (right) side.
    Join {
        /// Probe-side key column.
        left_key: String,
        /// Build-side key column.
        right_key: String,
        /// Total rows of the build relation (the row-id stride that keeps
        /// output row ids globally ordered like the single-process join).
        right_rows: u64,
    },
    /// Grouped or global aggregation.
    Aggregate {
        /// GROUP BY columns (empty = global aggregate, forced to one
        /// shard by lowering).
        group_by: Vec<String>,
        /// Aggregate outputs, in select order.
        aggs: Vec<ExecAgg>,
    },
    /// Per-shard sort.
    Sort {
        /// Sort column.
        column: String,
        /// Descending order.
        descending: bool,
    },
    /// Per-shard top-N: each shard keeps its local first `n` rows under
    /// the query order (a superset of the global top-N).
    Limit {
        /// Row cap.
        n: u64,
        /// The query's ORDER BY, if any: (column, descending).
        order: Option<(String, bool)>,
    },
    /// Sink: gather every shard output, restore the query's total order,
    /// apply ORDER BY / LIMIT, and strip bookkeeping columns.
    Collect {
        /// The query's ORDER BY, if any: (column, descending).
        order_by: Option<(String, bool)>,
        /// The query's LIMIT, if any.
        limit: Option<u64>,
    },
    /// A fused chain (produced by the optimizer): run each op in order.
    Fused(Vec<ExecOp>),
}

impl ExecOp {
    /// True for a global (ungrouped) aggregate, which must run on exactly
    /// one shard to produce its single output row.
    pub fn requires_single_shard(&self) -> bool {
        match self {
            ExecOp::Aggregate { group_by, .. } => group_by.is_empty(),
            ExecOp::Fused(ops) => ops.iter().any(ExecOp::requires_single_shard),
            _ => false,
        }
    }

    /// Flattens into a sequential op list (`Fused` bodies inline).
    pub fn flatten(self) -> Vec<ExecOp> {
        match self {
            ExecOp::Fused(ops) => ops.into_iter().flat_map(ExecOp::flatten).collect(),
            other => vec![other],
        }
    }

    /// Composes two optional descriptors into the descriptor of a fused
    /// vertex (producer first). If either side has none, the fused vertex
    /// has none — partial execution would silently diverge.
    pub fn fuse(producer: Option<ExecOp>, consumer: Option<ExecOp>) -> Option<ExecOp> {
        match (producer, consumer) {
            (Some(p), Some(c)) => {
                let mut ops = p.flatten();
                ops.extend(c.flatten());
                Some(ExecOp::Fused(ops))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_aggregate_requires_single_shard() {
        let global = ExecOp::Aggregate {
            group_by: vec![],
            aggs: vec![],
        };
        let grouped = ExecOp::Aggregate {
            group_by: vec!["k".into()],
            aggs: vec![],
        };
        assert!(global.requires_single_shard());
        assert!(!grouped.requires_single_shard());
        assert!(ExecOp::Fused(vec![grouped.clone(), global.clone()]).requires_single_shard());
        assert!(!ExecOp::Scan { table: "t".into() }.requires_single_shard());
    }

    #[test]
    fn fuse_flattens_nested_chains() {
        let f = ExecOp::Filter { conjuncts: vec![] };
        let p = ExecOp::Project { columns: vec![] };
        let s = ExecOp::Sort {
            column: "k".into(),
            descending: false,
        };
        let ab = ExecOp::fuse(Some(f.clone()), Some(p.clone())).unwrap();
        let abc = ExecOp::fuse(Some(ab), Some(s.clone())).unwrap();
        assert_eq!(abc, ExecOp::Fused(vec![f, p, s]));
        assert_eq!(
            ExecOp::fuse(None, Some(ExecOp::Filter { conjuncts: vec![] })),
            None
        );
    }
}

//! Error type for graph construction and lowering.

use std::fmt;

use crate::logical::VertexId;

/// Errors from the flowgraph layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a vertex that does not exist.
    UnknownVertex(VertexId),
    /// The graph contains a cycle (FlowGraph is a DAG; iteration is
    /// expressed by unrolling or by runtime re-submission).
    Cyclic,
    /// A duplicate edge was added.
    DuplicateEdge(VertexId, VertexId),
    /// Lowering failed (e.g. no backend for a vertex).
    LoweringFailed(String),
    /// The graph is structurally invalid.
    Invalid(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            GraphError::Cyclic => f.write_str("graph contains a cycle"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::LoweringFailed(msg) => write!(f, "lowering failed: {msg}"),
            GraphError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

//! Graph-level optimization: "optimizes the graph using predefined rules"
//! (§2.1 step 2).
//!
//! Two rules are implemented, mirroring what the IR passes do at op level:
//!
//! 1. **Dead-vertex pruning**: vertices that cannot reach any sink do no
//!    useful work and are removed.
//! 2. **Chain fusion**: a linear chain of per-row IR vertices (single
//!    producer, single consumer, plain data edge) collapses into one
//!    fused vertex — fewer task launches and no intermediate objects,
//!    which is the paper's motivation for cross-domain fusion.

use std::collections::HashSet;

use crate::exec::ExecOp;
use crate::logical::{EdgeKind, FlowGraph, VertexBody, VertexId};

/// Which ops may join a fused vertex chain (per-row/per-element, one
/// input). Matches the IR-level fusable set.
fn fusable(name: &str) -> bool {
    matches!(
        name,
        "rel.filter" | "rel.project" | "tensor.map" | "tensor.from_frame" | "kernel.fused"
    )
}

/// What the optimizer did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeReport {
    /// Vertices removed as unreachable-from-sinks.
    pub pruned: usize,
    /// Fusion rewrites applied (each removes one vertex).
    pub fused: usize,
    /// Vertex count before optimization.
    pub before: usize,
    /// Vertex count after optimization.
    pub after: usize,
}

/// Runs both rules to fixpoint.
pub fn optimize_graph(g: &mut FlowGraph) -> OptimizeReport {
    let before = g.len();
    let pruned = prune_dead(g);
    let mut fused = 0;
    while fuse_one(g) {
        fused += 1;
    }
    OptimizeReport {
        pruned,
        fused,
        before,
        after: g.len(),
    }
}

/// Removes vertices that cannot reach any sink. Graphs without sinks are
/// left untouched (every vertex is presumed observable).
fn prune_dead(g: &mut FlowGraph) -> usize {
    let sinks: Vec<VertexId> = g
        .vertices()
        .iter()
        .filter(|v| matches!(v.body, VertexBody::Sink { .. }))
        .map(|v| v.id)
        .collect();
    if sinks.is_empty() {
        return 0;
    }
    // Reverse reachability from sinks.
    let mut live: HashSet<VertexId> = HashSet::new();
    let mut stack = sinks;
    while let Some(v) = stack.pop() {
        if !live.insert(v) {
            continue;
        }
        for p in g.inputs_of(v) {
            stack.push(p);
        }
    }
    let doomed: HashSet<VertexId> = g
        .vertices()
        .iter()
        .filter(|v| !live.contains(&v.id))
        .map(|v| v.id)
        .collect();
    let n = doomed.len();
    if n > 0 {
        g.remove_vertices(&doomed);
    }
    n
}

/// Fuses one producer-consumer pair of fusable IR vertices joined by a
/// plain data edge, where the producer's only consumer is the pair's
/// consumer and the consumer's only producer is the pair's producer.
/// Returns true if a rewrite happened.
fn fuse_one(g: &mut FlowGraph) -> bool {
    let mut pair: Option<(VertexId, VertexId)> = None;
    for e in g.edges() {
        if e.kind != EdgeKind::Data {
            continue;
        }
        let (p, c) = (g.vertex(e.from), g.vertex(e.to));
        let (VertexBody::IrOp { name: pn, .. }, VertexBody::IrOp { name: cn, .. }) =
            (&p.body, &c.body)
        else {
            continue;
        };
        if !fusable(pn) || !fusable(cn) {
            continue;
        }
        if g.outputs_of(p.id).len() != 1 || g.inputs_of(c.id).len() != 1 {
            continue;
        }
        pair = Some((p.id, c.id));
        break;
    }
    let Some((pid, cid)) = pair else {
        return false;
    };

    // Merge the producer's body into the consumer, then rewire the
    // producer's inputs to the consumer and drop the producer.
    let p_body = match &g.vertex(pid).body {
        VertexBody::IrOp { body, .. } => body.clone(),
        _ => unreachable!("checked above"),
    };
    let p_inputs: Vec<(VertexId, EdgeKind, u8)> = g
        .inputs_of(pid)
        .into_iter()
        .map(|u| {
            let e = g.edge_between(u, pid).expect("edge exists");
            (u, e.kind.clone(), e.port)
        })
        .collect();
    let p_rows = g.vertex(pid).rows_hint;
    let p_exec = g.vertex(pid).exec.clone();

    {
        let c = g.vertex_mut(cid);
        if let VertexBody::IrOp { name, body } = &mut c.body {
            let mut merged = p_body;
            merged.extend(body.clone());
            *body = merged;
            *name = "kernel.fused".to_string();
        }
        // The fused vertex streams the producer's input cardinality.
        c.rows_hint = c.rows_hint.max(p_rows);
        // The fused descriptor runs the producer's ops first.
        c.exec = ExecOp::fuse(p_exec, c.exec.take());
    }
    for (u, kind, port) in p_inputs {
        match kind {
            EdgeKind::Data => g.connect(u, cid).ok(),
            EdgeKind::Keyed(k) => g.connect_keyed_port(u, cid, &k, port).ok(),
            EdgeKind::Broadcast => g.connect_broadcast(u, cid).ok(),
        };
    }
    let doomed: HashSet<VertexId> = [pid].into_iter().collect();
    g.remove_vertices(&doomed);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prunes_unreachable_branch() {
        let mut g = FlowGraph::new();
        let s = g.add_source("in", 10, 10);
        let live = g.add_ir_op("rel.filter", 10, 10);
        let dead = g.add_ir_op("rel.project", 10, 10);
        let sink = g.add_sink("out");
        g.connect(s, live).unwrap();
        g.connect(s, dead).unwrap();
        g.connect(live, sink).unwrap();
        let report = optimize_graph(&mut g);
        assert_eq!(report.pruned, 1);
        g.validate().unwrap();
        assert!(g.vertices().iter().all(|v| v.body.name() != "rel.project"));
    }

    #[test]
    fn fuses_linear_chain() {
        let mut g = FlowGraph::new();
        let s = g.add_source("in", 1000, 8000);
        let f = g.add_ir_op("rel.filter", 1000, 4000);
        let m = g.add_ir_op("tensor.map", 1000, 4000);
        let sink = g.add_sink("out");
        g.connect(s, f).unwrap();
        g.connect(f, m).unwrap();
        g.connect(m, sink).unwrap();
        let report = optimize_graph(&mut g);
        assert_eq!(report.fused, 1);
        assert_eq!(g.len(), 3);
        let fused = g
            .vertices()
            .iter()
            .find(|v| v.body.name() == "kernel.fused")
            .expect("fused vertex");
        match &fused.body {
            VertexBody::IrOp { body, .. } => {
                assert_eq!(
                    body,
                    &vec!["rel.filter".to_string(), "tensor.map".to_string()]
                )
            }
            _ => panic!("not an IR op"),
        }
        g.validate().unwrap();
    }

    #[test]
    fn long_chain_fuses_fully() {
        let mut g = FlowGraph::new();
        let s = g.add_source("in", 10, 10);
        let a = g.add_ir_op("rel.filter", 10, 10);
        let b = g.add_ir_op("rel.project", 10, 10);
        let c = g.add_ir_op("tensor.from_frame", 10, 10);
        let d = g.add_ir_op("tensor.map", 10, 10);
        let sink = g.add_sink("out");
        g.connect(s, a).unwrap();
        g.connect(a, b).unwrap();
        g.connect(b, c).unwrap();
        g.connect(c, d).unwrap();
        g.connect(d, sink).unwrap();
        let report = optimize_graph(&mut g);
        assert_eq!(report.fused, 3);
        assert_eq!(g.len(), 3); // source, fused, sink
    }

    #[test]
    fn fanout_blocks_fusion() {
        let mut g = FlowGraph::new();
        let s = g.add_source("in", 10, 10);
        let f = g.add_ir_op("rel.filter", 10, 10);
        let p1 = g.add_ir_op("rel.project", 10, 10);
        let p2 = g.add_ir_op("rel.project", 10, 10);
        let k1 = g.add_sink("o1");
        let k2 = g.add_sink("o2");
        g.connect(s, f).unwrap();
        g.connect(f, p1).unwrap();
        g.connect(f, p2).unwrap();
        g.connect(p1, k1).unwrap();
        g.connect(p2, k2).unwrap();
        let report = optimize_graph(&mut g);
        assert_eq!(report.fused, 0);
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn keyed_edges_block_fusion() {
        let mut g = FlowGraph::new();
        let s = g.add_source("in", 10, 10);
        let f = g.add_ir_op("rel.filter", 10, 10);
        let m = g.add_ir_op("tensor.map", 10, 10);
        let sink = g.add_sink("out");
        g.connect(s, f).unwrap();
        g.connect_keyed(f, m, "k").unwrap();
        g.connect(m, sink).unwrap();
        let report = optimize_graph(&mut g);
        assert_eq!(report.fused, 0);
    }

    #[test]
    fn aggregates_never_fuse() {
        let mut g = FlowGraph::new();
        let s = g.add_source("in", 10, 10);
        let f = g.add_ir_op("rel.filter", 10, 10);
        let a = g.add_ir_op("rel.aggregate", 10, 10);
        let sink = g.add_sink("out");
        g.connect(s, f).unwrap();
        g.connect(f, a).unwrap();
        g.connect(a, sink).unwrap();
        let report = optimize_graph(&mut g);
        assert_eq!(report.fused, 0);
    }

    #[test]
    fn no_sinks_means_no_pruning() {
        let mut g = FlowGraph::new();
        let s = g.add_source("in", 10, 10);
        let f = g.add_ir_op("rel.aggregate", 10, 10);
        g.connect(s, f).unwrap();
        let report = optimize_graph(&mut g);
        assert_eq!(report.pruned, 0);
        assert_eq!(g.len(), 2);
    }
}

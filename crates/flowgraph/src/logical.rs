//! The logical FlowGraph.
//!
//! Vertices carry *what* to compute (a handcrafted operator name or a
//! hardware-agnostic IR op, plus cardinality hints); edges carry *how
//! data flows* (plain, keyed for shuffles, or broadcast). Nothing here
//! says when or where anything runs.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::error::GraphError;
use crate::exec::ExecOp;

/// Identifies a logical vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What a vertex computes.
#[derive(Debug, Clone, PartialEq)]
pub enum VertexBody {
    /// An external input (base table, training data, stream source).
    Source {
        /// Dataset name.
        name: String,
    },
    /// A hardware-agnostic IR op (possibly a fused kernel) — lowered to a
    /// backend during physical lowering.
    IrOp {
        /// Op name, e.g. `rel.filter` or `kernel.fused`.
        name: String,
        /// Constituent ops for fused kernels (singleton otherwise).
        body: Vec<String>,
    },
    /// A predefined, handcrafted operator bound to a specific backend
    /// family (e.g. `cudf.join`, `arrow.concat`).
    Handcrafted {
        /// Operator name.
        name: String,
        /// The backend family it is written for.
        backend: skadi_ir::Backend,
    },
    /// A job output.
    Sink {
        /// Result name.
        name: String,
    },
}

impl VertexBody {
    /// A short display name.
    pub fn name(&self) -> &str {
        match self {
            VertexBody::Source { name }
            | VertexBody::IrOp { name, .. }
            | VertexBody::Handcrafted { name, .. }
            | VertexBody::Sink { name } => name,
        }
    }
}

/// One logical vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct Vertex {
    /// Identity.
    pub id: VertexId,
    /// What it computes.
    pub body: VertexBody,
    /// Estimated rows/elements processed (drives cost models).
    pub rows_hint: u64,
    /// Estimated output size in bytes (drives data-movement pricing).
    pub output_bytes_hint: u64,
    /// Executable shard descriptor, when the frontend can supply one
    /// (SQL plans do; hand-built graphs usually don't).
    pub exec: Option<ExecOp>,
}

/// How data flows along an edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeKind {
    /// Plain dataflow: each upstream shard feeds its aligned or gathered
    /// downstream shard(s).
    Data,
    /// Keyed: rows are hash-partitioned on the named key (a shuffle when
    /// sharded).
    Keyed(String),
    /// Broadcast: every downstream shard receives the full output (model
    /// weights, small dimension tables).
    Broadcast,
}

/// One logical edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Producer vertex.
    pub from: VertexId,
    /// Consumer vertex.
    pub to: VertexId,
    /// Flow kind.
    pub kind: EdgeKind,
    /// Input port at the consumer: distinguishes a multi-input vertex's
    /// operands (0 = primary/probe side, 1 = join build side).
    pub port: u8,
}

/// The logical dataflow graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowGraph {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
}

impl FlowGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        FlowGraph::default()
    }

    /// Adds a source vertex.
    pub fn add_source(&mut self, name: &str, rows: u64, bytes: u64) -> VertexId {
        self.add_vertex(
            VertexBody::Source {
                name: name.to_string(),
            },
            rows,
            bytes,
        )
    }

    /// Adds a hardware-agnostic IR op vertex.
    pub fn add_ir_op(&mut self, op: &str, rows: u64, out_bytes: u64) -> VertexId {
        self.add_vertex(
            VertexBody::IrOp {
                name: op.to_string(),
                body: vec![op.to_string()],
            },
            rows,
            out_bytes,
        )
    }

    /// Adds a fused IR vertex with an explicit body.
    pub fn add_fused_op(&mut self, body: Vec<String>, rows: u64, out_bytes: u64) -> VertexId {
        self.add_vertex(
            VertexBody::IrOp {
                name: "kernel.fused".to_string(),
                body,
            },
            rows,
            out_bytes,
        )
    }

    /// Adds a handcrafted operator vertex.
    pub fn add_handcrafted(
        &mut self,
        name: &str,
        backend: skadi_ir::Backend,
        rows: u64,
        out_bytes: u64,
    ) -> VertexId {
        self.add_vertex(
            VertexBody::Handcrafted {
                name: name.to_string(),
                backend,
            },
            rows,
            out_bytes,
        )
    }

    /// Adds a sink vertex.
    pub fn add_sink(&mut self, name: &str) -> VertexId {
        self.add_vertex(
            VertexBody::Sink {
                name: name.to_string(),
            },
            0,
            0,
        )
    }

    /// Adds a vertex with an explicit body.
    pub fn add_vertex(&mut self, body: VertexBody, rows: u64, bytes: u64) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(Vertex {
            id,
            body,
            rows_hint: rows,
            output_bytes_hint: bytes,
            exec: None,
        });
        id
    }

    /// Attaches an executable shard descriptor to a vertex.
    pub fn set_exec(&mut self, v: VertexId, op: ExecOp) {
        self.vertices[v.0 as usize].exec = Some(op);
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if (v.0 as usize) < self.vertices.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownVertex(v))
        }
    }

    fn add_edge(
        &mut self,
        from: VertexId,
        to: VertexId,
        kind: EdgeKind,
        port: u8,
    ) -> Result<(), GraphError> {
        self.check_vertex(from)?;
        self.check_vertex(to)?;
        if self.edges.iter().any(|e| e.from == from && e.to == to) {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        self.edges.push(Edge {
            from,
            to,
            kind,
            port,
        });
        Ok(())
    }

    /// Connects two vertices with plain dataflow.
    pub fn connect(&mut self, from: VertexId, to: VertexId) -> Result<(), GraphError> {
        self.add_edge(from, to, EdgeKind::Data, 0)
    }

    /// Connects two vertices with a keyed (shuffle) edge.
    pub fn connect_keyed(
        &mut self,
        from: VertexId,
        to: VertexId,
        key: &str,
    ) -> Result<(), GraphError> {
        self.add_edge(from, to, EdgeKind::Keyed(key.to_string()), 0)
    }

    /// Connects two vertices with a keyed edge into a specific input port
    /// of the consumer (port 1 = a join's build side).
    pub fn connect_keyed_port(
        &mut self,
        from: VertexId,
        to: VertexId,
        key: &str,
        port: u8,
    ) -> Result<(), GraphError> {
        self.add_edge(from, to, EdgeKind::Keyed(key.to_string()), port)
    }

    /// Connects two vertices with a broadcast edge.
    pub fn connect_broadcast(&mut self, from: VertexId, to: VertexId) -> Result<(), GraphError> {
        self.add_edge(from, to, EdgeKind::Broadcast, 0)
    }

    /// The vertices, in insertion order.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// The edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The vertex with the given ID.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id.0 as usize]
    }

    /// Mutable vertex access (used by the optimizer).
    pub fn vertex_mut(&mut self, id: VertexId) -> &mut Vertex {
        &mut self.vertices[id.0 as usize]
    }

    /// Direct upstream vertices of `v`.
    pub fn inputs_of(&self, v: VertexId) -> Vec<VertexId> {
        self.edges
            .iter()
            .filter(|e| e.to == v)
            .map(|e| e.from)
            .collect()
    }

    /// Direct downstream vertices of `v`.
    pub fn outputs_of(&self, v: VertexId) -> Vec<VertexId> {
        self.edges
            .iter()
            .filter(|e| e.from == v)
            .map(|e| e.to)
            .collect()
    }

    /// The edge between two vertices, if any.
    pub fn edge_between(&self, from: VertexId, to: VertexId) -> Option<&Edge> {
        self.edges.iter().find(|e| e.from == from && e.to == to)
    }

    /// Removes a set of vertices and every incident edge, compacting IDs.
    /// Returns the mapping old-ID -> new-ID for surviving vertices.
    pub fn remove_vertices(&mut self, doomed: &HashSet<VertexId>) -> HashMap<VertexId, VertexId> {
        let mut mapping = HashMap::new();
        let mut new_vertices = Vec::new();
        for v in &self.vertices {
            if doomed.contains(&v.id) {
                continue;
            }
            let new_id = VertexId(new_vertices.len() as u32);
            mapping.insert(v.id, new_id);
            let mut nv = v.clone();
            nv.id = new_id;
            new_vertices.push(nv);
        }
        let mut new_edges = Vec::new();
        for e in &self.edges {
            if let (Some(&from), Some(&to)) = (mapping.get(&e.from), mapping.get(&e.to)) {
                new_edges.push(Edge {
                    from,
                    to,
                    kind: e.kind.clone(),
                    port: e.port,
                });
            }
        }
        self.vertices = new_vertices;
        self.edges = new_edges;
        mapping
    }

    /// Topological order of the vertices.
    pub fn topo_order(&self) -> Result<Vec<VertexId>, GraphError> {
        let n = self.vertices.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to.0 as usize] += 1;
        }
        // Deterministic Kahn: ready set kept sorted by ID.
        let mut ready: Vec<VertexId> = (0..n as u32)
            .map(VertexId)
            .filter(|v| indegree[v.0 as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = ready.first().copied() {
            ready.remove(0);
            order.push(v);
            for e in &self.edges {
                if e.from == v {
                    let d = &mut indegree[e.to.0 as usize];
                    *d -= 1;
                    if *d == 0 {
                        let pos = ready.partition_point(|x| *x < e.to);
                        ready.insert(pos, e.to);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::Cyclic);
        }
        Ok(order)
    }

    /// Structural validation: edges reference real vertices, the graph is
    /// acyclic, sources have no inputs, sinks have no outputs.
    pub fn validate(&self) -> Result<(), GraphError> {
        for e in &self.edges {
            self.check_vertex(e.from)?;
            self.check_vertex(e.to)?;
        }
        self.topo_order()?;
        for v in &self.vertices {
            match v.body {
                VertexBody::Source { .. } if !self.inputs_of(v.id).is_empty() => {
                    return Err(GraphError::Invalid(format!("source {} has inputs", v.id)));
                }
                VertexBody::Sink { .. } if !self.outputs_of(v.id).is_empty() => {
                    return Err(GraphError::Invalid(format!("sink {} has outputs", v.id)));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Graphviz DOT rendering, for docs and debugging.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph flow {\n");
        for v in &self.vertices {
            let _ = writeln!(s, "  {} [label=\"{}\"];", v.id.0, v.body.name());
        }
        for e in &self.edges {
            let label = match &e.kind {
                EdgeKind::Data => String::new(),
                EdgeKind::Keyed(k) => format!(" [label=\"key={k}\", style=dashed]"),
                EdgeKind::Broadcast => " [label=\"broadcast\"]".to_string(),
            };
            let _ = writeln!(s, "  {} -> {}{};", e.from.0, e.to.0, label);
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (FlowGraph, [VertexId; 4]) {
        let mut g = FlowGraph::new();
        let a = g.add_source("in", 100, 800);
        let b = g.add_ir_op("rel.filter", 100, 400);
        let c = g.add_ir_op("rel.project", 100, 200);
        let d = g.add_sink("out");
        g.connect(a, b).unwrap();
        g.connect(a, c).unwrap();
        g.connect(b, d).unwrap();
        g.connect(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_validate() {
        let (g, _) = diamond();
        g.validate().unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edges().len(), 4);
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.topo_order().unwrap();
        let pos = |v: VertexId| order.iter().position(|x| *x == v).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn cycle_detected() {
        let mut g = FlowGraph::new();
        let a = g.add_ir_op("rel.filter", 1, 1);
        let b = g.add_ir_op("rel.project", 1, 1);
        g.connect(a, b).unwrap();
        g.connect(b, a).unwrap();
        assert_eq!(g.topo_order(), Err(GraphError::Cyclic));
        assert!(g.validate().is_err());
    }

    #[test]
    fn duplicate_edges_rejected() {
        let mut g = FlowGraph::new();
        let a = g.add_source("s", 1, 1);
        let b = g.add_sink("t");
        g.connect(a, b).unwrap();
        assert_eq!(g.connect(a, b), Err(GraphError::DuplicateEdge(a, b)));
    }

    #[test]
    fn unknown_vertex_rejected() {
        let mut g = FlowGraph::new();
        let a = g.add_source("s", 1, 1);
        assert!(matches!(
            g.connect(a, VertexId(9)),
            Err(GraphError::UnknownVertex(_))
        ));
    }

    #[test]
    fn source_with_inputs_invalid() {
        let mut g = FlowGraph::new();
        let a = g.add_ir_op("rel.filter", 1, 1);
        let s = g.add_source("s", 1, 1);
        g.connect(a, s).unwrap();
        assert!(matches!(g.validate(), Err(GraphError::Invalid(_))));
    }

    #[test]
    fn neighbors() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.outputs_of(a), vec![b, c]);
        assert_eq!(g.inputs_of(d), vec![b, c]);
        assert!(g.edge_between(a, b).is_some());
        assert!(g.edge_between(b, a).is_none());
    }

    #[test]
    fn remove_vertices_compacts() {
        let (mut g, [a, b, c, d]) = diamond();
        let doomed: HashSet<VertexId> = [b].into_iter().collect();
        let mapping = g.remove_vertices(&doomed);
        assert_eq!(g.len(), 3);
        assert!(!mapping.contains_key(&b));
        g.validate().unwrap();
        // a -> c edge survives under new IDs.
        let (na, nc, nd) = (mapping[&a], mapping[&c], mapping[&d]);
        assert!(g.edge_between(na, nc).is_some());
        assert!(g.edge_between(nc, nd).is_some());
    }

    #[test]
    fn keyed_and_broadcast_edges() {
        let mut g = FlowGraph::new();
        let a = g.add_source("s", 10, 10);
        let b = g.add_ir_op("rel.aggregate", 10, 10);
        let c = g.add_ir_op("tensor.map", 10, 10);
        g.connect_keyed(a, b, "k").unwrap();
        g.connect_broadcast(a, c).unwrap();
        assert_eq!(
            g.edge_between(a, b).unwrap().kind,
            EdgeKind::Keyed("k".into())
        );
        assert_eq!(g.edge_between(a, c).unwrap().kind, EdgeKind::Broadcast);
    }

    #[test]
    fn dot_output_mentions_vertices() {
        let (g, _) = diamond();
        let dot = g.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("rel.filter"));
    }
}

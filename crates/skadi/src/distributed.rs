//! The distributed SQL data plane.
//!
//! [`GraphExecutor`] bridges the physical graph and the runtime's
//! [`TaskExecutor`] hook: when the simulated cluster finishes a task, the
//! executor runs that shard's [`ExecOp`] descriptor over real
//! `skadi-arrow` batches — decoding its producers' IPC-framed payloads,
//! extracting this consumer's portion of each edge (hash partition for
//! shuffles, contiguous slice for scatters, the whole payload for
//! pipelines/gathers/broadcasts), executing the shard kernel from
//! `skadi_frontends::shard`, and encoding the result. The returned bytes
//! become the task's stored payload, so every downstream size the
//! simulator prices (transfer bytes, pass-by-value inlining, cache
//! copies) is **measured**, not estimated.
//!
//! Determinism: task inputs are produced deterministically (scans slice
//! contiguous row ranges, partitions preserve row order, gathers
//! canonicalize on the hidden row-id column), so re-executing a task
//! under lineage recovery reproduces identical bytes — the property the
//! runtime's replay contract requires, and the one
//! `tests/distributed_sql.rs` pins byte-for-byte against the
//! single-process reference engine.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use skadi_arrow::batch::RecordBatch;
use skadi_arrow::{compression, ipc};
use skadi_flowgraph::physical::{PEdgeKind, PVertexId, PhysicalGraph};
use skadi_flowgraph::profile::{OpProfile, QueryProfile, ShardStats};
use skadi_flowgraph::ExecOp;
use skadi_frontends::exec::pool;
use skadi_frontends::shard::{self, ShardExecStats};
use skadi_runtime::{TaskExecutor, TaskId};

/// One shard's measured execution, recorded by [`GraphExecutor`].
#[derive(Debug, Clone)]
pub struct ShardTiming {
    /// The runtime task that ran this shard.
    pub task: TaskId,
    /// Stable operator id (shared by all shards of one operator).
    pub op_id: u32,
    /// Operator name (the physical vertex's op).
    pub op: String,
    /// Shard index within the operator.
    pub shard: u32,
    /// Total shards of the operator.
    pub shards: u32,
    /// Rows entering the shard kernel (after partition extraction).
    pub rows_in: usize,
    /// Rows the shard produced.
    pub rows_out: usize,
    /// Encoded output size in bytes (what the cluster stores).
    pub output_bytes: u64,
    /// Real wall-clock time spent in the shard kernel.
    pub wall: Duration,
    /// Kernel measurements: hash-table counters and filter row counts.
    pub exec_stats: ShardExecStats,
}

/// Measurements shared out of the executor (the cluster owns the
/// executor box; callers keep a clone of this handle).
#[derive(Debug, Clone, Default)]
pub struct DataPlaneStats {
    /// Per-task shard timings, in completion order (re-executions under
    /// recovery append again).
    pub timings: Vec<ShardTiming>,
    /// Rows delivered over each shuffle edge, keyed by
    /// `(producer task, consumer task)`. Deterministic across runs and
    /// seeds — the shuffle hash is data-dependent only.
    pub shuffle_rows: BTreeMap<(u64, u64), usize>,
    /// Rows delivered over EVERY physical edge (all kinds), keyed by
    /// `(producer task, consumer task)`. Re-executions overwrite, so the
    /// map holds each edge's final delivery.
    pub edge_rows: BTreeMap<(u64, u64), usize>,
}

impl DataPlaneStats {
    /// Total wall-clock across all shard executions.
    pub fn total_wall(&self) -> Duration {
        self.timings.iter().map(|t| t.wall).sum()
    }

    /// Joins that adaptively built on the nominal probe side (summed
    /// over every shard execution, re-executions included). Always zero
    /// when adaptive execution is off.
    pub fn build_swaps(&self) -> u64 {
        self.timings.iter().map(|t| t.exec_stats.build_swaps).sum()
    }

    /// Assembles the per-operator [`QueryProfile`] from the recorded
    /// shard timings and the physical graph's structure. When lineage
    /// recovery re-executed a task, the LAST recorded timing wins (it is
    /// the execution whose payload survived). Operator inputs come from
    /// the graph's edges, deduplicated to `(producer op_id, port)`.
    pub fn query_profile(
        &self,
        graph: &PhysicalGraph,
        query: &str,
        parallelism: u32,
        skew_multiple: f64,
    ) -> QueryProfile {
        // Last timing per task wins.
        let mut by_task: BTreeMap<u64, &ShardTiming> = BTreeMap::new();
        for t in &self.timings {
            by_task.insert(t.task.0, t);
        }
        let mut ops: BTreeMap<u32, OpProfile> = BTreeMap::new();
        for v in graph.vertices() {
            let op = ops.entry(v.op_id).or_insert_with(|| OpProfile {
                op_id: v.op_id,
                op: v.op.clone(),
                body: v.body.clone(),
                inputs: Vec::new(),
                shards: Vec::new(),
            });
            let timing = by_task.get(&(v.id.0 as u64));
            let mut s = ShardStats {
                shard: v.shard,
                ..ShardStats::default()
            };
            if let Some(t) = timing {
                s.rows_in = t.rows_in as u64;
                s.rows_out = t.rows_out as u64;
                s.output_bytes = t.output_bytes;
                s.wall_nanos = t.wall.as_nanos() as u64;
                s.selectivity = t.exec_stats.selectivity();
                s.hash_slots = t.exec_stats.kernel.hash_slots;
                s.hash_collisions = t.exec_stats.kernel.hash_collisions;
                s.groups = t.exec_stats.kernel.groups;
                s.rehashes = t.exec_stats.kernel.rehashes;
            }
            op.shards.push(s);
        }
        for e in graph.edges() {
            let from_op = graph.vertex(e.from).op_id;
            let to_op = graph.vertex(e.to).op_id;
            if let Some(op) = ops.get_mut(&to_op) {
                if !op.inputs.contains(&(from_op, e.port)) {
                    op.inputs.push((from_op, e.port));
                }
            }
        }
        let mut ops: Vec<OpProfile> = ops.into_values().collect();
        for op in &mut ops {
            op.shards.sort_by_key(|s| s.shard);
            op.inputs.sort_by_key(|&(id, port)| (port, id));
        }
        QueryProfile {
            query: query.to_string(),
            parallelism,
            skew_multiple,
            ops,
        }
    }
}

/// True if this vertex's kernel starts with a join — its keyed inputs
/// must then co-locate mixed `Int64`/`Float64` keys, so shuffle
/// partitioning hashes integers through their `f64` bit pattern exactly
/// like the join probe does.
fn is_join_consumer(op: &ExecOp) -> bool {
    match op {
        ExecOp::Join { .. } => true,
        ExecOp::Fused(ops) => ops.first().is_some_and(is_join_consumer),
        _ => false,
    }
}

/// Executes physical-graph shards over real record batches.
///
/// The graph and base tables live behind `Arc` so shard computation —
/// a pure function of `(descriptor, inputs)` — can run on the shared
/// worker pool when the cluster hands over a same-instant batch via
/// [`TaskExecutor::execute_ready`]. Stats stay single-threaded: input
/// staging and timing commits happen on the calling thread, in task-ID
/// order, so measurements are as deterministic as the serial path.
pub struct GraphExecutor {
    graph: Arc<PhysicalGraph>,
    tables: Arc<BTreeMap<String, RecordBatch>>,
    stats: Rc<RefCell<DataPlaneStats>>,
    compress: bool,
    adaptive: bool,
}

impl GraphExecutor {
    /// Builds an executor for `graph` reading base tables from `tables`.
    /// Stored payloads are block-compressed by default (see
    /// [`GraphExecutor::with_compression`]).
    pub fn new(graph: PhysicalGraph, tables: BTreeMap<String, RecordBatch>) -> Self {
        GraphExecutor {
            graph: Arc::new(graph),
            tables: Arc::new(tables),
            stats: Rc::new(RefCell::new(DataPlaneStats::default())),
            compress: true,
            adaptive: false,
        }
    }

    /// Toggles adaptive shard execution: joins whose gathered build
    /// input is observed (at runtime, from real row counts) to dwarf the
    /// probe input build their hash table on the smaller side. Results
    /// are byte-identical either way — the decision only changes which
    /// side pays the hash-table build.
    pub fn with_adaptive(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Toggles block compression of stored task payloads. When on, each
    /// shard's IPC frame goes through [`compression::maybe_compress`]
    /// before the cluster stores it, so every byte size the simulator
    /// prices (transfer, inlining, caching) reflects the compressed
    /// frame. Decode auto-detects by magic, so producers and consumers
    /// never need to agree out of band.
    ///
    /// [`compression::maybe_compress`]: skadi_arrow::compression::maybe_compress
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compress = on;
        self
    }

    /// A shared handle onto the executor's measurements; stays readable
    /// after the executor box moves into the cluster.
    pub fn stats(&self) -> Rc<RefCell<DataPlaneStats>> {
        Rc::clone(&self.stats)
    }
}

/// One task's shard, staged and ready to run: the exec descriptor plus
/// this shard's extracted portion of every input edge. Produced serially
/// by [`GraphExecutor::prepare`]; consumed by the pure
/// [`GraphExecutor::run_shard`] (safe to run on any thread).
struct PreparedShard {
    task: TaskId,
    op: ExecOp,
    op_id: u32,
    op_name: String,
    shard: u32,
    shards: u32,
    port0: Vec<RecordBatch>,
    port1: Vec<RecordBatch>,
    rows_in: usize,
}

/// A finished shard run: encoded payload plus measurements, waiting to
/// be committed into [`DataPlaneStats`] on the calling thread.
struct ShardRun {
    bytes: Vec<u8>,
    rows_out: usize,
    wall: Duration,
    exec_stats: ShardExecStats,
}

impl GraphExecutor {
    /// Stages task `t`: decodes producer payloads, extracts this shard's
    /// portion of each in-edge, and records edge row counts. Runs on the
    /// calling thread (it touches `stats`).
    fn prepare(&mut self, t: TaskId, inputs: &[(TaskId, &[u8])]) -> Result<PreparedShard, String> {
        let idx = t.0 as usize;
        if idx >= self.graph.len() {
            return Err(format!("task {t} has no physical vertex"));
        }
        let v = self.graph.vertex(PVertexId(t.0 as u32));
        let op = v
            .exec
            .as_ref()
            .ok_or_else(|| format!("vertex {} ({}) has no exec descriptor", v.id, v.op))?;

        // Decode each producer's full stored payload once. Payloads may
        // arrive block-compressed (detected by magic) or plain.
        let mut decoded: BTreeMap<u64, RecordBatch> = BTreeMap::new();
        for (p, buf) in inputs {
            let frame = if compression::is_compressed(buf) {
                Bytes::from(
                    compression::decompress(buf)
                        .map_err(|e| format!("decompress payload of {p}: {e}"))?,
                )
            } else {
                Bytes::from(buf.to_vec())
            };
            let b = ipc::decode(frame).map_err(|e| format!("decode payload of {p}: {e}"))?;
            decoded.insert(p.0, b);
        }

        // This shard's view of each in-edge, ordered by (port, producer
        // shard): the order the shard kernels document for their inputs.
        let mut edges = self.graph.in_edges(v.id);
        edges.sort_by_key(|e| (e.port, self.graph.vertex(e.from).shard, e.from.0));
        let mut port0: Vec<RecordBatch> = Vec::new();
        let mut port1: Vec<RecordBatch> = Vec::new();
        let mut rows_in = 0usize;
        for e in edges {
            let full = decoded
                .get(&(e.from.0 as u64))
                .ok_or_else(|| format!("missing payload from {} into {}", e.from, v.id))?;
            let part = match &e.kind {
                PEdgeKind::Shuffle { key, .. } => {
                    let parts =
                        shard::partition_by_key(full, key, v.shards as usize, is_join_consumer(op))
                            .map_err(|err| format!("shuffle into {}: {err}", v.id))?;
                    let mine = parts
                        .into_iter()
                        .nth(v.shard as usize)
                        .expect("partition count equals consumer shards");
                    self.stats
                        .borrow_mut()
                        .shuffle_rows
                        .insert((e.from.0 as u64, t.0), mine.num_rows());
                    mine
                }
                PEdgeKind::Scatter => shard::split_even(full, v.shards as usize)
                    .map_err(|err| format!("scatter into {}: {err}", v.id))?
                    .into_iter()
                    .nth(v.shard as usize)
                    .expect("split count equals consumer shards"),
                PEdgeKind::Pipeline | PEdgeKind::Gather | PEdgeKind::Broadcast => full.clone(),
            };
            self.stats
                .borrow_mut()
                .edge_rows
                .insert((e.from.0 as u64, t.0), part.num_rows());
            rows_in += part.num_rows();
            if e.port == 1 {
                port1.push(part);
            } else {
                port0.push(part);
            }
        }

        Ok(PreparedShard {
            task: t,
            op: op.clone(),
            op_id: v.op_id,
            op_name: v.op.clone(),
            shard: v.shard,
            shards: v.shards,
            port0,
            port1,
            rows_in,
        })
    }

    /// Runs one staged shard: a pure function of the prepared inputs and
    /// the (shared, immutable) base tables — safe on any pool thread.
    fn run_shard(
        tables: &BTreeMap<String, RecordBatch>,
        p: &PreparedShard,
        compress: bool,
        adaptive: bool,
    ) -> Result<ShardRun, String> {
        let mut exec_stats = ShardExecStats::default();
        let started = std::time::Instant::now();
        let out = shard::execute_shard_adaptive(
            &p.op,
            tables,
            p.shard,
            p.shards,
            &p.port0,
            &p.port1,
            adaptive,
            &mut exec_stats,
        )
        .map_err(|e| format!("shard {}/{} of {}: {e}", p.shard, p.shards, p.op_name))?;
        let wall = started.elapsed();
        let frame = ipc::encode(&out);
        let bytes = if compress {
            compression::maybe_compress(&frame)
        } else {
            frame.to_vec()
        };
        Ok(ShardRun {
            rows_out: out.num_rows(),
            bytes,
            wall,
            exec_stats,
        })
    }

    /// Records a finished run's measurements and releases its payload.
    fn commit(&mut self, p: &PreparedShard, run: ShardRun) -> Vec<u8> {
        self.stats.borrow_mut().timings.push(ShardTiming {
            task: p.task,
            op_id: p.op_id,
            op: p.op_name.clone(),
            shard: p.shard,
            shards: p.shards,
            rows_in: p.rows_in,
            rows_out: run.rows_out,
            output_bytes: run.bytes.len() as u64,
            wall: run.wall,
            exec_stats: run.exec_stats,
        });
        run.bytes
    }
}

impl TaskExecutor for GraphExecutor {
    fn execute(&mut self, t: TaskId, inputs: &[(TaskId, &[u8])]) -> Result<Vec<u8>, String> {
        let p = self.prepare(t, inputs)?;
        let run = Self::run_shard(&self.tables, &p, self.compress, self.adaptive)?;
        Ok(self.commit(&p, run))
    }

    /// Same-instant batch: staging and commits stay serial in task-ID
    /// order (the order the cluster hands us), while the shard kernels —
    /// pure functions of their staged inputs — overlap on the shared
    /// worker pool. Output bytes, row counts, and every stat except wall
    /// nanos are identical to running the batch one task at a time.
    fn execute_ready(
        &mut self,
        tasks: &[(TaskId, Vec<(TaskId, &[u8])>)],
    ) -> Vec<Result<Vec<u8>, String>> {
        let prepared: Vec<Result<PreparedShard, String>> = tasks
            .iter()
            .map(|(t, inputs)| self.prepare(*t, inputs))
            .collect();
        let prepared = Arc::new(prepared);
        let prepared2 = Arc::clone(&prepared);
        let tables = Arc::clone(&self.tables);
        let compress = self.compress;
        let adaptive = self.adaptive;
        let runs = pool::global().run_indexed(prepared.len(), move |i| match &prepared2[i] {
            Ok(p) => Some(Self::run_shard(&tables, p, compress, adaptive)),
            Err(_) => None,
        });
        prepared
            .iter()
            .zip(runs)
            .map(|(p, run)| match (p, run) {
                (Ok(p), Some(Ok(run))) => Ok(self.commit(p, run)),
                (Ok(_), Some(Err(e))) => Err(e),
                (Err(e), _) => Err(e.clone()),
                (Ok(_), None) => unreachable!("prepared shard must produce a run"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_consumer_detection_sees_through_fusion() {
        let join = ExecOp::Join {
            left_key: "k".into(),
            right_key: "k".into(),
            right_rows: 10,
        };
        let filt = ExecOp::Filter { conjuncts: vec![] };
        assert!(is_join_consumer(&join));
        assert!(is_join_consumer(&ExecOp::Fused(vec![
            join.clone(),
            filt.clone()
        ])));
        assert!(!is_join_consumer(&filt));
        assert!(!is_join_consumer(&ExecOp::Fused(vec![filt, join])));
    }
}

//! `skadi-cli` — run SQL against a generated demo dataset, twice:
//! *actually* (the local execution engine computes real answers) and
//! *at scale* (the simulated cluster prices the same query as a
//! distributed job).
//!
//! ```text
//! cargo run -p skadi --bin skadi-cli -- "SELECT kind, sum(value) FROM events GROUP BY kind"
//! cargo run -p skadi --bin skadi-cli            # runs a demo query set
//! cargo run -p skadi --bin skadi-cli -- trace   # trace the quickstart pipeline
//! ```
//!
//! `--distributed` executes each query **through the simulated cluster's
//! data plane** instead of the local engine: the plan is sharded
//! (`--parallelism N`, default 4), every task runs its operator kernel on
//! real record batches, and the answer is collected from the sink task's
//! stored payload — byte-identical to the local engine's. Measured
//! per-shard wall-clock prints beside the simulated pricing:
//!
//! ```text
//! cargo run -p skadi --bin skadi-cli -- --distributed --parallelism 8 "SELECT ..."
//! ```
//!
//! `--threads N` (accepted by the default exec path, `--distributed`,
//! and `serve`) sizes the process-wide morsel-execution pool. It changes
//! only wall-clock time: answers, profiles, and simulated pricing are
//! identical at every thread count.
//!
//! `--placement POLICY` selects the scheduler's placement policy
//! (`data-centric`, `load-only`, `round-robin`, `load-aware`,
//! `work-stealing`); `--adaptive` turns on adaptive query execution —
//! a pilot pass re-plans sparse shuffle keys and joins build on the
//! observed smaller side. Answers are byte-identical under every
//! combination; only the simulated schedule (and pricing) moves:
//!
//! ```text
//! cargo run -p skadi --bin skadi-cli -- --distributed --placement load-aware --adaptive "SELECT ..."
//! ```
//!
//! The `trace` subcommand runs the Figure-1 integrated pipeline with
//! causal span tracing enabled, writes a Chrome `trace_event` JSON file
//! (open it at <https://ui.perfetto.dev>), and prints the per-job
//! critical-path summary:
//!
//! ```text
//! cargo run -p skadi --bin skadi-cli -- trace my-trace.json
//! ```
//!
//! Prefixing a query with `EXPLAIN ANALYZE` prints the annotated plan
//! tree — per-operator rows/bytes/wall time with per-shard
//! min/median/max and `[SKEW]` flags — instead of the plain timing
//! lines. Works both locally and with `--distributed`:
//!
//! ```text
//! cargo run -p skadi --bin skadi-cli -- --distributed "EXPLAIN ANALYZE SELECT ..."
//! ```
//!
//! The `serve` subcommand opens the native wire-protocol front door: it
//! binds a TCP listener over the demo dataset and serves concurrent
//! client sessions (handshake, streamed result blocks, progress and
//! exception packets, bounded FIFO admission). `client` is the matching
//! native client: it connects, handshakes, runs queries, and prints the
//! reassembled result batches:
//!
//! ```text
//! cargo run -p skadi --bin skadi-cli -- serve --addr 127.0.0.1:4711 [--distributed] [--rows N] [--threads N]
//! cargo run -p skadi --bin skadi-cli -- client --addr 127.0.0.1:4711 "SELECT ..." ...
//! ```
//!
//! The `metrics` subcommand runs the demo query set through the
//! distributed data plane and dumps the merged runtime metrics in
//! Prometheus text exposition format (counters, and histograms as
//! summaries with p50/p99 — including the per-query `query_latency`
//! histogram). `--json` dumps the per-query profile artifacts instead;
//! `--check` validates the exposition's line grammar and exits non-zero
//! on violations (the CI gate):
//!
//! ```text
//! cargo run -p skadi --bin skadi-cli -- metrics [--json | --check] [--parallelism N]
//! ```
//!
//! The `chaos` subcommand replays one seeded schedule from the chaos
//! fault harness (the same generator `tests/chaos.rs` drives) with
//! tracing on, prints the injected schedule and the verdict, and writes
//! the traced chaos run as Chrome JSON. `--permanent` switches to the
//! unrecoverable-loss generator and `--multi` to the staggered
//! multi-job workload:
//!
//! ```text
//! cargo run -p skadi --bin skadi-cli -- chaos --seed 17 [--ft lineage|repl|ec] [--permanent | --multi] [out.json]
//! ```

use skadi::arrow::array::Array;
use skadi::arrow::batch::RecordBatch;
use skadi::arrow::datatype::DataType;
use skadi::arrow::schema::{Field, Schema};
use skadi::dcsim::rng::DetRng;
use skadi::frontends::exec::MemDb;
use skadi::prelude::*;

/// Generates the demo `events`/`users` tables (seeded, so every run sees
/// identical data).
fn demo_db(rows: usize) -> MemDb {
    let mut rng = DetRng::seed(2023);
    let kinds = ["click", "view", "purchase", "scroll"];
    let countries = ["DE", "US", "JP", "BR", "IN"];

    let users = 1 + rows / 10;
    let user_ids: Vec<i64> = (0..rows).map(|_| rng.below(users as u64) as i64).collect();
    let kind_col: Vec<&str> = (0..rows).map(|_| *rng.pick(&kinds)).collect();
    let values: Vec<f64> = (0..rows).map(|_| rng.unit() * 10.0).collect();
    let ts: Vec<i64> = (0..rows as i64).collect();

    let events = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("user_id", DataType::Int64, false),
            Field::new("ts", DataType::Int64, false),
            Field::new("kind", DataType::Utf8, false),
            Field::new("value", DataType::Float64, false),
        ]),
        vec![
            Array::from_i64(user_ids),
            Array::from_i64(ts),
            Array::from_utf8(&kind_col),
            Array::from_f64(values),
        ],
    )
    .expect("demo events build");

    let country_col: Vec<&str> = (0..users).map(|_| *rng.pick(&countries)).collect();
    let ages: Vec<i64> = (0..users).map(|_| 18 + rng.below(60) as i64).collect();
    let users_batch = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("user_id", DataType::Int64, false),
            Field::new("country", DataType::Utf8, false),
            Field::new("age", DataType::Int64, false),
        ]),
        vec![
            Array::from_i64((0..users as i64).collect()),
            Array::from_utf8(&country_col),
            Array::from_i64(ages),
        ],
    )
    .expect("demo users build");

    MemDb::new()
        .register("events", events)
        .register("users", users_batch)
}

fn run_query(db: &MemDb, session: &Session, sql: &str) {
    println!("sql> {sql}");
    if skadi::frontends::sql::strip_explain_analyze(sql).is_some() {
        // EXPLAIN ANALYZE: execute for real, then print the annotated
        // plan tree instead of the flat timing line.
        match db.query_profiled(sql) {
            Ok((result, profile)) => {
                println!("-- answer ({} rows) --", result.num_rows());
                print!("{result}");
                print!("{}", profile.render(true));
                println!();
            }
            Err(e) => println!("!! {e}\n"),
        }
        return;
    }
    match db.query_traced(sql) {
        Ok((result, trace)) => {
            println!("-- answer ({} rows) --", result.num_rows());
            print!("{result}");
            // Per-operator wall-clock, from the engine's exec spans
            // (skipping the root "query" umbrella span). Operator names
            // match the planner's FlowGraph vertices, so this column
            // reads side by side with the simulated pricing below.
            let ops: Vec<String> = trace
                .spans()
                .iter()
                .filter(|s| s.parent.is_some())
                .map(|s| {
                    format!(
                        "{} {:.0}us ({} rows)",
                        s.name,
                        s.duration().as_micros_f64(),
                        s.attr("rows_out").unwrap_or("?"),
                    )
                })
                .collect();
            println!("-- measured locally: {} --", ops.join(", "));
        }
        Err(e) => {
            println!("!! {e}");
            return;
        }
    }
    match session.sql(sql) {
        Ok(report) => {
            println!(
                "-- at cluster scale: {} tasks on {} (cpu {}, gpu {}, fpga {}), makespan {}, {} B moved --\n",
                report.physical_vertices,
                session.topology().summary(),
                report.backends.cpu,
                report.backends.gpu,
                report.backends.fpga,
                report.stats.makespan,
                report.stats.net.network_bytes(),
            );
        }
        Err(e) => println!("!! simulation failed: {e}\n"),
    }
}

/// One query through the distributed data plane: real shard execution
/// inside the simulated cluster, measured shard timings beside the
/// simulated pricing.
fn run_query_distributed(db: &MemDb, session: &Session, sql: &str) {
    println!("sql> {sql}");
    let run = match session.sql_distributed(db, sql) {
        Ok(run) => run,
        Err(e) => {
            println!("!! {e}\n");
            return;
        }
    };
    println!("-- answer ({} rows, distributed) --", run.batch.num_rows());
    print!("{}", run.batch);
    if skadi::frontends::sql::strip_explain_analyze(sql).is_some() {
        // EXPLAIN ANALYZE: the annotated plan tree with per-shard
        // min/median/max and skew flags replaces the flat timing line.
        if let Some(profile) = &run.report.profile {
            print!("{}", profile.render(true));
        }
        println!(
            "-- at cluster scale: {} tasks, makespan {}, {} retries, {} B measured output --\n",
            run.report.physical_vertices,
            run.report.stats.makespan,
            run.report.stats.retries,
            run.report.stats.measured_output_bytes.values().sum::<u64>(),
        );
        return;
    }
    // Collapse per-shard timings into one line per operator.
    let mut by_op: Vec<(String, u32, f64, usize, u64)> = Vec::new();
    for t in &run.data_plane.timings {
        match by_op.iter_mut().find(|(op, ..)| *op == t.op) {
            Some((_, shards, wall, rows, bytes)) => {
                *shards = (*shards).max(t.shards);
                *wall += t.wall.as_secs_f64() * 1e6;
                *rows += t.rows_out;
                *bytes += t.output_bytes;
            }
            None => by_op.push((
                t.op.clone(),
                t.shards,
                t.wall.as_secs_f64() * 1e6,
                t.rows_out,
                t.output_bytes,
            )),
        }
    }
    let ops: Vec<String> = by_op
        .iter()
        .map(|(op, shards, wall, rows, bytes)| {
            format!("{op} x{shards} {wall:.0}us ({rows} rows, {bytes} B)")
        })
        .collect();
    println!("-- measured shards: {} --", ops.join(", "));
    if !run.replans.is_empty() || run.data_plane.build_swaps() > 0 {
        let plans: Vec<String> = run
            .replans
            .iter()
            .map(|r| {
                format!(
                    "op {} on '{}': {} -> {} shards",
                    r.vertex, r.key, r.from_shards, r.to_shards
                )
            })
            .collect();
        println!(
            "-- adaptive: {} re-plan(s) [{}], {} join build swap(s) --",
            run.replans.len(),
            plans.join("; "),
            run.data_plane.build_swaps(),
        );
    }
    println!(
        "-- at cluster scale: {} tasks, makespan {}, {} retries, {} B measured output --\n",
        run.report.physical_vertices,
        run.report.stats.makespan,
        run.report.stats.retries,
        run.report.stats.measured_output_bytes.values().sum::<u64>(),
    );
}

/// `skadi-cli trace [output.json]`: run the quickstart pipeline with
/// tracing on, export Chrome trace_event JSON, print the critical path.
fn run_trace(out_path: &str) {
    let session = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .runtime(RuntimeConfig::skadi_gen2().with_tracing(true))
        .build();
    let report = skadi::pipeline::fig1_pipeline(&session, 1)
        .expect("quickstart pipeline builds")
        .run()
        .expect("quickstart pipeline runs");

    let json = report.chrome_trace();
    let spans = report.stats.trace.len();
    std::fs::write(out_path, &json).expect("write trace file");
    println!("{report}\n");
    println!("{}", report.critical_path_summary(5));
    println!("\nwrote {spans} spans ({} bytes) to {out_path}", json.len());
    println!("open it at https://ui.perfetto.dev (or chrome://tracing)");
}

/// `skadi-cli chaos --seed N [--ft MODE] [--permanent | --multi]
/// [out.json]`: replay one chaos schedule with tracing and invariant
/// checks on. `--permanent` replays the unrecoverable-loss generator
/// (clean `TaskAbandoned`/`Stalled` counts as a pass); `--multi` replays
/// the staggered multi-job workload under the survivable generator.
fn run_chaos_replay(args: &[String]) {
    use skadi::runtime::chaos::{
        chaos_job, chaos_jobs, chaos_plan, chaos_plan_permanent, chaos_topology,
        run_chaos_multi_with, run_chaos_permanent_with, run_chaos_with,
    };
    use skadi::runtime::config::FtMode;
    use skadi::runtime::error::RuntimeError;

    let mut seed = 0u64;
    let mut ft = FtMode::Lineage;
    let mut permanent = false;
    let mut multi = false;
    let mut out = "skadi-chaos.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes a number");
            }
            "--ft" => {
                ft = match it.next().map(String::as_str) {
                    Some("lineage") => FtMode::Lineage,
                    Some("repl") | Some("replication") => FtMode::Replication(2),
                    Some("ec") | Some("rs") => {
                        FtMode::ErasureCoding(skadi::store::ec::EcConfig::RS_4_2)
                    }
                    other => panic!("--ft takes lineage|repl|ec, got {other:?}"),
                };
            }
            "--permanent" => permanent = true,
            "--multi" => multi = true,
            path => out = path.to_string(),
        }
    }
    assert!(
        !(permanent && multi),
        "--permanent and --multi are separate suites"
    );

    let topo = chaos_topology();
    let plan = if permanent {
        chaos_plan_permanent(&topo, seed)
    } else {
        chaos_plan(&topo, seed)
    };
    if multi {
        let jobs = chaos_jobs(seed);
        let total: usize = jobs.iter().map(|(j, _)| j.len()).sum();
        println!(
            "chaos seed {seed} under {ft:?}: {} jobs, {total} tasks",
            jobs.len()
        );
        for (j, at) in &jobs {
            println!("  job '{}' arrives at {at} ({} tasks)", j.name, j.len());
        }
    } else {
        let job = chaos_job(seed);
        println!(
            "chaos seed {seed} under {ft:?}{}: {} tasks",
            if permanent { " (permanent loss)" } else { "" },
            job.len()
        );
    }
    for f in plan.failures() {
        match f.recovers_at {
            Some(r) => println!("  kill node {} at {} (recovers {r})", f.node.0, f.at),
            None => println!("  kill node {} at {} (permanent)", f.node.0, f.at),
        }
    }
    for s in plan.slowdowns() {
        println!(
            "  slow node {} x{:.1} during [{}, {})",
            s.node.0, s.factor, s.from, s.until
        );
    }

    // Normalize the three suites into one (verdict-line, stats, diff)
    // shape so the reporting below is shared.
    let outcome = if multi {
        run_chaos_multi_with(seed, ft, true).map(|v| {
            let eq = v.equivalent();
            (eq, v.stats, v.baseline, v.chaotic)
        })
    } else if permanent {
        run_chaos_permanent_with(seed, ft, true).map(|v| {
            let eq = v.equivalent();
            (eq, v.stats, v.baseline, v.chaotic)
        })
    } else {
        run_chaos_with(seed, ft, true).map(|v| {
            let eq = v.equivalent();
            (eq, v.stats, v.baseline, v.chaotic)
        })
    };

    match outcome {
        Ok((equivalent, stats, baseline, chaotic)) => {
            println!(
                "verdict: {} ({} finished, {} retries, {} elections, makespan {})",
                if equivalent {
                    "EQUIVALENT to failure-free run"
                } else {
                    "DIVERGED from failure-free run"
                },
                stats.finished,
                stats.retries,
                stats.metrics.counter("elections"),
                stats.makespan,
            );
            if !equivalent {
                for (b, c) in baseline.iter().zip(chaotic.iter()) {
                    if b != c {
                        println!("  {b:?} vs {c:?}");
                    }
                }
            }
            let json = stats.trace.to_chrome_json();
            std::fs::write(&out, &json).expect("write trace file");
            println!(
                "wrote {} spans ({} bytes) to {out}",
                stats.trace.len(),
                json.len()
            );
            println!("open it at https://ui.perfetto.dev (or chrome://tracing)");
            if !equivalent {
                std::process::exit(1);
            }
        }
        Err(e @ (RuntimeError::TaskAbandoned(_) | RuntimeError::Stalled { .. })) if permanent => {
            // Unrecoverable schedules are allowed — required, when they
            // destroy needed capacity — to end in these two errors.
            println!("verdict: CLEAN FAILURE under permanent loss: {e}");
        }
        Err(e) => {
            println!("verdict: RUN FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// `skadi-cli metrics [--json | --check] [--parallelism N]`: run the
/// demo query set through the distributed data plane and dump the merged
/// runtime metrics in Prometheus text exposition format. `--json` dumps
/// the per-query profile artifacts instead; `--check` self-validates the
/// exposition's line grammar (CI gate) and exits non-zero on violations.
fn run_metrics(args: &[String]) {
    use skadi::dcsim::trace::{validate_prometheus, Metrics};

    let mut json = false;
    let mut check = false;
    let mut parallelism = 4u32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--check" => check = true,
            "--parallelism" => {
                parallelism = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--parallelism takes a number");
            }
            other => panic!("metrics takes --json, --check, --parallelism N; got {other:?}"),
        }
    }

    let db = demo_db(10_000);
    let session = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .parallelism(parallelism)
        .runtime(RuntimeConfig::skadi_gen2())
        .build();

    let mut merged = Metrics::default();
    let mut profiles = Vec::new();
    for q in demo_queries() {
        let run = session
            .sql_distributed(&db, &q)
            .expect("demo query runs distributed");
        merged.merge(&run.report.stats.metrics);
        if let Some(p) = run.report.profile {
            profiles.push(p);
        }
    }

    if json {
        // Machine-readable profile artifacts as one JSON array, one
        // object per query (deterministic for a given seed: wall times
        // are omitted from the artifact).
        println!("[");
        for (i, p) in profiles.iter().enumerate() {
            let sep = if i + 1 == profiles.len() { "" } else { "," };
            println!("{}{sep}", p.to_json().trim_end());
        }
        println!("]");
        return;
    }
    let text = merged.to_prometheus();
    if check {
        match validate_prometheus(&text) {
            Ok(n) => println!("prometheus exposition OK: {n} series"),
            Err(e) => {
                eprintln!("prometheus exposition INVALID: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    print!("{text}");
}

/// `skadi-cli serve [--addr HOST:PORT] [--rows N] [--distributed]
/// [--parallelism N] [--threads N]`: serve the demo dataset over the
/// native wire protocol until killed.
fn run_serve(args: &[String]) {
    use skadi::server::{Server, ServerConfig};

    let mut addr = "127.0.0.1:4711".to_string();
    let mut rows = 10_000usize;
    let mut distributed = false;
    let mut parallelism = 4u32;
    let mut threads: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().expect("--addr takes HOST:PORT").clone(),
            "--rows" => {
                rows = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--rows takes a number");
            }
            "--distributed" => distributed = true,
            "--parallelism" => {
                parallelism = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--parallelism takes a number");
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--threads takes a number"),
                );
            }
            other => {
                panic!(
                    "serve takes --addr, --rows, --distributed, --parallelism, --threads; \
                     got {other:?}"
                )
            }
        }
    }

    let db = demo_db(rows);
    let session = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .parallelism(parallelism)
        .runtime(RuntimeConfig::skadi_gen2())
        .build();
    let cfg = ServerConfig {
        distributed,
        threads,
        ..ServerConfig::default()
    };
    let server = Server::new(session, db, cfg);
    let listener = std::net::TcpListener::bind(&addr).expect("bind listener");
    println!(
        "skadi serving {rows}-row demo dataset on {addr} ({} engine); ctrl-c to stop",
        if distributed { "distributed" } else { "local" }
    );
    server.serve_tcp(listener).expect("accept loop");
}

/// `skadi-cli client [--addr HOST:PORT] ["SQL" ...]`: connect to a
/// running `serve`, run the queries (default: the demo set), and print
/// each reassembled result.
fn run_client(args: &[String]) {
    use skadi::wire::Client;

    let mut addr = "127.0.0.1:4711".to_string();
    let mut queries: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().expect("--addr takes HOST:PORT").clone(),
            q => queries.push(q.to_string()),
        }
    }
    if queries.is_empty() {
        queries = demo_queries();
    }

    let stream = std::net::TcpStream::connect(&addr).expect("connect to server");
    let mut client = Client::connect(stream, "skadi-cli").expect("handshake");
    println!("connected to {:?} at {addr}", client.server_name);
    for q in queries {
        println!("sql> {q}");
        match client.query(&q) {
            Ok(r) => {
                println!(
                    "-- answer ({} rows in {} block(s), {} B on the wire) --",
                    r.batch.num_rows(),
                    r.chunks,
                    r.payload_bytes,
                );
                print!("{}", r.batch);
                println!();
            }
            Err(e) => println!("!! {e}\n"),
        }
    }
}

/// The default demo query set (shared by the main loop and `metrics`).
fn demo_queries() -> Vec<String> {
    vec![
        "SELECT kind, sum(value) AS total, count(*) AS n FROM events GROUP BY kind ORDER BY total DESC".to_string(),
        "SELECT country, avg(value) AS mean FROM events JOIN users ON user_id = user_id GROUP BY country ORDER BY mean DESC LIMIT 3".to_string(),
        "SELECT user_id, value FROM events WHERE value > 9.9 AND kind = 'purchase' ORDER BY value DESC LIMIT 5".to_string(),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("metrics") {
        run_metrics(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("chaos") {
        run_chaos_replay(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        run_serve(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("client") {
        run_client(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("trace") {
        let out = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("skadi-trace.json");
        run_trace(out);
        return;
    }
    let mut distributed = false;
    let mut adaptive = false;
    let mut placement: Option<PlacementPolicy> = None;
    let mut parallelism = 4u32;
    let mut threads: Option<usize> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--distributed" => distributed = true,
            "--adaptive" => adaptive = true,
            "--placement" => {
                let name = it.next().expect("--placement takes a policy name");
                placement = Some(name.parse().unwrap_or_else(|e| panic!("{e}")));
            }
            "--parallelism" => {
                parallelism = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--parallelism takes a number");
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--threads takes a number"),
                );
            }
            _ => rest.push(a),
        }
    }
    let args = rest;

    let db = demo_db(10_000);
    let mut runtime = RuntimeConfig::skadi_gen2();
    if let Some(p) = placement {
        runtime = runtime.with_placement(p);
    }
    let mut builder = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .parallelism(parallelism)
        .adaptive(adaptive)
        .runtime(runtime);
    if let Some(n) = threads {
        builder = builder.threads(n);
    }
    let session = builder.build();

    let queries: Vec<String> = if args.is_empty() {
        demo_queries()
    } else {
        args
    };

    println!(
        "skadi-cli — demo dataset: 10,000 events / ~1,000 users (seeded){}\n",
        if distributed {
            format!(", distributed data plane x{parallelism}")
        } else {
            String::new()
        }
    );
    for q in queries {
        if distributed {
            run_query_distributed(&db, &session, &q);
        } else {
            run_query(&db, &session, &q);
        }
    }
}

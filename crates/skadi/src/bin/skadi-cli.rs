//! `skadi-cli` — run SQL against a generated demo dataset, twice:
//! *actually* (the local execution engine computes real answers) and
//! *at scale* (the simulated cluster prices the same query as a
//! distributed job).
//!
//! ```text
//! cargo run -p skadi --bin skadi-cli -- "SELECT kind, sum(value) FROM events GROUP BY kind"
//! cargo run -p skadi --bin skadi-cli            # runs a demo query set
//! ```

use skadi::arrow::array::Array;
use skadi::arrow::batch::RecordBatch;
use skadi::arrow::datatype::DataType;
use skadi::arrow::schema::{Field, Schema};
use skadi::dcsim::rng::DetRng;
use skadi::frontends::exec::MemDb;
use skadi::prelude::*;

/// Generates the demo `events`/`users` tables (seeded, so every run sees
/// identical data).
fn demo_db(rows: usize) -> MemDb {
    let mut rng = DetRng::seed(2023);
    let kinds = ["click", "view", "purchase", "scroll"];
    let countries = ["DE", "US", "JP", "BR", "IN"];

    let users = 1 + rows / 10;
    let user_ids: Vec<i64> = (0..rows).map(|_| rng.below(users as u64) as i64).collect();
    let kind_col: Vec<&str> = (0..rows).map(|_| *rng.pick(&kinds)).collect();
    let values: Vec<f64> = (0..rows).map(|_| rng.unit() * 10.0).collect();
    let ts: Vec<i64> = (0..rows as i64).collect();

    let events = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("user_id", DataType::Int64, false),
            Field::new("ts", DataType::Int64, false),
            Field::new("kind", DataType::Utf8, false),
            Field::new("value", DataType::Float64, false),
        ]),
        vec![
            Array::from_i64(user_ids),
            Array::from_i64(ts),
            Array::from_utf8(&kind_col),
            Array::from_f64(values),
        ],
    )
    .expect("demo events build");

    let country_col: Vec<&str> = (0..users).map(|_| *rng.pick(&countries)).collect();
    let ages: Vec<i64> = (0..users).map(|_| 18 + rng.below(60) as i64).collect();
    let users_batch = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("user_id", DataType::Int64, false),
            Field::new("country", DataType::Utf8, false),
            Field::new("age", DataType::Int64, false),
        ]),
        vec![
            Array::from_i64((0..users as i64).collect()),
            Array::from_utf8(&country_col),
            Array::from_i64(ages),
        ],
    )
    .expect("demo users build");

    MemDb::new()
        .register("events", events)
        .register("users", users_batch)
}

fn run_query(db: &MemDb, session: &Session, sql: &str) {
    println!("sql> {sql}");
    match db.query(sql) {
        Ok(result) => {
            println!("-- answer ({} rows) --", result.num_rows());
            print!("{result}");
        }
        Err(e) => {
            println!("!! {e}");
            return;
        }
    }
    match session.sql(sql) {
        Ok(report) => {
            println!(
                "-- at cluster scale: {} tasks on {} (cpu {}, gpu {}, fpga {}), makespan {}, {} B moved --\n",
                report.physical_vertices,
                session.topology().summary(),
                report.backends.cpu,
                report.backends.gpu,
                report.backends.fpga,
                report.stats.makespan,
                report.stats.net.network_bytes(),
            );
        }
        Err(e) => println!("!! simulation failed: {e}\n"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let db = demo_db(10_000);
    let session = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .runtime(RuntimeConfig::skadi_gen2())
        .build();

    let queries: Vec<String> = if args.is_empty() {
        vec![
            "SELECT kind, sum(value) AS total, count(*) AS n FROM events GROUP BY kind ORDER BY total DESC".to_string(),
            "SELECT country, avg(value) AS mean FROM events JOIN users ON user_id = user_id GROUP BY country ORDER BY mean DESC LIMIT 3".to_string(),
            "SELECT user_id, value FROM events WHERE value > 9.9 AND kind = 'purchase' ORDER BY value DESC LIMIT 5".to_string(),
        ]
    } else {
        args
    };

    println!("skadi-cli — demo dataset: 10,000 events / ~1,000 users (seeded)\n");
    for q in queries {
        run_query(&db, &session, &q);
    }
}

//! # Skadi — a distributed runtime for data systems in disaggregated data centers
//!
//! A from-scratch Rust reproduction of *"Skadi: Building a Distributed
//! Runtime for Data Systems in Disaggregated Data Centers"* (Hu et al.,
//! HotOS '23). Skadi is the "narrow waist" between data systems and
//! data-center hardware: a **tiered access layer** (declarative frontends
//! -> logical FlowGraph -> physical sharded graph) on top of a **stateful
//! serverless runtime** (tasks, futures, raylets, a tiered caching layer)
//! that transparently evolves with disaggregated hardware.
//!
//! The hardware itself — DPUs, GPUs, FPGAs, disaggregated memory — is a
//! deterministic discrete-event simulation ([`skadi_dcsim`]), so every
//! experiment in the paper's design space runs reproducibly on a laptop.
//!
//! ## Quickstart
//!
//! ```
//! use skadi::prelude::*;
//!
//! // A cluster with servers, GPU/FPGA devices, disaggregated memory, and
//! // durable storage — all simulated.
//! let session = Session::builder()
//!     .topology(presets::small_disagg_cluster())
//!     .catalog(Catalog::demo())
//!     .build();
//!
//! // Declarative in, measured execution out.
//! let report = session
//!     .sql("SELECT kind, sum(value) FROM events WHERE value > 0.5 GROUP BY kind")
//!     .unwrap();
//! assert!(report.stats.finished > 0);
//! println!("{report}");
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`skadi_dcsim`] | discrete-event simulator of the disaggregated DC |
//! | [`skadi_arrow`] | columnar shared format (+ costly marshalling baseline) |
//! | [`skadi_store`] | object store, tiered caching layer, replication, EC |
//! | [`skadi_ownership`] | heterogeneity-aware ownership table, pull/push resolution |
//! | [`skadi_ir`] | multi-level IR, passes (incl. cross-domain fusion), backends |
//! | [`skadi_flowgraph`] | logical FlowGraph + physical sharded graph |
//! | [`skadi_frontends`] | SQL / MapReduce / graph / ML frontends |
//! | [`skadi_runtime`] | stateful serverless runtime (raylets, schedulers, lineage) |
//! | `skadi` (this crate) | the session API gluing the tiers together |

pub mod adaptive;
pub mod distributed;
pub mod pipeline;
pub mod report;
pub mod server;
pub mod session;

pub use adaptive::{AdaptivePlan, Replan};
pub use distributed::{DataPlaneStats, GraphExecutor, ShardTiming};
pub use pipeline::PipelineBuilder;
pub use report::JobReport;
pub use server::{Server, ServerConfig, SessionEnd};
pub use session::{DistributedRun, Session, SessionBuilder, SkadiError};

// Re-export the component crates under stable names.
pub use skadi_arrow as arrow;
pub use skadi_dcsim as dcsim;
pub use skadi_flowgraph as flowgraph;
pub use skadi_frontends as frontends;
pub use skadi_ir as ir;
pub use skadi_ownership as ownership;
pub use skadi_runtime as runtime;
pub use skadi_store as store;
pub use skadi_wire as wire;

/// Everything a typical user needs.
pub mod prelude {
    pub use crate::pipeline::PipelineBuilder;
    pub use crate::report::JobReport;
    pub use crate::session::{Session, SessionBuilder, SkadiError};
    pub use skadi_dcsim::topology::presets;
    pub use skadi_dcsim::topology::{AccelKind, Topology, TopologyBuilder};
    pub use skadi_frontends::catalog::Catalog;
    pub use skadi_frontends::graph::VertexProgram;
    pub use skadi_frontends::mapreduce::MapReduceJob;
    pub use skadi_frontends::ml::TrainingPipeline;
    pub use skadi_frontends::streaming::StreamJob;
    pub use skadi_ir::{Backend, BackendPolicy};
    pub use skadi_runtime::{
        Deployment, FailurePlan, FtMode, Generation, JobStats, PlacementPolicy, RuntimeConfig,
    };
}

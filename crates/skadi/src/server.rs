//! The network front door: a concurrent-session query server speaking
//! the native wire protocol ([`skadi_wire`]).
//!
//! A [`Server`] owns a [`Session`] and a [`MemDb`] of shared tables and
//! serves any number of concurrent client connections, each over any
//! `Read + Write` byte stream: a real `TcpStream` ([`Server::serve_tcp`])
//! or an in-memory duplex pair ([`Server::connect`]) that runs the same
//! codec deterministically for tests.
//!
//! Per connection the lifecycle is: handshake (version check, capability
//! intersection), then a loop of `Query` → streamed `Data` blocks (+
//! `Progress` when negotiated) → `EndOfStream`, or a single `Exception`
//! carrying the frontend's human-readable error. Malformed frames,
//! oversized length prefixes, unexpected packets, and mid-query
//! disconnects all tear the connection down cleanly — never a panic, a
//! hang, or a partial result passed off as complete.
//!
//! Admission control is a bounded FIFO: at most
//! [`ServerConfig::max_concurrent`] queries execute at once and at most
//! [`ServerConfig::max_queued`] wait; the next admitted query is always
//! the longest-waiting one, and because each connection runs one query
//! at a time FIFO order *is* per-session fairness — no session can get a
//! second query admitted while another session's first is still waiting.
//! Beyond the bound, queries are rejected immediately with an
//! `Exception` (code [`wire::packet::code::ADMISSION`]) instead of
//! queueing unboundedly.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use skadi_frontends::exec::MemDb;
use skadi_frontends::sql;
use skadi_wire as wire;
use wire::codec::{read_packet, write_packet, WireError};
use wire::packet::{code, Packet, CAP_COMPRESSION, CAP_PROGRESS, PROTOCOL_VERSION};

use crate::session::{Session, SkadiError};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Name advertised in the `ServerHello`.
    pub name: String,
    /// Capability bits the server supports (intersected with the
    /// client's at handshake).
    pub capabilities: u32,
    /// Maximum accepted frame length (tag + body).
    pub max_frame: usize,
    /// Rows per streamed `Data` block.
    pub block_rows: usize,
    /// Maximum queries executing at once.
    pub max_concurrent: usize,
    /// Maximum queries waiting for an execution slot before new ones
    /// are rejected with an admission exception.
    pub max_queued: usize,
    /// Execute through the simulated cluster's distributed data plane
    /// ([`Session::sql_distributed`]) instead of the local engine.
    pub distributed: bool,
    /// Worker threads in the process-wide execution pool that admitted
    /// queries' kernels run on (`None` keeps the pool's current size —
    /// `SKADI_THREADS` or the host's available parallelism). All
    /// concurrent sessions share this one pool, so compute stays bounded
    /// at `threads` cores no matter how many queries are admitted.
    pub threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            name: "skadi".to_string(),
            capabilities: CAP_PROGRESS | CAP_COMPRESSION,
            max_frame: wire::DEFAULT_MAX_FRAME,
            block_rows: 1024,
            max_concurrent: 8,
            max_queued: 64,
            distributed: false,
            threads: None,
        }
    }
}

/// How a connection ended, as observed by [`Server::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client closed at a frame boundary (normal teardown).
    CleanClose,
    /// The client vanished mid-frame or mid-result (socket error /
    /// broken pipe). The in-flight query's work is discarded.
    Disconnected,
    /// The client violated the protocol (garbage bytes, oversized
    /// frame, unexpected packet, bad handshake). An `Exception` was
    /// sent best-effort before closing.
    ProtocolError,
}

/// Bounded FIFO admission: tickets are granted strictly in arrival
/// order, at most `max_running` at a time, with at most `max_queued`
/// waiting.
pub struct Admission {
    state: Mutex<AdmState>,
    cond: Condvar,
    max_running: usize,
    max_queued: usize,
}

struct AdmState {
    running: usize,
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// Returned by [`Admission::try_acquire`] when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionFull;

/// An execution slot; releases (and wakes the next waiter) on drop.
pub struct AdmissionGuard<'a> {
    adm: &'a Admission,
}

impl Admission {
    /// Creates an admission gate with the given bounds.
    pub fn new(max_running: usize, max_queued: usize) -> Self {
        Admission {
            state: Mutex::new(AdmState {
                running: 0,
                queue: VecDeque::new(),
                next_ticket: 0,
            }),
            cond: Condvar::new(),
            max_running: max_running.max(1),
            max_queued,
        }
    }

    /// Takes a ticket and blocks until it reaches the head of the queue
    /// *and* an execution slot frees up. Returns [`AdmissionFull`]
    /// without blocking when the waiting line is at capacity.
    pub fn try_acquire(&self) -> Result<AdmissionGuard<'_>, AdmissionFull> {
        let mut st = self.state.lock().expect("admission lock");
        if st.queue.len() >= self.max_queued && st.running >= self.max_running {
            return Err(AdmissionFull);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        while st.queue.front() != Some(&ticket) || st.running >= self.max_running {
            st = self.cond.wait(st).expect("admission lock");
        }
        st.queue.pop_front();
        st.running += 1;
        // The new head may be runnable too (when several slots freed at
        // once); wake it.
        self.cond.notify_all();
        Ok(AdmissionGuard { adm: self })
    }

    /// Queries currently executing.
    pub fn running(&self) -> usize {
        self.state.lock().expect("admission lock").running
    }

    /// Queries currently waiting for a slot.
    pub fn queued(&self) -> usize {
        self.state.lock().expect("admission lock").queue.len()
    }
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.adm.state.lock().expect("admission lock");
        st.running -= 1;
        drop(st);
        self.adm.cond.notify_all();
    }
}

/// A concurrent-session wire-protocol server over shared tables.
pub struct Server {
    session: Session,
    db: MemDb,
    cfg: ServerConfig,
    admission: Admission,
}

impl Server {
    /// Creates a server over the given session and shared tables.
    pub fn new(session: Session, db: MemDb, cfg: ServerConfig) -> Arc<Self> {
        if let Some(n) = cfg.threads {
            skadi_frontends::exec::pool::set_global_threads(n.max(1));
        }
        let admission = Admission::new(cfg.max_concurrent, cfg.max_queued);
        Arc::new(Server {
            session,
            db,
            cfg,
            admission,
        })
    }

    /// The admission gate (observable state for tests and metrics).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Serves one connection to completion on the calling thread.
    pub fn handle<S: Read + Write>(&self, mut conn: S) -> SessionEnd {
        // --- Handshake ---
        let caps = match read_packet(&mut conn, self.cfg.max_frame) {
            Ok(Packet::ClientHello {
                version,
                capabilities,
                ..
            }) => {
                if version != PROTOCOL_VERSION {
                    self.exception(
                        &mut conn,
                        0,
                        code::VERSION,
                        &format!(
                            "server speaks protocol version {PROTOCOL_VERSION}, \
                             client sent {version}"
                        ),
                    );
                    return SessionEnd::ProtocolError;
                }
                capabilities & self.cfg.capabilities
            }
            Ok(other) => {
                self.exception(
                    &mut conn,
                    0,
                    code::PROTOCOL,
                    &format!("expected ClientHello, got {}", other.name()),
                );
                return SessionEnd::ProtocolError;
            }
            Err(WireError::Closed) => return SessionEnd::CleanClose,
            Err(WireError::Io(_)) => return SessionEnd::Disconnected,
            Err(e) => {
                self.exception(&mut conn, 0, code::PROTOCOL, &e.to_string());
                return SessionEnd::ProtocolError;
            }
        };
        if write_packet(
            &mut conn,
            &Packet::ServerHello {
                version: PROTOCOL_VERSION,
                capabilities: caps,
                server_name: self.cfg.name.clone(),
            },
        )
        .is_err()
        {
            return SessionEnd::Disconnected;
        }

        // --- Query loop ---
        loop {
            match read_packet(&mut conn, self.cfg.max_frame) {
                Ok(Packet::Query { id, sql }) => {
                    if self.run_query(&mut conn, id, &sql, caps).is_err() {
                        // Writing the result failed: the client vanished
                        // mid-stream. Nothing to salvage.
                        return SessionEnd::Disconnected;
                    }
                }
                Ok(other) => {
                    self.exception(
                        &mut conn,
                        0,
                        code::PROTOCOL,
                        &format!("unexpected {} outside a result stream", other.name()),
                    );
                    return SessionEnd::ProtocolError;
                }
                Err(WireError::Closed) => return SessionEnd::CleanClose,
                Err(WireError::Io(_)) => return SessionEnd::Disconnected,
                Err(e) => {
                    // Garbage, truncated, or oversized frame: there is no
                    // way to find the next frame boundary, so report and
                    // drop the connection.
                    self.exception(&mut conn, 0, code::PROTOCOL, &e.to_string());
                    return SessionEnd::ProtocolError;
                }
            }
        }
    }

    /// Admits, executes, and streams one query. `Err` means the
    /// *connection* failed (client gone); query-level failures are
    /// reported in-band as `Exception` packets and return `Ok`.
    fn run_query<S: Read + Write>(
        &self,
        conn: &mut S,
        id: u64,
        sql: &str,
        caps: u32,
    ) -> Result<(), WireError> {
        let _slot = match self.admission.try_acquire() {
            Ok(g) => g,
            Err(AdmissionFull) => {
                return write_packet(
                    conn,
                    &Packet::Exception {
                        query_id: id,
                        code: code::ADMISSION,
                        message: format!(
                            "admission queue full ({} running, {} queued); retry later",
                            self.cfg.max_concurrent, self.cfg.max_queued
                        ),
                    },
                );
            }
        };
        let batch = match self.execute(sql) {
            Ok(b) => b,
            Err((ecode, message)) => {
                return write_packet(
                    conn,
                    &Packet::Exception {
                        query_id: id,
                        code: ecode,
                        message,
                    },
                );
            }
        };

        // Stream the result in row chunks; even an empty result sends one
        // block so the schema always reaches the client.
        let total = batch.num_rows();
        let block = self.cfg.block_rows.max(1);
        let nchunks = total.div_ceil(block).max(1) as u32;
        let mut sent_rows = 0u64;
        let mut sent_bytes = 0u64;
        for c in 0..nchunks as usize {
            let lo = c * block;
            let hi = (lo + block).min(total);
            let chunk = if nchunks == 1 {
                batch.clone()
            } else {
                let indices: Vec<usize> = (lo..hi).collect();
                skadi_arrow::compute::take_indices(&batch, &indices)
                    .map_err(|e| WireError::Arrow(e.to_string()))?
            };
            let frame = skadi_arrow::ipc::encode(&chunk);
            // Compression is negotiated: only a client that advertised
            // CAP_COMPRESSION may receive compressed payloads. A frame
            // that wouldn't shrink still travels raw (the receiver tells
            // the two apart by magic).
            let payload = if caps & CAP_COMPRESSION != 0 {
                bytes::Bytes::from(skadi_arrow::compression::maybe_compress(&frame))
            } else {
                frame
            };
            sent_rows += chunk.num_rows() as u64;
            sent_bytes += payload.len() as u64;
            write_packet(
                conn,
                &Packet::Data {
                    query_id: id,
                    payload,
                },
            )?;
            if caps & CAP_PROGRESS != 0 && (c + 1) < nchunks as usize {
                write_packet(
                    conn,
                    &Packet::Progress {
                        query_id: id,
                        rows: sent_rows,
                        bytes: sent_bytes,
                    },
                )?;
            }
        }
        write_packet(
            conn,
            &Packet::EndOfStream {
                query_id: id,
                chunks: nchunks,
            },
        )
    }

    /// Runs the statement through the configured engine. Errors carry an
    /// exception code plus the frontend's human-readable rendering.
    fn execute(&self, statement: &str) -> Result<skadi_arrow::batch::RecordBatch, (u16, String)> {
        if self.cfg.distributed {
            self.session
                .sql_distributed(&self.db, statement)
                .map(|run| run.batch)
                .map_err(|e| {
                    let ecode = match &e {
                        SkadiError::Sql(_) => code::SQL,
                        _ => code::EXEC,
                    };
                    (ecode, e.to_string())
                })
        } else {
            // The local engine's grammar has no EXPLAIN prefix; strip it
            // and run the query body, as the distributed path does.
            let body = sql::strip_explain_analyze(statement).unwrap_or(statement);
            self.db.query(body).map_err(|e| (code::SQL, e.to_string()))
        }
    }

    /// Best-effort exception write (the peer may already be gone).
    fn exception<S: Write>(&self, conn: &mut S, query_id: u64, ecode: u16, message: &str) {
        let _ = write_packet(
            conn,
            &Packet::Exception {
                query_id,
                code: ecode,
                message: message.to_string(),
            },
        );
    }

    /// Opens an in-memory connection to this server: spawns a handler
    /// thread for the server end and returns the client end plus the
    /// handler's join handle (joining surfaces panics and the
    /// [`SessionEnd`] verdict — tests assert on both).
    pub fn connect(self: &Arc<Self>) -> (wire::DuplexStream, thread::JoinHandle<SessionEnd>) {
        let (client_end, server_end) = wire::duplex();
        let server = Arc::clone(self);
        let handle = thread::spawn(move || server.handle(server_end));
        (client_end, handle)
    }

    /// Accept loop over a TCP listener: one handler thread per
    /// connection, forever. Only returns if `accept` itself fails.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        loop {
            let (stream, peer) = listener.accept()?;
            let server = Arc::clone(self);
            thread::spawn(move || {
                let end = server.handle(stream);
                eprintln!("connection from {peer} ended: {end:?}");
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn gate() -> Arc<Admission> {
        Arc::new(Admission::new(1, 1))
    }

    /// Spin until `cond` holds (bounded; panics on timeout so a bug
    /// can't hang the suite).
    fn wait_until(what: &str, cond: impl Fn() -> bool) {
        for _ in 0..5000 {
            if cond() {
                return;
            }
            thread::sleep(Duration::from_millis(1));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn admission_rejects_beyond_capacity() {
        let adm = gate();
        let _running = adm.try_acquire().expect("first slot");
        // One waiter is allowed to queue...
        let adm2 = Arc::clone(&adm);
        let waiter = thread::spawn(move || {
            let _slot = adm2.try_acquire().expect("queued slot");
        });
        wait_until("waiter to queue", || adm.queued() == 1);
        // ...but the next arrival is rejected immediately, not blocked.
        assert_eq!(adm.try_acquire().err(), Some(AdmissionFull));
        drop(_running);
        waiter.join().expect("waiter finishes after release");
        assert_eq!(adm.running(), 0);
    }

    #[test]
    fn admission_is_fifo() {
        let adm = Arc::new(Admission::new(1, 16));
        let first = adm.try_acquire().expect("slot");
        let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let mut waiters = Vec::new();
        for i in 0..4 {
            let shared = Arc::clone(&adm);
            let log = Arc::clone(&order);
            waiters.push(thread::spawn(move || {
                let _slot = shared.try_acquire().expect("queued");
                log.lock().unwrap().push(i);
            }));
            // Stagger arrivals so ticket order is the spawn order.
            wait_until("waiter to queue", || adm.queued() == i + 1);
        }
        drop(first);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn guard_drop_wakes_next() {
        let adm = Arc::new(Admission::new(2, 8));
        let a = adm.try_acquire().unwrap();
        let b = adm.try_acquire().unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let adm = Arc::clone(&adm);
            let done = Arc::clone(&done);
            handles.push(thread::spawn(move || {
                let _slot = adm.try_acquire().unwrap();
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        wait_until("both to queue", || adm.queued() == 2);
        // Releasing both running slots at once must admit *both* waiters
        // (the head wakes the new head).
        drop(a);
        drop(b);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 2);
    }
}

//! Adaptive query execution: measured re-planning before submission.
//!
//! Static lowering shards every keyed consumer to the session's default
//! parallelism, sight unseen. On skewed data that wastes tasks: a
//! shuffle key with three distinct values hashed into eight partitions
//! leaves five shards permanently empty, yet each still schedules, ships
//! control messages, and occupies a node slot.
//!
//! The adaptive path runs a **pilot pass** first: the logical graph's
//! operators execute once, single-sharded, through the same pure shard
//! kernels the distributed data plane uses ([`shard::execute_shard`]).
//! The pilot's *measured* outputs — not estimates — drive re-planning:
//! for every keyed edge, the producer's real rows are hashed with the
//! exact partitioner the shuffle will use, and consumers whose key space
//! fills only `k < parallelism` buckets are re-lowered to `k` shards.
//! The runtime half of the same idea lives in the shard kernels
//! themselves: joins observe gathered row counts and build on the
//! smaller side (`shard::execute_shard_adaptive`).
//!
//! Every decision is a pure function of data (row counts and key
//! histograms), never of wall clock, thread count, or node placement —
//! so an adaptive run is deterministic, and its collected result is
//! **byte-identical** to the static plan's (the data plane already
//! guarantees identical bytes at any shard count; see
//! `tests/parallel_equiv.rs`).

use std::collections::{BTreeMap, HashMap};

use skadi_arrow::batch::RecordBatch;
use skadi_flowgraph::logical::{EdgeKind, FlowGraph, VertexBody, VertexId};
use skadi_flowgraph::lower::LowerConfig;
use skadi_flowgraph::ExecOp;
use skadi_frontends::shard;

/// One re-planning decision the pilot made: a keyed consumer re-sharded
/// from the static default to the measured non-empty bucket count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replan {
    /// The logical vertex whose shard count changed.
    pub vertex: VertexId,
    /// Shards static lowering would have used.
    pub from_shards: u32,
    /// Shards after observing the pilot's key histogram.
    pub to_shards: u32,
    /// The shuffle key whose histogram drove the decision (the widest
    /// key, for consumers fed by several keyed edges).
    pub key: String,
}

/// The pilot pass's outcome: the re-plan list, ready to apply to a
/// [`LowerConfig`] as per-vertex overrides.
#[derive(Debug, Clone, Default)]
pub struct AdaptivePlan {
    /// Re-planned consumers, in vertex order.
    pub replans: Vec<Replan>,
}

impl AdaptivePlan {
    /// Applies the re-plans to a lowering config as parallelism
    /// overrides; lowering then runs once more over the adjusted config.
    pub fn apply(&self, mut cfg: LowerConfig) -> LowerConfig {
        for r in &self.replans {
            cfg.overrides.insert(r.vertex, r.to_shards.max(1));
        }
        cfg
    }
}

/// True if the consumer's kernel starts with a join — its shuffle then
/// hashes mixed `Int64`/`Float64` keys through their `f64` bit pattern,
/// and the pilot must histogram with the same coercion.
fn starts_with_join(op: &ExecOp) -> bool {
    match op {
        ExecOp::Join { .. } => true,
        ExecOp::Fused(ops) => ops.first().is_some_and(starts_with_join),
        _ => false,
    }
}

/// Executes the logical graph once, single-sharded, purely locally.
/// Returns each non-sink vertex's output batch, or `None` when the
/// graph has a vertex the pilot cannot run (no exec descriptor — only
/// hand-built graphs; SQL plans always carry one).
fn pilot_outputs(
    g: &FlowGraph,
    tables: &BTreeMap<String, RecordBatch>,
) -> Option<HashMap<VertexId, RecordBatch>> {
    let order = g.topo_order().ok()?;
    let mut out: HashMap<VertexId, RecordBatch> = HashMap::new();
    for v in order {
        let vx = g.vertex(v);
        if matches!(vx.body, VertexBody::Sink { .. }) {
            continue;
        }
        let exec = vx.exec.as_ref()?;
        let mut ins: Vec<_> = g.edges().iter().filter(|e| e.to == v).collect();
        ins.sort_by_key(|e| (e.port, e.from.0));
        let mut port0: Vec<RecordBatch> = Vec::new();
        let mut port1: Vec<RecordBatch> = Vec::new();
        for e in ins {
            let b = out.get(&e.from)?.clone();
            if e.port == 1 {
                port1.push(b);
            } else {
                port0.push(b);
            }
        }
        let b = shard::execute_shard(exec, tables, 0, 1, &port0, &port1).ok()?;
        out.insert(v, b);
    }
    Some(out)
}

/// Runs the pilot pass and derives the re-plan list. For every keyed
/// edge whose consumer would statically shard to
/// `cfg.default_parallelism`, the producer's pilot output is partitioned
/// with the exact shuffle hash; if only `k` buckets are non-empty the
/// consumer re-lowers to `k` shards. Consumers fed by several keyed
/// edges (joins) take the **max** non-empty count across their edges, so
/// no side's keys collapse into fewer shards than they fill.
///
/// Infallible by design: a graph the pilot can't execute (missing exec
/// descriptors, unknown tables) yields an empty plan — execution then
/// proceeds exactly as the static path would.
pub fn plan(
    g: &FlowGraph,
    tables: &BTreeMap<String, RecordBatch>,
    cfg: &LowerConfig,
) -> AdaptivePlan {
    let parts = cfg.default_parallelism;
    if parts <= 1 {
        return AdaptivePlan::default();
    }
    let Some(outputs) = pilot_outputs(g, tables) else {
        return AdaptivePlan::default();
    };
    // Widest measured need per consumer, and the key that set it.
    let mut needed: BTreeMap<u32, (u32, String)> = BTreeMap::new();
    for e in g.edges() {
        let EdgeKind::Keyed(key) = &e.kind else {
            continue;
        };
        let to = g.vertex(e.to);
        if matches!(to.body, VertexBody::Sink { .. }) || cfg.overrides.contains_key(&e.to) {
            continue;
        }
        if to.exec.as_ref().is_some_and(|x| x.requires_single_shard()) {
            continue;
        }
        let Some(batch) = outputs.get(&e.from) else {
            continue;
        };
        let coerce = to.exec.as_ref().is_some_and(starts_with_join);
        let Ok(buckets) = shard::partition_by_key(batch, key, parts as usize, coerce) else {
            continue;
        };
        let non_empty = buckets.iter().filter(|b| b.num_rows() > 0).count().max(1) as u32;
        let entry = needed.entry(e.to.0).or_insert((0, key.clone()));
        if non_empty > entry.0 {
            *entry = (non_empty, key.clone());
        }
    }
    let replans = needed
        .into_iter()
        .filter(|&(_, (k, _))| k < parts)
        .map(|(v, (k, key))| Replan {
            vertex: VertexId(v),
            from_shards: parts,
            to_shards: k,
            key,
        })
        .collect();
    AdaptivePlan { replans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_arrow::array::Array;
    use skadi_arrow::datatype::DataType;
    use skadi_arrow::schema::{Field, Schema};
    use skadi_frontends::exec::MemDb;
    use skadi_frontends::sql;
    use skadi_ir::BackendPolicy;

    fn skewed_db() -> MemDb {
        // Two distinct group keys: an 8-way shuffle leaves >= 6 buckets
        // empty, so the pilot must coalesce.
        let n = 64i64;
        MemDb::new().register(
            "t",
            RecordBatch::try_new(
                Schema::new(vec![
                    Field::new("k", DataType::Int64, false),
                    Field::new("v", DataType::Int64, false),
                ]),
                vec![
                    Array::from_i64((0..n).map(|i| i % 2).collect()),
                    Array::from_i64((0..n).collect()),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn pilot_coalesces_sparse_shuffle_keys() {
        let db = skewed_db();
        let (g, _sink) =
            sql::plan_sql("SELECT k, sum(v) FROM t GROUP BY k", &db.catalog()).unwrap();
        let cfg = LowerConfig::new(8, BackendPolicy::cost_based());
        let p = plan(&g, db.tables(), &cfg);
        assert_eq!(p.replans.len(), 1, "one keyed consumer: {:?}", p.replans);
        let r = &p.replans[0];
        assert_eq!(r.from_shards, 8);
        assert!(r.to_shards <= 2, "two distinct keys: {r:?}");
        assert_eq!(r.key, "k");
        let lowered = p.apply(cfg);
        assert_eq!(lowered.overrides.get(&r.vertex), Some(&r.to_shards));
    }

    #[test]
    fn pilot_leaves_dense_keys_alone() {
        let n = 512i64;
        let db = MemDb::new().register(
            "t",
            RecordBatch::try_new(
                Schema::new(vec![
                    Field::new("k", DataType::Int64, false),
                    Field::new("v", DataType::Int64, false),
                ]),
                vec![
                    Array::from_i64((0..n).collect()),
                    Array::from_i64((0..n).collect()),
                ],
            )
            .unwrap(),
        );
        let (g, _sink) =
            sql::plan_sql("SELECT k, sum(v) FROM t GROUP BY k", &db.catalog()).unwrap();
        let cfg = LowerConfig::new(4, BackendPolicy::cost_based());
        let p = plan(&g, db.tables(), &cfg);
        assert!(
            p.replans.is_empty(),
            "512 keys fill 4 buckets: {:?}",
            p.replans
        );
    }

    #[test]
    fn parallelism_one_never_replans() {
        let db = skewed_db();
        let (g, _sink) =
            sql::plan_sql("SELECT k, sum(v) FROM t GROUP BY k", &db.catalog()).unwrap();
        let cfg = LowerConfig::new(1, BackendPolicy::cost_based());
        assert!(plan(&g, db.tables(), &cfg).replans.is_empty());
    }
}

//! Job reports: what a submission compiled to and how it ran.

use std::fmt;

use skadi_flowgraph::optimize::OptimizeReport;
use skadi_flowgraph::profile::QueryProfile;
use skadi_ir::Backend;
use skadi_runtime::JobStats;

/// Per-backend physical vertex counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendCounts {
    /// CPU kernels.
    pub cpu: usize,
    /// GPU kernels.
    pub gpu: usize,
    /// FPGA kernels.
    pub fpga: usize,
}

impl BackendCounts {
    /// Adds one vertex on the given backend.
    pub fn add(&mut self, b: Backend) {
        match b {
            Backend::Cpu => self.cpu += 1,
            Backend::Gpu => self.gpu += 1,
            Backend::Fpga => self.fpga += 1,
        }
    }

    /// Total counted vertices.
    pub fn total(&self) -> usize {
        self.cpu + self.gpu + self.fpga
    }
}

/// The result of compiling and running one declaration (or pipeline).
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Logical vertices before optimization.
    pub logical_vertices_before: usize,
    /// Logical vertices after optimization.
    pub logical_vertices_after: usize,
    /// What the graph optimizer did.
    pub optimize: OptimizeReport,
    /// Physical vertices (tasks).
    pub physical_vertices: usize,
    /// Physical edges (transfers).
    pub physical_edges: usize,
    /// Backend assignment of the physical vertices.
    pub backends: BackendCounts,
    /// Execution statistics.
    pub stats: JobStats,
    /// Per-operator query profile, when the run executed real data
    /// through the data plane (distributed SQL); `None` for purely
    /// simulated runs.
    pub profile: Option<QueryProfile>,
}

impl JobReport {
    /// True if the run recorded spans (requires
    /// `RuntimeConfig::with_tracing(true)`).
    pub fn has_trace(&self) -> bool {
        !self.stats.trace.is_empty()
    }

    /// The run's spans as Chrome `trace_event` JSON, loadable in
    /// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        self.stats.trace.to_chrome_json()
    }

    /// Plain-text critical-path summary: end-to-end time split into
    /// compute and the top `top` stall contributors.
    pub fn critical_path_summary(&self, top: usize) -> String {
        self.stats.trace.critical_path_summary(top)
    }
}

impl fmt::Display for JobReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "job {}", self.name)?;
        writeln!(
            f,
            "  access layer: {} -> {} logical vertices ({} fused, {} pruned)",
            self.logical_vertices_before,
            self.logical_vertices_after,
            self.optimize.fused,
            self.optimize.pruned
        )?;
        writeln!(
            f,
            "  physical: {} tasks / {} edges (cpu {}, gpu {}, fpga {})",
            self.physical_vertices,
            self.physical_edges,
            self.backends.cpu,
            self.backends.gpu,
            self.backends.fpga
        )?;
        writeln!(
            f,
            "  run: makespan {}  tasks {}  retries {}  stall {}  cost {:.4}",
            self.stats.makespan,
            self.stats.finished,
            self.stats.retries,
            self.stats.stall_total,
            self.stats.cost_units
        )?;
        write!(
            f,
            "  data: intra-rack {} B, cross-rack {} B, durable {} B ({} trips), spilled {} B",
            self.stats.net.intra_rack_bytes,
            self.stats.net.cross_rack_bytes,
            self.stats.net.durable_bytes,
            self.stats.durable_trips,
            self.stats.spill_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_counts() {
        let mut b = BackendCounts::default();
        b.add(Backend::Cpu);
        b.add(Backend::Gpu);
        b.add(Backend::Gpu);
        assert_eq!(b.cpu, 1);
        assert_eq!(b.gpu, 2);
        assert_eq!(b.total(), 3);
    }
}

//! Integrated multi-system pipelines.
//!
//! The paper's motivating trend is *data systems integration*: "multiple
//! data systems are deployed onto one pipeline that jointly runs business
//! logic, data management, HPC, and ML" (§1, citing BigQuery). A
//! [`PipelineBuilder`] chains several declarations — each tagged with the
//! data system it belongs to — into **one** job on **one** runtime, so
//! intermediate results flow through the caching layer (futures) instead
//! of bouncing via durable storage. Under the serverful deployment the
//! same pipeline pays durable round-trips at every system boundary, which
//! is exactly the Figure-1 comparison.

use std::collections::BTreeMap;

use skadi_flowgraph::logical::FlowGraph;
use skadi_flowgraph::optimize::optimize_graph;
use skadi_frontends::mapreduce::MapReduceJob;
use skadi_frontends::ml::TrainingPipeline;
use skadi_frontends::sql;
use skadi_runtime::task::{TaskId, TaskSpec};
use skadi_runtime::{Cluster, FailurePlan, Job};

use crate::report::{BackendCounts, JobReport};
use crate::session::{Session, SkadiError};

/// One pipeline stage: a system label plus its logical graph.
struct Stage {
    system: String,
    graph: FlowGraph,
}

/// Builds an integrated pipeline over one session.
pub struct PipelineBuilder<'a> {
    session: &'a Session,
    name: String,
    stages: Vec<Stage>,
}

impl<'a> PipelineBuilder<'a> {
    pub(crate) fn new(session: &'a Session) -> Self {
        PipelineBuilder {
            session,
            name: "pipeline".to_string(),
            stages: Vec::new(),
        }
    }

    /// Names the pipeline (reporting only).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Appends a SQL stage.
    pub fn sql(mut self, statement: &str) -> Result<Self, SkadiError> {
        let (g, _) = sql::plan_sql(statement, self.session.catalog())?;
        self.stages.push(Stage {
            system: "sql".to_string(),
            graph: g,
        });
        Ok(self)
    }

    /// Appends a MapReduce stage (the "data processing" system).
    pub fn mapreduce(mut self, job: &MapReduceJob) -> Result<Self, SkadiError> {
        let (g, _) = job.to_flowgraph()?;
        self.stages.push(Stage {
            system: "dp".to_string(),
            graph: g,
        });
        Ok(self)
    }

    /// Appends an ML training stage.
    pub fn train(mut self, pipeline: &TrainingPipeline) -> Result<Self, SkadiError> {
        let (g, _) = pipeline.to_flowgraph()?;
        self.stages.push(Stage {
            system: "ml".to_string(),
            graph: g,
        });
        Ok(self)
    }

    /// Appends an arbitrary FlowGraph stage under a system label.
    pub fn stage(mut self, system: &str, graph: FlowGraph) -> Self {
        self.stages.push(Stage {
            system: system.to_string(),
            graph,
        });
        self
    }

    /// Number of stages added so far.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if no stages were added.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Compiles the pipeline into one job (exposed for the benchmark
    /// harness, which wants to run the same job under many configs).
    pub fn compile(mut self) -> Result<(Job, JobReport), SkadiError> {
        assert!(!self.stages.is_empty(), "pipeline needs at least one stage");
        let mut before = 0usize;
        let mut after = 0usize;
        let mut optimize = skadi_flowgraph::optimize::OptimizeReport::default();
        let mut counts = BackendCounts::default();
        let mut pv = 0usize;
        let mut pe = 0usize;

        let mut all_tasks: BTreeMap<TaskId, TaskSpec> = BTreeMap::new();
        let mut offset: u64 = 0;
        let mut prev_terminals: Vec<(TaskId, u64)> = Vec::new();

        for stage in &mut self.stages {
            before += stage.graph.len();
            if self.session.optimize {
                let rep = optimize_graph(&mut stage.graph);
                optimize.pruned += rep.pruned;
                optimize.fused += rep.fused;
            }
            after += stage.graph.len();
            let (job, c, v, e) = self.session.compile(&stage.graph, &stage.system)?;
            counts.cpu += c.cpu;
            counts.gpu += c.gpu;
            counts.fpga += c.fpga;
            pv += v;
            pe += e;

            // Re-ID this stage's tasks into the combined space.
            let mut renumbered: Vec<TaskSpec> = Vec::with_capacity(job.tasks.len());
            for spec in job.tasks.values() {
                let mut s = spec.clone();
                s.id = TaskId(s.id.0 + offset);
                s.inputs = s
                    .inputs
                    .iter()
                    .map(|(t, b)| (TaskId(t.0 + offset), *b))
                    .collect();
                renumbered.push(s);
            }

            // Bridge from the previous stage's terminals to this stage's
            // roots: the downstream system consumes the upstream result.
            if !prev_terminals.is_empty() {
                let roots: Vec<TaskId> = renumbered
                    .iter()
                    .filter(|t| t.inputs.is_empty())
                    .map(|t| t.id)
                    .collect();
                for spec in renumbered.iter_mut() {
                    if !roots.contains(&spec.id) {
                        continue;
                    }
                    for (term, bytes) in &prev_terminals {
                        let share = (bytes / roots.len() as u64).max(1);
                        spec.inputs.insert(*term, share);
                    }
                }
            }

            // This stage's terminals: tasks no one inside the stage
            // consumes. Their handoff size is the stage's result — sink
            // vertices have no output of their own, so fall back to the
            // bytes flowing into them.
            let consumed: Vec<TaskId> = renumbered
                .iter()
                .flat_map(|t| t.inputs.keys().copied())
                .collect();
            prev_terminals = renumbered
                .iter()
                .filter(|t| !consumed.contains(&t.id))
                .map(|t| {
                    let inflow: u64 = t.inputs.values().sum();
                    (t.id, t.output_bytes.max(inflow).max(1))
                })
                .collect();

            offset += renumbered.iter().map(|t| t.id.0).max().unwrap_or(0) + 1 - offset;
            offset = all_tasks
                .keys()
                .map(|t| t.0 + 1)
                .max()
                .unwrap_or(0)
                .max(offset)
                .max(renumbered.iter().map(|t| t.id.0 + 1).max().unwrap_or(0));
            for s in renumbered {
                all_tasks.insert(s.id, s);
            }
        }

        let job = Job::new(&self.name, all_tasks.into_values().collect())?;
        let report = JobReport {
            name: self.name.clone(),
            logical_vertices_before: before,
            logical_vertices_after: after,
            optimize,
            physical_vertices: pv,
            physical_edges: pe,
            backends: counts,
            stats: empty_stats(),
            profile: None,
        };
        Ok((job, report))
    }

    /// Compiles and runs the pipeline.
    pub fn run(self) -> Result<JobReport, SkadiError> {
        self.run_with_failures(&FailurePlan::none())
    }

    /// Compiles and runs the pipeline under a failure schedule.
    pub fn run_with_failures(self, failures: &FailurePlan) -> Result<JobReport, SkadiError> {
        let session = self.session;
        let (job, mut report) = self.compile()?;
        let mut cluster = Cluster::new(&session.topology, session.runtime.clone());
        report.stats = cluster.run_with_failures(&job, failures)?;
        Ok(report)
    }
}

fn empty_stats() -> skadi_runtime::JobStats {
    skadi_runtime::JobStats {
        makespan: skadi_dcsim::time::SimDuration::ZERO,
        finished: 0,
        retries: 0,
        abandoned: 0,
        net: Default::default(),
        durable_trips: 0,
        stall_total: skadi_dcsim::time::SimDuration::ZERO,
        compute_total: skadi_dcsim::time::SimDuration::ZERO,
        cost_units: 0.0,
        utilization: 0.0,
        spills: 0,
        spill_bytes: 0,
        metrics: Default::default(),
        trace: Default::default(),
        measured_output_bytes: Default::default(),
    }
}

/// The canonical integrated pipeline of experiment E1 (Figure 1): data
/// ingestion (MapReduce) -> SQL analytics -> ML training, sized by
/// `scale` (1 = the default workload).
pub fn fig1_pipeline(session: &Session, scale: u64) -> Result<PipelineBuilder<'_>, SkadiError> {
    let scale = scale.max(1);
    let ingest = MapReduceJob::new("raw-events", scale << 18, scale << 26, "user_id")
        .map_selectivity(0.8)
        .reduce_factor(0.25);
    let train = TrainingPipeline::new("features", scale << 12, scale << 22, 1 << 20).steps(4);
    session
        .pipeline()
        .named("fig1-integrated-pipeline")
        .mapreduce(&ingest)?
        .sql("SELECT kind, sum(value) FROM events WHERE value > 0.25 GROUP BY kind")?
        .train(&train)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_dcsim::topology::presets;
    use skadi_frontends::catalog::Catalog;
    use skadi_runtime::RuntimeConfig;

    fn session(cfg: RuntimeConfig) -> Session {
        Session::builder()
            .topology(presets::small_disagg_cluster())
            .catalog(Catalog::demo())
            .runtime(cfg)
            .build()
    }

    #[test]
    fn pipeline_chains_stages() {
        let s = session(RuntimeConfig::skadi_gen2());
        let (job, report) = fig1_pipeline(&s, 1).unwrap().compile().unwrap();
        assert!(report.physical_vertices > 10);
        // The combined job is one DAG: every stage's roots (except the
        // first stage's) have inputs.
        let roots: usize = job.tasks.values().filter(|t| t.inputs.is_empty()).count();
        let first_stage_sources = job
            .tasks
            .values()
            .filter(|t| t.system == "dp" && t.inputs.is_empty())
            .count();
        assert_eq!(roots, first_stage_sources);
        // Systems all present.
        for sys in ["dp", "sql", "ml"] {
            assert!(job.tasks.values().any(|t| t.system == sys), "{sys} missing");
        }
    }

    #[test]
    fn skadi_beats_stateless_on_integrated_pipeline() {
        let skadi = session(RuntimeConfig::skadi_gen2());
        let a = fig1_pipeline(&skadi, 1).unwrap().run().unwrap();
        let stateless = session(RuntimeConfig::stateless_serverless());
        let b = fig1_pipeline(&stateless, 1).unwrap().run().unwrap();
        assert_eq!(a.stats.abandoned, 0);
        assert_eq!(b.stats.abandoned, 0);
        assert!(a.stats.durable_trips < b.stats.durable_trips);
        assert!(
            a.stats.makespan < b.stats.makespan,
            "skadi {} vs stateless {}",
            a.stats.makespan,
            b.stats.makespan
        );
    }

    #[test]
    fn serverful_pays_at_system_boundaries_only() {
        let sf = session(RuntimeConfig::serverful());
        let r = fig1_pipeline(&sf, 1).unwrap().run().unwrap();
        let sl = session(RuntimeConfig::stateless_serverless());
        let r2 = fig1_pipeline(&sl, 1).unwrap().run().unwrap();
        assert!(r.stats.durable_trips > 0, "boundaries must bounce");
        assert!(
            r.stats.durable_trips < r2.stats.durable_trips,
            "serverful {} vs stateless {}",
            r.stats.durable_trips,
            r2.stats.durable_trips
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_panics() {
        let s = session(RuntimeConfig::skadi_gen2());
        let _ = s.pipeline().compile();
    }
}

//! The Skadi session: one runtime for all declarations.
//!
//! "Skadi enables users to use only one runtime to express all of their
//! programs" (§2.1). A [`Session`] owns the simulated cluster topology,
//! a table catalog, the access-layer configuration (parallelism, backend
//! policy), and the runtime configuration; every declarative submission
//! goes through the same path:
//!
//! 1. frontend parses the declaration onto a logical FlowGraph;
//! 2. the graph optimizer applies predefined rules (fusion, pruning);
//! 3. lowering shards the graph and picks hardware backends;
//! 4. the stateful serverless runtime executes the physical graph.

use std::fmt;

use skadi_dcsim::topology::Topology;
use skadi_flowgraph::logical::FlowGraph;
use skadi_flowgraph::lower::{lower_graph, LowerConfig};
use skadi_flowgraph::optimize::optimize_graph;
use skadi_frontends::catalog::Catalog;
use skadi_frontends::graph::VertexProgram;
use skadi_frontends::mapreduce::MapReduceJob;
use skadi_frontends::ml::TrainingPipeline;
use skadi_frontends::sql;
use skadi_frontends::streaming::StreamJob;
use skadi_ir::BackendPolicy;
use skadi_runtime::{
    job_from_physical, Cluster, FailurePlan, Job, RuntimeConfig, RuntimeError, TaskId,
};

use crate::adaptive::{self, Replan};
use crate::distributed::{DataPlaneStats, GraphExecutor};
use crate::pipeline::PipelineBuilder;
use crate::report::{BackendCounts, JobReport};

/// What a distributed SQL execution produced: the real result batch plus
/// the usual simulated report and the data plane's measurements.
#[derive(Debug, Clone)]
pub struct DistributedRun {
    /// The collected result — byte-identical to
    /// [`MemDb::query`](skadi_frontends::exec::MemDb::query) on the same
    /// database, at any parallelism.
    pub batch: skadi_arrow::batch::RecordBatch,
    /// Compilation and simulated-execution report.
    pub report: JobReport,
    /// Measured per-shard timings and shuffle row counts.
    pub data_plane: DataPlaneStats,
    /// Adaptive re-planning decisions (empty unless the session was
    /// built with [`SessionBuilder::adaptive`] and the pilot found
    /// sparse shuffle keys).
    pub replans: Vec<Replan>,
}

/// Errors surfaced by the session API.
#[derive(Debug)]
pub enum SkadiError {
    /// The SQL frontend rejected the statement.
    Sql(sql::SqlError),
    /// Graph construction or lowering failed.
    Graph(skadi_flowgraph::GraphError),
    /// Execution failed.
    Runtime(RuntimeError),
}

impl fmt::Display for SkadiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkadiError::Sql(e) => write!(f, "sql: {e}"),
            SkadiError::Graph(e) => write!(f, "graph: {e}"),
            SkadiError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for SkadiError {}

impl From<sql::SqlError> for SkadiError {
    fn from(e: sql::SqlError) -> Self {
        SkadiError::Sql(e)
    }
}

impl From<skadi_flowgraph::GraphError> for SkadiError {
    fn from(e: skadi_flowgraph::GraphError) -> Self {
        SkadiError::Graph(e)
    }
}

impl From<RuntimeError> for SkadiError {
    fn from(e: RuntimeError) -> Self {
        SkadiError::Runtime(e)
    }
}

/// Builder for [`Session`].
pub struct SessionBuilder {
    topology: Option<Topology>,
    catalog: Catalog,
    runtime: RuntimeConfig,
    parallelism: u32,
    policy: BackendPolicy,
    optimize: bool,
    skew_multiple: f64,
    shuffle_compression: bool,
    threads: Option<usize>,
    adaptive: bool,
}

impl SessionBuilder {
    /// Sets the (simulated) cluster topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = Some(t);
        self
    }

    /// Sets the table catalog.
    pub fn catalog(mut self, c: Catalog) -> Self {
        self.catalog = c;
        self
    }

    /// Sets the runtime configuration (defaults to Skadi Gen-2).
    pub fn runtime(mut self, cfg: RuntimeConfig) -> Self {
        self.runtime = cfg;
        self
    }

    /// Sets the default degree of parallelism (defaults to 4).
    pub fn parallelism(mut self, p: u32) -> Self {
        self.parallelism = p.max(1);
        self
    }

    /// Sets the backend-selection policy (defaults to cost-based).
    pub fn backend_policy(mut self, p: BackendPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Disables the graph optimizer (the E10 ablation).
    pub fn without_optimizer(mut self) -> Self {
        self.optimize = false;
        self
    }

    /// Sets the skew threshold for query profiles: an operator is flagged
    /// when its max shard's rows (or wall time, in timed rendering)
    /// exceed this multiple of the median shard's. Defaults to 2.0.
    pub fn skew_multiple(mut self, m: f64) -> Self {
        self.skew_multiple = m.max(1.0);
        self
    }

    /// Toggles block compression of shuffle/stored payloads in the
    /// distributed data plane (defaults to on). Off, every task stores
    /// its raw IPC frame — useful for measuring what compression saves,
    /// since `measured_output_bytes` feeds all storage/network pricing.
    pub fn shuffle_compression(mut self, on: bool) -> Self {
        self.shuffle_compression = on;
        self
    }

    /// Sets the number of real worker threads the execution pool uses for
    /// morsel-parallel kernels and same-instant shard batches. Defaults
    /// to the host's available parallelism (or `SKADI_THREADS`). The
    /// thread count changes only wall-clock time, never output bytes,
    /// profile row counts, or simulated pricing.
    ///
    /// The pool is process-wide: building a session with `threads(n)`
    /// resizes the shared pool for every session in the process.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Toggles adaptive query execution (defaults to off). When on,
    /// distributed SQL runs a single-sharded pilot pass first and
    /// re-plans keyed consumers whose measured key histograms fill fewer
    /// shuffle buckets than the default parallelism; at runtime, joins
    /// build their hash table on whichever side is observed to be
    /// smaller. Both decisions are pure functions of the data — the
    /// collected result stays byte-identical to the static plan.
    pub fn adaptive(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Finalizes the session.
    pub fn build(self) -> Session {
        if let Some(n) = self.threads {
            skadi_frontends::exec::pool::set_global_threads(n);
        }
        Session {
            topology: self
                .topology
                .unwrap_or_else(skadi_dcsim::topology::presets::small_disagg_cluster),
            catalog: self.catalog,
            runtime: self.runtime,
            parallelism: self.parallelism,
            policy: self.policy,
            optimize: self.optimize,
            skew_multiple: self.skew_multiple,
            shuffle_compression: self.shuffle_compression,
            adaptive: self.adaptive,
        }
    }
}

/// A Skadi session: the entry point of the public API.
pub struct Session {
    pub(crate) topology: Topology,
    pub(crate) catalog: Catalog,
    pub(crate) runtime: RuntimeConfig,
    pub(crate) parallelism: u32,
    pub(crate) policy: BackendPolicy,
    pub(crate) optimize: bool,
    pub(crate) skew_multiple: f64,
    pub(crate) shuffle_compression: bool,
    pub(crate) adaptive: bool,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            topology: None,
            catalog: Catalog::new(),
            runtime: RuntimeConfig::skadi_gen2(),
            parallelism: 4,
            policy: BackendPolicy::cost_based(),
            optimize: true,
            skew_multiple: 2.0,
            shuffle_compression: true,
            threads: None,
            adaptive: false,
        }
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The runtime configuration.
    pub fn runtime_config(&self) -> &RuntimeConfig {
        &self.runtime
    }

    /// Runs a SQL statement.
    pub fn sql(&self, statement: &str) -> Result<JobReport, SkadiError> {
        let (g, _sink) = sql::plan_sql(statement, &self.catalog)?;
        self.run_graph("sql", g, "sql")
    }

    /// Runs a SQL statement **with real data**: plans against a catalog
    /// derived from `db`'s registered tables, shards the plan to this
    /// session's parallelism, and executes every shard through the
    /// simulated cluster's data plane — each task decodes its producers'
    /// IPC payloads, runs its operator kernel, and stores real encoded
    /// bytes whose measured sizes feed the simulator's pricing. The
    /// collected result is byte-identical to
    /// [`MemDb::query`](skadi_frontends::exec::MemDb::query).
    pub fn sql_distributed(
        &self,
        db: &skadi_frontends::exec::MemDb,
        statement: &str,
    ) -> Result<DistributedRun, SkadiError> {
        self.sql_distributed_with_failures(db, statement, &FailurePlan::none())
    }

    /// [`Session::sql_distributed`] under a failure schedule. Recovery
    /// re-executes lost shards through the same deterministic kernels, so
    /// the answer is unchanged by faults the runtime can survive.
    pub fn sql_distributed_with_failures(
        &self,
        db: &skadi_frontends::exec::MemDb,
        statement: &str,
        failures: &FailurePlan,
    ) -> Result<DistributedRun, SkadiError> {
        // The data plane threads hidden "__"-prefixed bookkeeping columns
        // through every shard; user tables must not collide with them.
        for (name, batch) in db.tables() {
            if let Some(f) = batch
                .schema()
                .fields()
                .iter()
                .find(|f| f.name.starts_with("__"))
            {
                return Err(SkadiError::Sql(sql::SqlError::Plan(format!(
                    "table {name:?}: column {:?} uses the reserved \"__\" prefix",
                    f.name
                ))));
            }
        }
        // `EXPLAIN ANALYZE <query>` runs the query itself; the prefix
        // only marks that the caller wants the profile rendered.
        let statement = sql::strip_explain_analyze(statement).unwrap_or(statement);
        let (mut graph, _sink) = sql::plan_sql(statement, &db.catalog())?;
        let before = graph.len();
        let optimize = if self.optimize {
            optimize_graph(&mut graph)
        } else {
            Default::default()
        };
        let mut cfg = LowerConfig::new(self.parallelism, self.policy.clone());
        let mut replans = Vec::new();
        if self.adaptive {
            // Pilot pass: measure real key histograms, then re-lower the
            // plan once with coalesced shard counts. Shard-count changes
            // never change result bytes (see `tests/parallel_equiv.rs`).
            let pilot = adaptive::plan(&graph, db.tables(), &cfg);
            replans = pilot.replans.clone();
            cfg = pilot.apply(cfg);
        }
        let phys = lower_graph(&graph, &cfg)?;
        let mut counts = BackendCounts::default();
        for v in phys.vertices() {
            counts.add(v.backend);
        }
        let job = job_from_physical("sql", &phys, "sql")?;
        let sink_task = phys
            .vertices()
            .iter()
            .find(|v| v.kind == skadi_flowgraph::physical::PVertexKind::Sink)
            .map(|v| TaskId(v.id.0 as u64))
            .ok_or_else(|| SkadiError::Sql(sql::SqlError::Plan("plan has no sink".into())))?;

        let mut cluster = Cluster::new(&self.topology, self.runtime.clone());
        let executor = GraphExecutor::new(phys.clone(), db.tables().clone())
            .with_compression(self.shuffle_compression)
            .with_adaptive(self.adaptive);
        let measurements = executor.stats();
        cluster.set_executor(Box::new(executor));
        let stats = cluster.run_with_failures(&job, failures)?;
        let payload = cluster.task_payload(sink_task).ok_or_else(|| {
            SkadiError::Runtime(RuntimeError::Internal(
                "data plane: sink stored no payload".into(),
            ))
        })?;
        let frame = if skadi_arrow::compression::is_compressed(payload) {
            skadi_arrow::compression::decompress(payload).map_err(|e| {
                SkadiError::Sql(sql::SqlError::Plan(format!("decompress result: {e}")))
            })?
        } else {
            payload.to_vec()
        };
        let batch = skadi_arrow::ipc::decode(bytes::Bytes::from(frame))
            .map_err(|e| SkadiError::Sql(sql::SqlError::Plan(format!("decode result: {e}"))))?;
        let data_plane = measurements.borrow().clone();
        let profile =
            data_plane.query_profile(&phys, statement, self.parallelism, self.skew_multiple);
        Ok(DistributedRun {
            batch,
            report: JobReport {
                name: "sql".to_string(),
                logical_vertices_before: before,
                logical_vertices_after: graph.len(),
                optimize,
                physical_vertices: phys.len(),
                physical_edges: phys.edges().len(),
                backends: counts,
                stats,
                profile: Some(profile),
            },
            data_plane,
            replans,
        })
    }

    /// Runs `EXPLAIN ANALYZE <query>` (prefix optional) against real data
    /// through the distributed data plane and renders the annotated plan
    /// tree — per-operator rows/bytes/time with per-shard min/median/max
    /// and `[SKEW]` flags.
    pub fn explain_analyze(
        &self,
        db: &skadi_frontends::exec::MemDb,
        statement: &str,
    ) -> Result<String, SkadiError> {
        let run = self.sql_distributed(db, statement)?;
        let profile = run
            .report
            .profile
            .as_ref()
            .expect("distributed SQL always records a profile");
        Ok(profile.render(true))
    }

    /// Runs a MapReduce job.
    pub fn mapreduce(&self, job: &MapReduceJob) -> Result<JobReport, SkadiError> {
        let (g, _sink) = job.to_flowgraph()?;
        self.run_graph("mapreduce", g, "dp")
    }

    /// Runs an iterative vertex program.
    pub fn vertex_program(&self, prog: &VertexProgram) -> Result<JobReport, SkadiError> {
        let (g, _sink) = prog.to_flowgraph()?;
        self.run_graph("graph", g, "graph")
    }

    /// Runs a training pipeline.
    pub fn train(&self, pipeline: &TrainingPipeline) -> Result<JobReport, SkadiError> {
        let (g, _sink) = pipeline.to_flowgraph()?;
        self.run_graph("train", g, "ml")
    }

    /// Runs a micro-batch streaming job.
    pub fn stream(&self, job: &StreamJob) -> Result<JobReport, SkadiError> {
        let (g, _sink) = job.to_flowgraph()?;
        self.run_graph("stream", g, "streaming")
    }

    /// Starts an integrated multi-system pipeline.
    pub fn pipeline(&self) -> PipelineBuilder<'_> {
        PipelineBuilder::new(self)
    }

    /// Compiles and runs an arbitrary FlowGraph under the given system
    /// label.
    pub fn run_graph(
        &self,
        name: &str,
        graph: FlowGraph,
        system: &str,
    ) -> Result<JobReport, SkadiError> {
        self.run_graph_with_failures(name, graph, system, &FailurePlan::none())
    }

    /// [`Session::run_graph`] under a failure schedule.
    pub fn run_graph_with_failures(
        &self,
        name: &str,
        mut graph: FlowGraph,
        system: &str,
        failures: &FailurePlan,
    ) -> Result<JobReport, SkadiError> {
        let before = graph.len();
        let optimize = if self.optimize {
            optimize_graph(&mut graph)
        } else {
            Default::default()
        };
        let (job, counts, pv, pe) = self.compile(&graph, system)?;
        let mut cluster = Cluster::new(&self.topology, self.runtime.clone());
        let stats = cluster.run_with_failures(&job, failures)?;
        Ok(JobReport {
            name: name.to_string(),
            logical_vertices_before: before,
            logical_vertices_after: graph.len(),
            optimize,
            physical_vertices: pv,
            physical_edges: pe,
            backends: counts,
            stats,
            profile: None,
        })
    }

    /// Lowers a logical graph to a runnable job plus physical summary.
    pub(crate) fn compile(
        &self,
        graph: &FlowGraph,
        system: &str,
    ) -> Result<(Job, BackendCounts, usize, usize), SkadiError> {
        let cfg = LowerConfig::new(self.parallelism, self.policy.clone());
        let phys = lower_graph(graph, &cfg)?;
        let mut counts = BackendCounts::default();
        for v in phys.vertices() {
            counts.add(v.backend);
        }
        let job = job_from_physical(system, &phys, system)?;
        Ok((job, counts, phys.len(), phys.edges().len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_dcsim::topology::presets;
    use skadi_runtime::Deployment;

    fn session() -> Session {
        Session::builder()
            .topology(presets::small_disagg_cluster())
            .catalog(Catalog::demo())
            .build()
    }

    #[test]
    fn sql_end_to_end() {
        let r = session()
            .sql("SELECT kind, sum(value) FROM events WHERE value > 0.5 GROUP BY kind")
            .unwrap();
        assert!(r.stats.finished > 0);
        assert_eq!(r.stats.abandoned, 0);
        assert!(r.stats.makespan.as_nanos() > 0);
        assert!(r.physical_vertices >= r.logical_vertices_after);
    }

    #[test]
    fn sql_errors_propagate() {
        let err = session().sql("SELECT FROM nothing").unwrap_err();
        assert!(matches!(err, SkadiError::Sql(_)));
    }

    #[test]
    fn mapreduce_end_to_end() {
        let job = MapReduceJob::new("logs", 1 << 20, 64 << 20, "word");
        let r = session().mapreduce(&job).unwrap();
        assert!(r.stats.finished > 0);
    }

    #[test]
    fn training_uses_gpus() {
        let p = TrainingPipeline::new("mnist", 1 << 14, 8 << 20, 4 << 20).steps(2);
        let r = session().train(&p).unwrap();
        assert!(r.backends.gpu > 0, "matmuls should land on GPUs: {r}");
        assert!(r.stats.finished > 0);
    }

    #[test]
    fn vertex_program_end_to_end() {
        let prog = VertexProgram::pagerank("web", 100_000, 1_000_000, 3);
        let r = session().vertex_program(&prog).unwrap();
        assert!(r.stats.finished > 0);
    }

    #[test]
    fn optimizer_ablation_changes_plan() {
        // filter + project fuse into one kernel when the optimizer runs.
        let q = "SELECT user_id FROM events WHERE value > 0.5";
        let with = session().sql(q).unwrap();
        let without = Session::builder()
            .topology(presets::small_disagg_cluster())
            .catalog(Catalog::demo())
            .without_optimizer()
            .build()
            .sql(q)
            .unwrap();
        assert!(with.optimize.fused > 0);
        assert!(with.logical_vertices_after < without.logical_vertices_after);
    }

    #[test]
    fn deployment_config_flows_through() {
        let s = Session::builder()
            .topology(presets::small_disagg_cluster())
            .catalog(Catalog::demo())
            .runtime(RuntimeConfig::stateless_serverless())
            .build();
        assert_eq!(
            s.runtime_config().deployment,
            Deployment::StatelessServerless
        );
        let r = s.sql("SELECT user_id FROM events").unwrap();
        assert!(r.stats.durable_trips > 0);
    }

    #[test]
    fn report_display_is_complete() {
        let r = session().sql("SELECT user_id FROM events").unwrap();
        let text = r.to_string();
        assert!(text.contains("access layer"));
        assert!(text.contains("makespan"));
        assert!(text.contains("durable"));
    }
}

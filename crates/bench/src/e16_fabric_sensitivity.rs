//! E16 (co-design sweep): how fast must the fabric be for
//! physically-disaggregated accelerators to pay off?
//!
//! The paper's premise is a *co-design* of runtime and data-center
//! infrastructure — disaggregated DSA pools ride high-speed fabrics (its
//! Aquila and tightly-coupled-cluster citations). This sweep makes that
//! dependency quantitative: the same integrated pipeline, executed with
//! DSAs (skadi-gen2) and CPU-only (ray-like), across NIC bandwidths. Below
//! a crossover bandwidth, shipping data to accelerators loses to computing
//! where the data already is.

use skadi::dcsim::network::LinkParams;
use skadi::pipeline::fig1_pipeline;
use skadi::prelude::*;
use skadi::runtime::Cluster;

use crate::table::Table;

/// Runs the fig1 pipeline under `cfg` with the given NIC bandwidth
/// (bytes/sec).
pub fn run_with_bandwidth(cfg: RuntimeConfig, accel: bool, nic_bps: u64) -> JobStats {
    let links = LinkParams {
        nic_bandwidth_bps: nic_bps,
        ..LinkParams::default()
    };
    let policy = if accel {
        BackendPolicy::cost_based()
    } else {
        BackendPolicy::cpu_only()
    };
    let session = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .runtime(cfg.clone())
        .backend_policy(policy)
        .build();
    let (job, _) = fig1_pipeline(&session, 1)
        .expect("builds")
        .compile()
        .expect("compiles");
    let mut cluster = Cluster::with_links(session.topology(), cfg, links);
    cluster.run(&job).expect("runs")
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e16_fabric",
        "Fabric-bandwidth sensitivity: when do disaggregated DSAs pay off?",
        "The distributed runtime 'transparently evolves with novel data-center \
         architectures' (paper §1) — but DSA pools presuppose fast fabrics \
         (the paper's Aquila / tightly-coupled citations). This sweep finds \
         the crossover.",
        &["fabric_Gbps", "dsa_makespan", "cpu_makespan", "dsa_wins"],
    );
    let mut crossover: Option<u64> = None;
    for gbps in [10u64, 25, 50, 100, 200, 400] {
        let nic_bps = gbps * 1_000_000_000 / 8;
        let dsa = run_with_bandwidth(RuntimeConfig::skadi_gen2(), true, nic_bps);
        let cpu = run_with_bandwidth(RuntimeConfig::ray_like(), false, nic_bps);
        let wins = dsa.makespan < cpu.makespan;
        if wins && crossover.is_none() {
            crossover = Some(gbps);
        }
        t.row(vec![
            gbps.to_string(),
            dsa.makespan.to_string(),
            cpu.makespan.to_string(),
            (if wins { "yes" } else { "-" }).to_string(),
        ]);
    }
    t.takeaway(match crossover {
        Some(g) => format!(
            "disaggregated DSAs start paying off at ~{g} Gb/s fabric bandwidth — \
             the runtime and the network must be co-designed, as the paper argues"
        ),
        None => "CPU-local execution wins at every tested bandwidth".to_string(),
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_fabric_favors_cpu_fast_fabric_favors_dsa() {
        let slow = 10u64 * 1_000_000_000 / 8;
        let fast = 400u64 * 1_000_000_000 / 8;
        let dsa_slow = run_with_bandwidth(RuntimeConfig::skadi_gen2(), true, slow);
        let cpu_slow = run_with_bandwidth(RuntimeConfig::ray_like(), false, slow);
        let dsa_fast = run_with_bandwidth(RuntimeConfig::skadi_gen2(), true, fast);
        let cpu_fast = run_with_bandwidth(RuntimeConfig::ray_like(), false, fast);
        assert!(
            dsa_slow.makespan > cpu_slow.makespan,
            "at 10 Gb/s DSAs should lose: {} vs {}",
            dsa_slow.makespan,
            cpu_slow.makespan
        );
        assert!(
            dsa_fast.makespan < cpu_fast.makespan,
            "at 400 Gb/s DSAs should win: {} vs {}",
            dsa_fast.makespan,
            cpu_fast.makespan
        );
    }

    #[test]
    fn dsa_runs_improve_monotonically_with_bandwidth() {
        let a = run_with_bandwidth(RuntimeConfig::skadi_gen2(), true, 10 * 1_000_000_000 / 8);
        let b = run_with_bandwidth(RuntimeConfig::skadi_gen2(), true, 100 * 1_000_000_000 / 8);
        assert!(b.makespan <= a.makespan);
    }
}

//! E5 / Figure 3: Gen-1 (DPU-centric) vs Gen-2 (device-centric raylets +
//! push futures) on chains of short device ops.

use skadi::prelude::*;
use skadi::runtime::task::TaskSpec;
use skadi::runtime::{Cluster, Job, TaskId};

use crate::table::Table;

/// A chain of `n` GPU ops of `op_us` each, passing small tensors.
pub fn short_op_chain(n: u64, op_us: f64, bytes: u64) -> Job {
    let mut tasks = vec![TaskSpec::new(0, op_us, bytes).on(Backend::Gpu)];
    for i in 1..n {
        tasks.push(
            TaskSpec::new(i, op_us, bytes)
                .after(TaskId(i - 1), bytes)
                .on(Backend::Gpu),
        );
    }
    Job::new("short-ops", tasks).expect("valid chain")
}

/// JCT of the chain under a config.
pub fn jct(cfg: RuntimeConfig, op_us: f64) -> JobStats {
    let topo = presets::device_rack();
    let mut c = Cluster::new(&topo, cfg);
    c.run(&short_op_chain(32, op_us, 4 << 10)).expect("runs")
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "fig3_gen",
        "Gen-1 (DPU-centric, pull) vs Gen-2 (device raylets, push), 32-op GPU chains",
        "Gen-1 routes all control through the DPU and pulls futures: 'for \
         short-lived ML ops, frequent trips to the DPU are too costly'. Gen-2 \
         deploys a device-specific raylet to each device and pushes data \
         (paper §2.3.2, Figure 3).",
        &[
            "op_us",
            "gen1_jct",
            "gen2_jct",
            "speedup",
            "gen1_stall/op_us",
            "gen2_stall/op_us",
        ],
    );
    let mut max_speedup: f64 = 0.0;
    let mut min_speedup: f64 = f64::INFINITY;
    for op_us in [5.0f64, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0] {
        let g1 = jct(RuntimeConfig::skadi_gen1(), op_us);
        let g2 = jct(RuntimeConfig::skadi_gen2(), op_us);
        let speedup = g1.makespan.as_secs_f64() / g2.makespan.as_secs_f64();
        max_speedup = max_speedup.max(speedup);
        min_speedup = min_speedup.min(speedup);
        t.row(vec![
            format!("{op_us:.0}"),
            g1.makespan.to_string(),
            g2.makespan.to_string(),
            format!("{speedup:.2}x"),
            format!("{:.2}", g1.mean_stall().as_micros_f64()),
            format!("{:.2}", g2.mean_stall().as_micros_f64()),
        ]);
    }
    t.takeaway(format!(
        "Gen-2 wins {max_speedup:.1}x on the shortest ops and fades to {min_speedup:.2}x \
         for long ops — control overhead only matters when ops are short"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen2_wins_more_for_shorter_ops() {
        let short1 = jct(RuntimeConfig::skadi_gen1(), 5.0);
        let short2 = jct(RuntimeConfig::skadi_gen2(), 5.0);
        let long1 = jct(RuntimeConfig::skadi_gen1(), 5000.0);
        let long2 = jct(RuntimeConfig::skadi_gen2(), 5000.0);
        let short_speedup = short1.makespan.as_secs_f64() / short2.makespan.as_secs_f64();
        let long_speedup = long1.makespan.as_secs_f64() / long2.makespan.as_secs_f64();
        assert!(short_speedup > 2.0, "short-op speedup {short_speedup:.2}");
        assert!(long_speedup < 1.2, "long-op speedup {long_speedup:.2}");
        assert!(short_speedup > long_speedup);
    }

    #[test]
    fn gen2_stall_is_lower() {
        let g1 = jct(RuntimeConfig::skadi_gen1(), 10.0);
        let g2 = jct(RuntimeConfig::skadi_gen2(), 10.0);
        assert!(g2.stall_total < g1.stall_total);
    }
}

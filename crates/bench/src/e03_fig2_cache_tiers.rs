//! E3 / Figure 2 (caching layer): one KV API over device HBM, host DRAM,
//! and disaggregated memory; the layer manages locations and tiering
//! while users only see `put`/`get`.

use skadi::dcsim::rng::{DetRng, Zipf};
use skadi::dcsim::time::SimTime;
use skadi::dcsim::topology::{
    AccelKind, AccelSpec, DurableSpec, MemoryBladeSpec, ServerSpec, TopologyBuilder,
};
use skadi::store::object::ObjectId;
use skadi::store::placement::CachingLayer;
use skadi::store::policy::EvictionPolicy;
use skadi::store::spill::SpillPolicy;
use skadi::store::tier::Tier;

use crate::table::Table;

/// One run: Zipf gets over objects put at a GPU device whose HBM holds
/// only part of the working set. Returns per-tier hit fractions and mean
/// access latency (ns).
pub fn run_working_set(ws_objects: u64, obj_bytes: u64, policy: EvictionPolicy) -> TierMix {
    // Tiny HBM so tiering decisions actually happen.
    let topo = TopologyBuilder::new()
        .rack(|r| {
            r.servers(1, ServerSpec::default());
            r.accel_device(
                AccelKind::Gpu,
                AccelSpec {
                    hbm_bytes: 64 << 20,
                    ..AccelSpec::default()
                },
            );
            r.memory_blade(MemoryBladeSpec {
                dram_bytes: 1 << 30,
                ..MemoryBladeSpec::default()
            });
        })
        .durable_storage(DurableSpec::default())
        .build();
    let gpu = topo.accel_devices(None)[0];
    let mut layer = CachingLayer::new(&topo, policy, SpillPolicy::default());

    let mut now = SimTime::ZERO;
    for i in 0..ws_objects {
        layer
            .put(ObjectId(i), obj_bytes, gpu, now)
            .expect("puts fit somewhere");
        now += skadi::dcsim::time::SimDuration::from_micros(10);
    }

    let zipf = Zipf::new(ws_objects as usize, 0.99);
    let mut rng = DetRng::seed(7);
    let mut mix = TierMix::default();
    let gets = 20_000u64;
    for _ in 0..gets {
        let id = ObjectId(zipf.sample(&mut rng) as u64);
        let (loc, _promoted) = layer.get_promote(id, gpu, now).expect("object exists");
        now += skadi::dcsim::time::SimDuration::from_micros(1);
        let lat = loc.tier.access_latency().as_nanos();
        mix.total_latency_ns += lat;
        match loc.tier {
            Tier::DeviceHbm => mix.hbm += 1,
            Tier::HostDram => mix.dram += 1,
            Tier::DisaggMemory => mix.disagg += 1,
            Tier::Durable => mix.durable += 1,
        }
    }
    mix.gets = gets;
    mix
}

/// Per-tier access counts for one configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierMix {
    /// Total gets issued.
    pub gets: u64,
    /// Served from device HBM.
    pub hbm: u64,
    /// Served from host DRAM.
    pub dram: u64,
    /// Served from disaggregated memory.
    pub disagg: u64,
    /// Served from durable storage.
    pub durable: u64,
    /// Sum of access latencies, ns.
    pub total_latency_ns: u64,
}

impl TierMix {
    /// Mean access latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.total_latency_ns as f64 / self.gets.max(1) as f64
    }

    /// Fraction served by the fastest (HBM) tier.
    pub fn hbm_frac(&self) -> f64 {
        self.hbm as f64 / self.gets.max(1) as f64
    }
}

/// Runs the full experiment: sweep working-set size at 8 MiB objects.
pub fn run() -> Table {
    let mut t = Table::new(
        "fig2_cache",
        "Caching layer: one KV API over HBM / DRAM / disaggregated memory",
        "The caching layer manages data locations and tiering; users only see \
         KV APIs, and it can hide the location and movement of data (paper \
         §2.1 + Figure 2 note 5). Hot objects stay in HBM; the overflow \
         spills to disaggregated memory instead of durable storage.",
        &["ws_MiB", "hbm_%", "disagg_%", "durable_%", "mean_ns"],
    );
    let obj = 8 << 20u64;
    for ws_objects in [4u64, 8, 16, 32, 64] {
        let mix = run_working_set(ws_objects, obj, EvictionPolicy::Lru);
        t.row(vec![
            ((ws_objects * obj) >> 20).to_string(),
            format!("{:.1}", 100.0 * mix.hbm_frac()),
            format!("{:.1}", 100.0 * mix.disagg as f64 / mix.gets as f64),
            format!("{:.1}", 100.0 * mix.durable as f64 / mix.gets as f64),
            format!("{:.0}", mix.mean_ns()),
        ]);
    }
    t.takeaway(
        "within-HBM working sets are served at HBM latency; larger sets degrade \
         smoothly to disaggregated memory — never to durable storage"
            .to_string(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_set_stays_in_hbm() {
        let mix = run_working_set(4, 8 << 20, EvictionPolicy::Lru);
        assert!(mix.hbm_frac() > 0.99, "hbm fraction {}", mix.hbm_frac());
    }

    #[test]
    fn overflow_goes_to_disagg_not_durable() {
        let mix = run_working_set(64, 8 << 20, EvictionPolicy::Lru);
        assert!(mix.disagg > 0, "expected disaggregated-memory hits");
        assert_eq!(mix.durable, 0, "nothing should reach durable storage");
        // Zipf skew keeps the hot head in HBM.
        assert!(mix.hbm_frac() > 0.3, "hbm fraction {}", mix.hbm_frac());
    }

    #[test]
    fn latency_degrades_with_working_set() {
        let small = run_working_set(4, 8 << 20, EvictionPolicy::Lru);
        let large = run_working_set(64, 8 << 20, EvictionPolicy::Lru);
        assert!(large.mean_ns() > small.mean_ns());
    }
}

//! E12 / §2.3: gang scheduling for SPMD sub-graphs — "if necessary, it
//! could also integrate gang-scheduling to support SPMD-style sub-graph"
//! (citing Pathways).

use skadi::dcsim::time::SimTime;
use skadi::prelude::*;
use skadi::runtime::task::{GangId, TaskSpec};
use skadi::runtime::{Cluster, Job, TaskId};

use crate::table::Table;

/// An MPMD job containing one SPMD sub-graph of `width` members whose
/// producers finish at staggered times (stragglers).
pub fn spmd_job(width: u64) -> Job {
    let gang = GangId(1);
    let mut tasks = Vec::new();
    // Staggered producers: producer i takes (i+1) * 2ms.
    for i in 0..width {
        tasks.push(TaskSpec::new(i, ((i + 1) * 2_000) as f64, 1 << 16));
    }
    // SPMD members: each waits on its own producer; they exchange
    // activations, so they should start together.
    for i in 0..width {
        tasks.push(
            TaskSpec::new(width + i, 3_000.0, 1 << 16)
                .after(TaskId(i), 1 << 16)
                .on(Backend::Gpu)
                .in_gang(gang),
        );
    }
    // A reducer joins the SPMD outputs.
    let mut red = TaskSpec::new(2 * width, 1_000.0, 1 << 10);
    for i in 0..width {
        red = red.after(TaskId(width + i), 1 << 16);
    }
    tasks.push(red);
    Job::new("spmd", tasks).expect("valid")
}

/// Runs with or without gang scheduling; returns `(stats, start_skew_us)`.
pub fn run_gang(gang: bool, width: u64) -> (JobStats, f64) {
    let topo = presets::device_rack();
    let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2().with_gang(gang));
    let stats = c.run(&spmd_job(width)).expect("runs");
    // Start skew of the gang members.
    let starts: Vec<SimTime> = (width..2 * width)
        .filter_map(|i| c.task_started_at(TaskId(i)))
        .collect();
    let skew = match (starts.iter().min(), starts.iter().max()) {
        (Some(a), Some(b)) => b.saturating_since(*a).as_micros_f64(),
        _ => f64::NAN,
    };
    (stats, skew)
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e12_gang",
        "Gang scheduling an SPMD sub-graph with straggling producers",
        "SPMD members that exchange data mid-op must start together; without \
         gang scheduling, early members occupy devices and idle-wait for \
         stragglers (paper §2.3, citing Pathways).",
        &["width", "gang", "start_skew_us", "makespan"],
    );
    for width in [2u64, 4] {
        for gang in [false, true] {
            let (s, skew) = run_gang(gang, width);
            t.row(vec![
                width.to_string(),
                (if gang { "on" } else { "off" }).to_string(),
                format!("{skew:.0}"),
                s.makespan.to_string(),
            ]);
        }
    }
    let (_, skew_off) = run_gang(false, 4);
    let (_, skew_on) = run_gang(true, 4);
    t.takeaway(format!(
        "gang scheduling collapses member start skew from {skew_off:.0} us to {skew_on:.0} us"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gang_removes_start_skew() {
        let (_, skew_off) = run_gang(false, 4);
        let (_, skew_on) = run_gang(true, 4);
        assert!(skew_on < 1_000.0, "gang skew {skew_on} us");
        assert!(skew_off > skew_on, "off {skew_off} vs on {skew_on}");
    }

    #[test]
    fn both_complete() {
        for gang in [false, true] {
            let (s, _) = run_gang(gang, 4);
            assert_eq!(s.abandoned, 0);
        }
    }
}

//! E11 / §1: "the auto-scaling of DSAs is almost non-existent" in
//! today's serverless — Skadi's control plane scales the warm device
//! pool with the queue.

use skadi::prelude::*;
use skadi::runtime::config::AutoscaleConfig;
use skadi::runtime::task::TaskSpec;
use skadi::runtime::{Cluster, Job, TaskId};
use skadi_dcsim::time::SimDuration;

use crate::table::Table;

/// A two-burst GPU workload: a wide burst, a serial lull, another burst.
pub fn bursty_job(burst: u64) -> Job {
    let mut tasks = Vec::new();
    let mut id = 0u64;
    // Burst 1: `burst` independent 5 ms GPU ops.
    for _ in 0..burst {
        tasks.push(TaskSpec::new(id, 5_000.0, 1 << 16).on(Backend::Gpu));
        id += 1;
    }
    // Lull: a serial CPU chain gating burst 2.
    let mut prev: Vec<TaskId> = (0..burst).map(TaskId).collect();
    for _ in 0..4 {
        let mut t = TaskSpec::new(id, 10_000.0, 1 << 16);
        for p in &prev {
            t = t.after(*p, 1 << 16);
        }
        tasks.push(t);
        prev = vec![TaskId(id)];
        id += 1;
    }
    // Burst 2.
    for _ in 0..burst {
        tasks.push(
            TaskSpec::new(id, 5_000.0, 1 << 16)
                .after(prev[0], 1 << 16)
                .on(Backend::Gpu),
        );
        id += 1;
    }
    Job::new("bursty", tasks).expect("valid")
}

/// Runs with or without the autoscaler on a device-dense rack.
pub fn run_autoscale(enabled: bool, burst: u64) -> JobStats {
    let topo = presets::device_rack();
    let cfg = if enabled {
        RuntimeConfig::skadi_gen2().with_autoscale(AutoscaleConfig {
            min_devices: 0,
            max_devices: 4,
            scale_up_queue: 1.0,
            interval: SimDuration::from_millis(2),
            provision_delay: SimDuration::from_millis(10),
        })
    } else {
        RuntimeConfig::skadi_gen2()
    };
    let mut c = Cluster::new(&topo, cfg);
    c.run(&bursty_job(burst)).expect("runs")
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e11_autoscale",
        "Auto-scaling the warm accelerator pool under bursty load",
        "Existing serverless keeps DSAs either reserved (idle cost) or absent; \
         Skadi's control plane handles auto-scaling (paper §1, §2.3): warm \
         devices track the queue, trading a provision delay for idle cost.",
        &[
            "burst",
            "mode",
            "makespan",
            "util_%",
            "provisioned",
            "retired",
            "cost",
        ],
    );
    for burst in [4u64, 8, 16] {
        for enabled in [false, true] {
            let s = run_autoscale(enabled, burst);
            t.row(vec![
                burst.to_string(),
                (if enabled { "autoscale" } else { "all-warm" }).to_string(),
                s.makespan.to_string(),
                format!("{:.1}", 100.0 * s.utilization),
                s.metrics.counter("devices_provisioned").to_string(),
                s.metrics.counter("devices_retired").to_string(),
                format!("{:.4}", s.cost_units),
            ]);
        }
    }
    t.takeaway(
        "the autoscaler pays a provision delay on each burst but retires idle \
         devices during the lull — pay-as-you-go for DSAs"
            .to_string(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_complete() {
        for enabled in [false, true] {
            let s = run_autoscale(enabled, 8);
            assert_eq!(s.abandoned, 0);
            assert!(s.finished > 0);
        }
    }

    #[test]
    fn autoscaler_cycles_the_pool() {
        let s = run_autoscale(true, 8);
        assert!(s.metrics.counter("devices_provisioned") > 0);
        assert!(s.metrics.counter("devices_retired") > 0);
    }

    #[test]
    fn all_warm_is_faster_autoscale_never_slower_than_2x() {
        let warm = run_autoscale(false, 8);
        let auto = run_autoscale(true, 8);
        assert!(auto.makespan >= warm.makespan);
        assert!(
            auto.makespan.as_secs_f64() < warm.makespan.as_secs_f64() * 3.0,
            "autoscale {} vs warm {}",
            auto.makespan,
            warm.makespan
        );
    }
}

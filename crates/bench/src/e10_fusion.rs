//! E10 / §2.2: cross-domain operator fusion enabled by the common IR —
//! "a common IR enables graph-level optimizations such as op-fusing
//! across application domains".

use skadi::flowgraph::lower::{lower_graph, LowerConfig};
use skadi::flowgraph::optimize::optimize_graph;
use skadi::flowgraph::FlowGraph;
use skadi::prelude::*;
use skadi::runtime::{job_from_physical, Cluster};

use crate::table::Table;

/// A cross-domain per-row chain: scan -> filter -> project ->
/// tensor.from_frame -> tensor.map -> sink (SQL feeding ML featurization).
pub fn cross_domain_graph(rows: u64, bytes: u64) -> FlowGraph {
    let mut g = FlowGraph::new();
    let src = g.add_source("events", rows, bytes);
    let f = g.add_ir_op("rel.filter", rows, bytes / 2);
    let p = g.add_ir_op("rel.project", rows, bytes / 4);
    let tf = g.add_ir_op("tensor.from_frame", rows, bytes / 4);
    let m = g.add_ir_op("tensor.map", rows, bytes / 4);
    let sink = g.add_sink("features");
    g.connect(src, f).unwrap();
    g.connect(f, p).unwrap();
    g.connect(p, tf).unwrap();
    g.connect(tf, m).unwrap();
    g.connect(m, sink).unwrap();
    g
}

/// Compiles + runs with or without fusion; returns
/// `(logical_v, physical_tasks, edge_bytes, stats)`.
pub fn run_variant(fuse: bool, rows: u64, bytes: u64) -> (usize, usize, u64, JobStats) {
    let mut g = cross_domain_graph(rows, bytes);
    if fuse {
        optimize_graph(&mut g);
    }
    let phys = lower_graph(&g, &LowerConfig::new(4, BackendPolicy::cost_based())).unwrap();
    let job = job_from_physical("fusion", &phys, "sql").unwrap();
    let topo = presets::small_disagg_cluster();
    let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
    let stats = c.run(&job).expect("runs");
    (g.len(), phys.len(), phys.total_edge_bytes(), stats)
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e10_fusion",
        "Cross-domain op fusion: SQL chain feeding tensor featurization",
        "Fusing per-row ops across the relational->tensor boundary removes \
         task launches and intermediate objects (paper §1/§2.2).",
        &[
            "rows",
            "fusion",
            "logical_v",
            "tasks",
            "edge_MB",
            "makespan",
        ],
    );
    for rows in [1u64 << 18, 1 << 20, 1 << 22] {
        let bytes = rows * 64;
        for fuse in [false, true] {
            let (lv, tasks, eb, stats) = run_variant(fuse, rows, bytes);
            t.row(vec![
                rows.to_string(),
                (if fuse { "on" } else { "off" }).to_string(),
                lv.to_string(),
                tasks.to_string(),
                format!("{:.1}", eb as f64 / 1e6),
                stats.makespan.to_string(),
            ]);
        }
    }
    let (_, tasks_off, eb_off, _) = run_variant(false, 1 << 22, (1 << 22) * 64);
    let (_, tasks_on, eb_on, _) = run_variant(true, 1 << 22, (1 << 22) * 64);
    t.takeaway(format!(
        "fusion cuts intermediate bytes {:.1}x and task launches {:.1}x; makespan \
         stays roughly neutral because the unfused plan spreads stages over \
         more device types",
        eb_off as f64 / eb_on as f64,
        tasks_off as f64 / tasks_on as f64
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_reduces_everything() {
        let (lv_off, tasks_off, eb_off, s_off) = run_variant(false, 1 << 20, 64 << 20);
        let (lv_on, tasks_on, eb_on, s_on) = run_variant(true, 1 << 20, 64 << 20);
        assert!(lv_on < lv_off, "logical vertices {lv_on} vs {lv_off}");
        assert!(tasks_on < tasks_off);
        assert!(eb_on < eb_off);
        // Fusion trades device-type parallelism for fewer launches and no
        // intermediates: makespan must stay within a small factor.
        assert!(
            s_on.makespan.as_secs_f64() < s_off.makespan.as_secs_f64() * 1.2,
            "fused {} vs unfused {}",
            s_on.makespan,
            s_off.makespan
        );
    }

    #[test]
    fn whole_chain_fuses_to_one_kernel() {
        let mut g = cross_domain_graph(1000, 64_000);
        let report = optimize_graph(&mut g);
        assert_eq!(report.fused, 3);
        assert_eq!(g.len(), 3); // source + fused + sink
    }
}

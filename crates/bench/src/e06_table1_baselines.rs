//! E6 / Table 1: the related-work feature matrix, made executable — the
//! same mixed workload under configurations emulating each system
//! family's capabilities.

use skadi::pipeline::fig1_pipeline;
use skadi::prelude::*;

use crate::table::Table;

/// One baseline: a name, the Table-1 feature flags, and a runtime config
/// emulating its capabilities on our simulator.
pub struct BaselineRow {
    /// System family name.
    pub name: &'static str,
    /// Declarative API?
    pub d_api: bool,
    /// Hardware-agnostic IR?
    pub ir: bool,
    /// Stateful serverless?
    pub stateful: bool,
    /// Physically-disaggregated devices?
    pub phys_disagg: bool,
    /// Integrated pipelines?
    pub integration: bool,
    /// The emulating config.
    pub cfg: RuntimeConfig,
    /// Whether accelerator backends are allowed (no = CPU-only lowering,
    /// the "no DSA access" emulation).
    pub accel: bool,
}

/// The baselines, mirroring Table 1's families.
pub fn baselines() -> Vec<BaselineRow> {
    vec![
        BaselineRow {
            name: "dryad-like",
            d_api: true,
            ir: false,
            stateful: false,
            phys_disagg: false,
            integration: true,
            cfg: RuntimeConfig::dryad_like(),
            accel: false,
        },
        BaselineRow {
            name: "cloudburst-like",
            d_api: false,
            ir: false,
            stateful: true,
            phys_disagg: false,
            integration: false,
            cfg: RuntimeConfig::cloudburst_like(),
            accel: false,
        },
        BaselineRow {
            name: "ray-like",
            d_api: false,
            ir: false,
            stateful: true,
            phys_disagg: false,
            integration: true,
            cfg: RuntimeConfig::ray_like(),
            accel: false,
        },
        BaselineRow {
            name: "skadi-gen1",
            d_api: true,
            ir: true,
            stateful: true,
            phys_disagg: true,
            integration: true,
            cfg: RuntimeConfig::skadi_gen1(),
            accel: true,
        },
        BaselineRow {
            name: "skadi-gen2",
            d_api: true,
            ir: true,
            stateful: true,
            phys_disagg: true,
            integration: true,
            cfg: RuntimeConfig::skadi_gen2(),
            accel: true,
        },
    ]
}

/// Runs one baseline over the integrated pipeline.
pub fn run_baseline(b: &BaselineRow) -> JobStats {
    let policy = if b.accel {
        BackendPolicy::cost_based()
    } else {
        BackendPolicy::cpu_only()
    };
    let session = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .runtime(b.cfg.clone())
        .backend_policy(policy)
        .build();
    fig1_pipeline(&session, 1)
        .expect("builds")
        .run()
        .expect("runs")
        .stats
}

fn mark(b: bool) -> String {
    (if b { "yes" } else { "-" }).to_string()
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "table1",
        "Related-work capability matrix, executed",
        "Skadi is the only row with declarative API + IR + stateful serverless \
         + physical disaggregation + integration (paper Table 1); each missing \
         capability costs measurable performance on the integrated pipeline.",
        &[
            "system",
            "D-API",
            "IR",
            "stateful",
            "phys-disagg",
            "integr",
            "makespan",
            "durable_trips",
            "stall_ms",
        ],
    );
    let mut skadi_jct = f64::NAN;
    let mut worst_jct: f64 = 0.0;
    for b in baselines() {
        let s = run_baseline(&b);
        let jct = s.makespan.as_secs_f64();
        if b.name == "skadi-gen2" {
            skadi_jct = jct;
        }
        worst_jct = worst_jct.max(jct);
        t.row(vec![
            b.name.to_string(),
            mark(b.d_api),
            mark(b.ir),
            mark(b.stateful),
            mark(b.phys_disagg),
            mark(b.integration),
            s.makespan.to_string(),
            s.durable_trips.to_string(),
            format!("{:.2}", s.stall_total.as_secs_f64() * 1e3),
        ]);
    }
    t.takeaway(format!(
        "skadi-gen2 outruns the weakest baseline {:.1}x on the same pipeline",
        worst_jct / skadi_jct
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skadi_is_the_only_full_row() {
        let rows = baselines();
        let full: Vec<&str> = rows
            .iter()
            .filter(|b| b.d_api && b.ir && b.stateful && b.phys_disagg && b.integration)
            .map(|b| b.name)
            .collect();
        assert_eq!(full, vec!["skadi-gen1", "skadi-gen2"]);
    }

    #[test]
    fn skadi_beats_stateless_baseline() {
        let rows = baselines();
        let dryad = run_baseline(&rows[0]);
        let skadi = run_baseline(&rows[4]);
        assert!(skadi.makespan < dryad.makespan);
        assert!(skadi.durable_trips < dryad.durable_trips);
    }

    #[test]
    fn capability_order_shows_in_makespan() {
        // Each added capability helps: skadi (DSAs via phys-disagg) beats
        // the CPU-only ray-like runtime, which beats the non-integrated
        // cloudburst-like one, and gen2 beats gen1.
        let rows = baselines();
        let cloudburst = run_baseline(&rows[1]);
        let ray = run_baseline(&rows[2]);
        let gen1 = run_baseline(&rows[3]);
        let gen2 = run_baseline(&rows[4]);
        assert!(ray.makespan < cloudburst.makespan);
        assert!(gen1.makespan < ray.makespan);
        assert!(gen2.makespan < gen1.makespan);
    }
}

//! E9 / §1 data-plane benefit 2: "a shared format such as Arrow enables
//! functions running on heterogeneous devices to exchange data without
//! costly data marshalling, hence reducing the cost paid per transfer."
//!
//! This is the one experiment that measures *real* wall-clock work: our
//! columnar IPC (zero-copy decode) against the conventional row-at-a-time
//! marshalling baseline, over identical record batches.

use std::time::Instant;

use skadi::arrow::prelude::*;
use skadi::arrow::{ipc, marshal};

use crate::table::Table;

/// Builds a realistic mixed-type batch with `rows` rows.
pub fn sample_batch(rows: usize) -> RecordBatch {
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int64, false),
        Field::new("score", DataType::Float64, false),
        Field::new("flag", DataType::Bool, false),
        Field::new("name", DataType::Utf8, false),
    ]);
    let names: Vec<String> = (0..rows).map(|i| format!("user-{i:08}")).collect();
    RecordBatch::try_new(
        schema,
        vec![
            Array::from_i64((0..rows as i64).collect()),
            Array::from_f64((0..rows).map(|i| i as f64 * 0.5).collect()),
            Array::from_bool(&(0..rows).map(|i| i % 3 == 0).collect::<Vec<_>>()),
            Array::from_utf8(&names),
        ],
    )
    .expect("valid batch")
}

/// One measurement: (ipc_encode+decode_us, marshal_encode+decode_us,
/// ipc_bytes, marshal_bytes).
pub fn measure(rows: usize, reps: u32) -> (f64, f64, usize, usize) {
    let batch = sample_batch(rows);

    let start = Instant::now();
    let mut ipc_bytes = 0;
    for _ in 0..reps {
        let enc = ipc::encode(&batch);
        ipc_bytes = enc.len();
        let back = ipc::decode(enc).expect("decodes");
        assert_eq!(back.num_rows(), rows);
    }
    let ipc_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

    let start = Instant::now();
    let mut row_bytes = 0;
    for _ in 0..reps {
        let enc = marshal::to_rows(&batch);
        row_bytes = enc.len();
        let back = marshal::from_rows(&enc).expect("decodes");
        assert_eq!(back.num_rows(), rows);
    }
    let row_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

    (ipc_us, row_us, ipc_bytes, row_bytes)
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e9_format",
        "Shared columnar format (Arrow-like IPC) vs row marshalling",
        "A shared format lets heterogeneous devices exchange data without \
         costly marshalling, reducing the cost paid per transfer (paper §1); \
         IPC decode aliases the wire buffer while marshalling re-parses every \
         value.",
        &[
            "rows",
            "ipc_us",
            "marshal_us",
            "cpu_ratio",
            "ipc_KB",
            "marshal_KB",
        ],
    );
    let mut worst: f64 = 0.0;
    for rows in [100usize, 1_000, 10_000, 100_000] {
        let reps = if rows >= 100_000 { 3 } else { 10 };
        let (ipc_us, row_us, ib, rb) = measure(rows, reps);
        worst = worst.max(row_us / ipc_us);
        t.row(vec![
            rows.to_string(),
            format!("{ipc_us:.0}"),
            format!("{row_us:.0}"),
            format!("{:.1}x", row_us / ipc_us),
            (ib / 1024).to_string(),
            (rb / 1024).to_string(),
        ]);
    }
    t.takeaway(format!(
        "marshalling burns up to {worst:.0}x the CPU of the shared format per exchange"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_is_cheaper_than_marshalling() {
        let (ipc_us, row_us, _, _) = measure(10_000, 3);
        assert!(
            row_us > ipc_us * 2.0,
            "expected marshalling to cost >2x, got ipc {ipc_us:.0}us row {row_us:.0}us"
        );
    }

    #[test]
    fn round_trips_agree() {
        let batch = sample_batch(500);
        let via_ipc = ipc::decode(ipc::encode(&batch)).unwrap();
        let via_rows = marshal::from_rows(&marshal::to_rows(&batch)).unwrap();
        assert_eq!(via_ipc, batch);
        assert_eq!(via_rows, batch);
    }
}

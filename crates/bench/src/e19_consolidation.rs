//! E19 (extension): consolidation — one shared runtime vs per-system
//! silos.
//!
//! The paper's core utilization complaint (§1): computing silos in which
//! DSAs (and servers) are "exclusively owned by a data system or a
//! service [...] can result in suboptimal cluster utilization", and "it
//! will be in the cloud vendors' best interest" to run many data systems
//! on one shared runtime. This experiment submits two equal bursts whose
//! arrivals are progressively staggered, either time-sharing the full
//! cluster (Skadi) or each owning a static half (silos).

use skadi::dcsim::time::{SimDuration, SimTime};
use skadi::prelude::*;
use skadi::runtime::task::TaskSpec;
use skadi::runtime::{Cluster, Job};

use crate::table::Table;

fn burst(name: &str, tasks: u64, compute_us: f64) -> Job {
    Job::new(
        name,
        (0..tasks)
            .map(|i| TaskSpec::new(i, compute_us, 1 << 12))
            .collect(),
    )
    .expect("valid burst")
}

/// One comparison: two 256-task bursts whose arrivals are `offset_ms`
/// apart, either sharing the full cluster or siloed on static halves.
/// Returns `(shared_worst, silo_worst)` where "worst" is the slower job's
/// submission-to-finish time.
pub fn compare(offset_ms: u64) -> (SimDuration, SimDuration) {
    let topo = presets::small_disagg_cluster();
    let a = burst("a", 256, 2000.0);
    let b = burst("b", 256, 2000.0);

    let mut shared = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
    let (per_job, _) = shared
        .run_jobs(
            &[
                (a.clone(), SimTime::ZERO),
                (b.clone(), SimTime::from_millis(offset_ms)),
            ],
            &FailurePlan::none(),
        )
        .expect("shared run");
    let shared_worst = per_job.iter().map(|p| p.completion).max().expect("jobs");

    // Silos: arrival offsets don't matter — each job has its half to
    // itself either way.
    let half = presets::server_cluster(1, 4);
    let mut silo_a = Cluster::new(&half, RuntimeConfig::skadi_gen2());
    let sa = silo_a.run(&a).expect("silo a");
    let mut silo_b = Cluster::new(&half, RuntimeConfig::skadi_gen2());
    let sb = silo_b.run(&b).expect("silo b");
    let silo_worst = sa.makespan.max(sb.makespan);

    (shared_worst, silo_worst)
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e19_consolidation",
        "Shared runtime vs per-system silos (staggered bursts)",
        "Computing silos leave capacity idle while neighbors queue; one \
         shared distributed runtime lets any burst borrow the whole cluster \
         (paper §1's utilization argument for breaking silos).",
        &["arrival_offset_ms", "shared_worst", "silo_worst", "speedup"],
    );
    for offset_ms in [0u64, 2, 4, 8] {
        let (shared, silo) = compare(offset_ms);
        t.row(vec![
            offset_ms.to_string(),
            shared.to_string(),
            silo.to_string(),
            format!("{:.2}x", silo.as_secs_f64() / shared.as_secs_f64()),
        ]);
    }
    let (shared0, silo0) = compare(0);
    let (shared8, silo8) = compare(8);
    t.takeaway(format!(
        "perfectly aligned bursts tie ({:.2}x — same total capacity); \
         staggered bursts let sharing reclaim the silo's idle half ({:.1}x)",
        silo0.as_secs_f64() / shared0.as_secs_f64(),
        silo8.as_secs_f64() / shared8.as_secs_f64()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_never_loses() {
        for offset in [0, 2, 8] {
            let (shared, silo) = compare(offset);
            assert!(
                shared.as_secs_f64() <= silo.as_secs_f64() * 1.05,
                "offset {offset}: shared {shared} vs silo {silo}"
            );
        }
    }

    #[test]
    fn advantage_grows_with_stagger() {
        let (s0, l0) = compare(0);
        let (s8, l8) = compare(8);
        let aligned = l0.as_secs_f64() / s0.as_secs_f64();
        let staggered = l8.as_secs_f64() / s8.as_secs_f64();
        assert!(
            staggered > aligned * 1.3,
            "staggered {staggered:.2} vs aligned {aligned:.2}"
        );
    }
}

//! E20 (extension): tightly-coupled pods — "computing silos can be
//! tightly-coupled clusters in which DSAs are interconnected via
//! high-speed interconnect, essentially trading the scale of the cluster
//! for the best performance" (paper §1). The runtime runs the same SPMD
//! job on a commodity fabric and on a pod whose rack-internal links are
//! NVLink-class, without any change to the job.

use skadi::dcsim::network::LinkParams;
use skadi::dcsim::time::SimDuration;
use skadi::prelude::*;
use skadi::runtime::task::{GangId, TaskSpec};
use skadi::runtime::{Cluster, Job, TaskId};

use crate::table::Table;

/// An SPMD training phase: `steps` rounds of 4 gang-scheduled GPU ops
/// with all-to-all activation exchange (`mb` MiB per edge) between
/// rounds.
pub fn spmd_exchange_job(steps: u64, mb: u64) -> Job {
    let bytes = mb << 20;
    let width = 4u64;
    let mut tasks = Vec::new();
    for s in 0..steps {
        let gang = GangId(s as u32);
        for w in 0..width {
            let id = s * width + w;
            let mut t = TaskSpec::new(id, 2_000.0, bytes)
                .on(Backend::Gpu)
                .in_gang(gang)
                .named(&format!("step{s}w{w}"));
            if s > 0 {
                // All-to-all with the previous round.
                for p in 0..width {
                    t = t.after(TaskId((s - 1) * width + p), bytes);
                }
            }
            tasks.push(t);
        }
    }
    Job::new("spmd-exchange", tasks).expect("valid spmd job")
}

/// Runs the job on the device rack, with or without the pod interconnect.
pub fn run_pod(pod: bool, steps: u64, mb: u64) -> JobStats {
    let topo = presets::device_rack();
    let links = if pod {
        LinkParams::default().with_pod(0, SimDuration::from_micros(1), 100 << 30)
    } else {
        LinkParams::default()
    };
    let mut c = Cluster::with_links(&topo, RuntimeConfig::skadi_gen2().with_gang(true), links);
    c.run(&spmd_exchange_job(steps, mb)).expect("runs")
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e20_pod",
        "SPMD exchange on a commodity fabric vs a tightly-coupled pod",
        "Tightly-coupled DSA clusters trade scale for interconnect speed \
         (paper §1); the runtime schedules onto them transparently — the \
         job is byte-identical, only the rack's internal links differ \
         (Figure 2's 'highly customized clusters').",
        &["exchange_MiB", "commodity", "pod", "speedup"],
    );
    for mb in [4u64, 16, 64] {
        let plain = run_pod(false, 6, mb);
        let pod = run_pod(true, 6, mb);
        t.row(vec![
            mb.to_string(),
            plain.makespan.to_string(),
            pod.makespan.to_string(),
            format!(
                "{:.2}x",
                plain.makespan.as_secs_f64() / pod.makespan.as_secs_f64()
            ),
        ]);
    }
    let plain = run_pod(false, 6, 64);
    let pod = run_pod(true, 6, 64);
    t.takeaway(format!(
        "the pod's interconnect pays off in proportion to exchange volume \
         ({:.1}x at 64 MiB activations)",
        plain.makespan.as_secs_f64() / pod.makespan.as_secs_f64()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_always_wins_and_scales_with_volume() {
        let small_plain = run_pod(false, 4, 4);
        let small_pod = run_pod(true, 4, 4);
        let big_plain = run_pod(false, 4, 64);
        let big_pod = run_pod(true, 4, 64);
        assert!(small_pod.makespan <= small_plain.makespan);
        assert!(big_pod.makespan < big_plain.makespan);
        let small_gain = small_plain.makespan.as_secs_f64() / small_pod.makespan.as_secs_f64();
        let big_gain = big_plain.makespan.as_secs_f64() / big_pod.makespan.as_secs_f64();
        assert!(
            big_gain > small_gain,
            "big {big_gain:.2} vs small {small_gain:.2}"
        );
    }

    #[test]
    fn both_fabrics_complete() {
        for pod in [false, true] {
            let s = run_pod(pod, 4, 16);
            assert_eq!(s.finished, 16);
            assert_eq!(s.abandoned, 0);
        }
    }
}

//! `sched` benchmarks: the scheduler core at 10k-node scale.
//!
//! Three sections, one results file (`BENCH_sched.json`):
//!
//! - **queue** — the discrete-event core. The calendar
//!   [`EventQueue`](skadi_dcsim::engine::EventQueue) vs a faithful
//!   replica of the engine *before* the refactor: one global
//!   `BinaryHeap` with a sequence tie-break, whose `pending_at` is an
//!   O(n) sweep. Both run the identical seeded workload (batched drains,
//!   same-instant follow-ups, periodic same-instant inspection — the
//!   cluster simulation's hot path) and must agree on every delivery
//!   before timing starts. Reported as events/sec at 100/1k/10k nodes.
//! - **policies** — makespan of the hot-key-skew query per
//!   [`PlacementPolicy`], static vs `SessionBuilder::adaptive(true)`
//!   lowering. Adaptive re-planning must strictly shrink makespan.
//! - **scale** — staggered multi-job chaos ([`run_chaos_multi_scaled`])
//!   at 100/1k/10k nodes: the run must complete, converge to the
//!   failure-free manifest, and is timed wall-clock.
//!
//! Modes (see the `sched-bench` binary): `smoke` rewrites the JSON with
//! short budgets, `full` lengthens them, `check` re-measures and gates
//! the committed file (CI).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use skadi::prelude::*;
use skadi_arrow::array::Array;
use skadi_arrow::batch::RecordBatch;
use skadi_arrow::datatype::DataType;
use skadi_arrow::schema::{Field, Schema};
use skadi_dcsim::engine::EventQueue;
use skadi_dcsim::rng::DetRng;
use skadi_dcsim::time::SimTime;
use skadi_frontends::exec::MemDb;
use skadi_runtime::chaos::{chaos_config, chaos_topology_scaled, run_chaos_multi_scaled};
use skadi_runtime::{FtMode, PlacementPolicy, RuntimeConfig};

/// Path of the recorded trajectory, relative to this crate.
pub const RESULTS_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");

/// Node counts every section sweeps.
pub const NODE_COUNTS: [usize; 3] = [100, 1_000, 10_000];

/// The events/sec multiple the calendar queue must hold over the heap
/// baseline at 10k nodes (the acceptance bar of the refactor).
pub const QUEUE_SPEEDUP_FLOOR: f64 = 5.0;

// ---------------------------------------------------------------------
// Heap baseline: the event queue before the calendar refactor
// ---------------------------------------------------------------------

/// Pre-refactor event queue: one global `BinaryHeap` of
/// `(Reverse(time), Reverse(seq))` entries. Same delivery order contract
/// as the calendar queue (ascending time, FIFO per instant), but pop and
/// push are O(log n) and [`HeapQueue::pending_at`] walks every entry.
pub struct HeapQueue<E> {
    heap: BinaryHeap<(Reverse<SimTime>, Reverse<u64>, HeapSlot<E>)>,
    seq: u64,
    now: SimTime,
    delivered: u64,
}

/// Payload wrapper that opts out of the tuple's `Ord` (the seq number is
/// already a total tie-break, so the payload is never compared).
struct HeapSlot<E>(E);

impl<E> PartialEq for HeapSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for HeapSlot<E> {}
impl<E> PartialOrd for HeapSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// Events waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total deliveries so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Schedules `event` at absolute `at` (O(log n)).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "heap baseline: scheduling into the past");
        self.heap
            .push((Reverse(at), Reverse(self.seq), HeapSlot(event)));
        self.seq += 1;
    }

    /// Timestamp of the next event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|(Reverse(t), _, _)| *t)
    }

    /// Pops every event at the earliest pending instant, in scheduling
    /// order — O(k log n) heap churn for a k-way tie.
    pub fn pop_batch(&mut self) -> Option<(SimTime, Vec<E>)> {
        let (Reverse(t), _, HeapSlot(first)) = self.heap.pop()?;
        self.now = t;
        self.delivered += 1;
        let mut batch = vec![first];
        while self.peek_time() == Some(t) {
            let (_, _, HeapSlot(e)) = self.heap.pop().expect("peeked");
            batch.push(e);
            self.delivered += 1;
        }
        Some((t, batch))
    }

    /// Events pending at exactly `at`, in scheduling order — the O(n)
    /// full sweep the calendar layout exists to kill.
    pub fn pending_at(&self, at: SimTime) -> Vec<&E> {
        let mut hits: Vec<(u64, &E)> = self
            .heap
            .iter()
            .filter(|(Reverse(t), _, _)| *t == at)
            .map(|(_, Reverse(s), HeapSlot(e))| (*s, e))
            .collect();
        hits.sort_by_key(|&(s, _)| s);
        hits.into_iter().map(|(_, e)| e).collect()
    }
}

// ---------------------------------------------------------------------
// Queue workload
// ---------------------------------------------------------------------

/// How often the workload inspects the current instant, in batches. The
/// cluster simulation consults `pending_at` once per batched drain (gang
/// admission and the invariant pass both look at what else is due at the
/// same instant), so the workload inspects every batch too — the O(n)
/// sweep that makes the heap's cost per event grow with the pending set.
const INSPECT_EVERY: u64 = 1;

/// One seeded scheduling decision, identical for both queue shapes.
fn follow_up(rng: &mut DetRng, now: SimTime) -> SimTime {
    // Half the follow-ups land at or next to `now` (cost models collapse
    // many latencies to ties); the rest spread over a short horizon.
    if rng.chance(0.5) {
        SimTime::from_micros(now.as_micros() + rng.below(2))
    } else {
        SimTime::from_micros(now.as_micros() + 1 + rng.below(200))
    }
}

/// Drives `nodes` concurrent event chains for `target` deliveries and
/// returns `(wall, deliveries, fingerprint)`. The fingerprint folds
/// every delivery's `(time, payload)` plus every inspection's hit count,
/// so two queue shapes that disagree on ordering cannot produce the same
/// value.
macro_rules! drive_queue {
    ($q:expr, $nodes:expr, $target:expr, $seed:expr) => {{
        let mut q = $q;
        let mut rng = DetRng::seed($seed);
        for node in 0..$nodes as u64 {
            q.schedule_at(SimTime::from_micros(rng.below(1_000)), node);
        }
        let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
        let mut batches = 0u64;
        let start = Instant::now();
        while q.delivered() < $target {
            let (t, batch) = q.pop_batch().expect("workload keeps the queue warm");
            for &e in &batch {
                fp = (fp ^ (t.as_micros().wrapping_mul(31).wrapping_add(e)))
                    .wrapping_mul(0x1000_0000_01b3);
                q.schedule_at(follow_up(&mut rng, t), e);
            }
            batches += 1;
            if batches.is_multiple_of(INSPECT_EVERY) {
                if let Some(next) = q.peek_time() {
                    fp = fp.wrapping_add(q.pending_at(next).len() as u64);
                }
            }
        }
        (start.elapsed(), q.delivered(), fp)
    }};
}

/// One measured node count.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueEntry {
    /// Simulated node count (= concurrent event chains = pending set size).
    pub nodes: usize,
    /// Deliveries timed.
    pub events: u64,
    /// Events/sec through the heap baseline.
    pub heap_eps: u64,
    /// Events/sec through the calendar queue.
    pub calendar_eps: u64,
}

impl QueueEntry {
    /// calendar / heap (higher is better).
    pub fn speedup(&self) -> f64 {
        self.calendar_eps as f64 / self.heap_eps.max(1) as f64
    }
}

/// Times both queue shapes on the identical workload at each node count.
/// Before timing, a correctness pass asserts both shapes produce the
/// same delivery fingerprint — the baseline really is a faithful replica.
pub fn run_queue_suite(node_counts: &[usize], events_per_node: u64) -> Vec<QueueEntry> {
    let mut out = Vec::new();
    for &nodes in node_counts {
        let target = nodes as u64 * events_per_node;
        let (_, _, fp_cal) = drive_queue!(EventQueue::<u64>::new(), nodes, target, 42);
        let (_, _, fp_heap) = drive_queue!(HeapQueue::<u64>::new(), nodes, target, 42);
        assert_eq!(
            fp_cal, fp_heap,
            "queue shapes disagree at {nodes} nodes — baseline is not faithful"
        );
        // Best of 3: the workload is deterministic, so variance is noise.
        let mut best_cal = Duration::MAX;
        let mut best_heap = Duration::MAX;
        for _ in 0..3 {
            best_cal = best_cal.min(drive_queue!(EventQueue::<u64>::new(), nodes, target, 42).0);
            best_heap = best_heap.min(drive_queue!(HeapQueue::<u64>::new(), nodes, target, 42).0);
        }
        let eps = |d: Duration| (target as f64 / d.as_secs_f64().max(1e-9)) as u64;
        out.push(QueueEntry {
            nodes,
            events: target,
            heap_eps: eps(best_heap),
            calendar_eps: eps(best_cal),
        });
    }
    out
}

// ---------------------------------------------------------------------
// Placement policies on the hot-key-skew workload
// ---------------------------------------------------------------------

/// Hot-key-skewed fact table (3 distinct keys) — the same shape
/// `tests/adaptive.rs` pins byte-identity on.
fn skewed_facts(n: usize, seed: u64) -> RecordBatch {
    let mut rng = DetRng::seed(seed);
    let keys: Vec<i64> = (0..n).map(|_| (rng.below(100) % 3) as i64).collect();
    let vals: Vec<f64> = (0..n).map(|_| rng.unit() * 40.0 - 10.0).collect();
    RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
        ]),
        vec![Array::from_i64(keys), Array::from_f64(vals)],
    )
    .expect("skewed facts")
}

fn skew_db() -> MemDb {
    let labels = ["a0", "b1", "c2", "d0", "e1", "f2", "g0", "h1", "i2"];
    let dim = RecordBatch::try_new(
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("label", DataType::Utf8, false),
        ]),
        vec![
            Array::from_i64(vec![0, 1, 2, 0, 1, 2, 0, 1, 2]),
            Array::from_utf8(&labels),
        ],
    )
    .expect("dim table");
    MemDb::new()
        .register("facts", skewed_facts(12_000, 7))
        .register("tiny", dim)
}

/// The skewed join+group-by both lowering modes run.
pub const SKEW_SQL: &str = "SELECT label, sum(v) AS s, count(*) AS n \
     FROM tiny JOIN facts ON k = k GROUP BY label ORDER BY s";

/// Static vs adaptive lowering of [`SKEW_SQL`] under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEntry {
    /// Placement policy name (`Display` form).
    pub policy: String,
    /// Simulated makespan of the static plan, microseconds.
    pub static_us: u64,
    /// Simulated makespan of the adaptive plan, microseconds.
    pub adaptive_us: u64,
    /// Pilot re-plans the adaptive run applied.
    pub replans: u64,
    /// Join build-side swaps the adaptive run performed.
    pub build_swaps: u64,
}

impl PolicyEntry {
    /// static / adaptive makespan (higher is better; > 1.0 = adaptive won).
    pub fn gain(&self) -> f64 {
        self.static_us as f64 / self.adaptive_us.max(1) as f64
    }
}

/// Runs [`SKEW_SQL`] at parallelism 16 — twice the cluster's server
/// count, so static lowering's mostly-empty shard flood queues in waves
/// while the adaptive plan's three real shards run in one — under every
/// placement policy, static and adaptive. Both runs are asserted equal
/// to the local engine before their makespans are recorded — the perf
/// claim never outruns the correctness one.
pub fn run_policy_suite() -> Vec<PolicyEntry> {
    let db = skew_db();
    let expected = db.query(SKEW_SQL).expect("local reference");
    let run = |policy: PlacementPolicy, adaptive: bool| {
        let session = Session::builder()
            .topology(presets::small_disagg_cluster())
            .parallelism(16)
            .adaptive(adaptive)
            .runtime(RuntimeConfig::skadi_gen2().with_placement(policy))
            .build();
        let r = session
            .sql_distributed(&db, SKEW_SQL)
            .expect("distributed run");
        assert_eq!(r.batch, expected, "{policy} adaptive={adaptive} diverged");
        r
    };
    PlacementPolicy::ALL
        .into_iter()
        .map(|policy| {
            let fixed = run(policy, false);
            let adaptive = run(policy, true);
            PolicyEntry {
                policy: policy.to_string(),
                static_us: fixed.report.stats.makespan.as_micros(),
                adaptive_us: adaptive.report.stats.makespan.as_micros(),
                replans: adaptive.replans.len() as u64,
                build_swaps: adaptive.data_plane.build_swaps(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Multi-job chaos at scale
// ---------------------------------------------------------------------

/// One multi-job chaos run at one cluster size.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleEntry {
    /// Simulated servers.
    pub nodes: usize,
    /// Staggered jobs.
    pub jobs: usize,
    /// Wall milliseconds for baseline + chaos runs.
    pub wall_ms: u64,
    /// True when the chaos manifest matched the failure-free manifest.
    pub converged: bool,
}

/// Runs the staggered multi-job chaos suite at each node count. The
/// debug invariant checker (O(nodes) per event) stays on at 100 nodes
/// and is disabled above, where it would dominate the measurement.
pub fn run_scale_suite(node_counts: &[usize], jobs: usize) -> Vec<ScaleEntry> {
    node_counts
        .iter()
        .map(|&nodes| {
            let topo = chaos_topology_scaled(nodes as u32);
            let cfg = chaos_config(FtMode::Lineage).with_debug_invariants(nodes <= 100);
            let start = Instant::now();
            let v = run_chaos_multi_scaled(&topo, 11, jobs, cfg)
                .unwrap_or_else(|e| panic!("{nodes}-node chaos run failed: {e}"));
            ScaleEntry {
                nodes,
                jobs,
                wall_ms: start.elapsed().as_millis() as u64,
                converged: v.equivalent(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// BENCH_sched.json (hand-rolled; the tree has no serde)
// ---------------------------------------------------------------------

/// Renders the results file, one entry object per line so the parser
/// stays line-oriented. Sections are keyed by a per-line `"section"`
/// field, so one parser handles all three.
pub fn render_json(
    mode: &str,
    queue: &[QueueEntry],
    policies: &[PolicyEntry],
    scale: &[ScaleEntry],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"suite\": \"sched\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"entries\": [\n");
    let mut lines: Vec<String> = Vec::new();
    for q in queue {
        lines.push(format!(
            "    {{\"section\": \"queue\", \"nodes\": {}, \"events\": {}, \"heap_eps\": {}, \"calendar_eps\": {}, \"speedup\": {:.2}}}",
            q.nodes, q.events, q.heap_eps, q.calendar_eps, q.speedup()
        ));
    }
    for p in policies {
        lines.push(format!(
            "    {{\"section\": \"policy\", \"policy\": \"{}\", \"static_us\": {}, \"adaptive_us\": {}, \"replans\": {}, \"build_swaps\": {}, \"gain\": {:.2}}}",
            p.policy, p.static_us, p.adaptive_us, p.replans, p.build_swaps, p.gain()
        ));
    }
    for e in scale {
        lines.push(format!(
            "    {{\"section\": \"scale\", \"nodes\": {}, \"jobs\": {}, \"wall_ms\": {}, \"converged\": {}}}",
            e.nodes, e.jobs, e.wall_ms, e.converged
        ));
    }
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Everything [`render_json`] recorded, parsed back.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedResults {
    /// `"queue"` section entries.
    pub queue: Vec<QueueEntry>,
    /// `"policy"` section entries.
    pub policies: Vec<PolicyEntry>,
    /// `"scale"` section entries.
    pub scale: Vec<ScaleEntry>,
}

/// Parses a [`render_json`] file back into its sections.
pub fn parse_results(text: &str) -> SchedResults {
    let mut out = SchedResults::default();
    for line in text.lines() {
        match json_field(line, "section") {
            Some("queue") => {
                if let (Some(nodes), Some(events), Some(h), Some(c)) = (
                    json_field(line, "nodes").and_then(|v| v.parse().ok()),
                    json_field(line, "events").and_then(|v| v.parse().ok()),
                    json_field(line, "heap_eps").and_then(|v| v.parse().ok()),
                    json_field(line, "calendar_eps").and_then(|v| v.parse().ok()),
                ) {
                    out.queue.push(QueueEntry {
                        nodes,
                        events,
                        heap_eps: h,
                        calendar_eps: c,
                    });
                }
            }
            Some("policy") => {
                if let (Some(policy), Some(s), Some(a), Some(r), Some(b)) = (
                    json_field(line, "policy").map(str::to_string),
                    json_field(line, "static_us").and_then(|v| v.parse().ok()),
                    json_field(line, "adaptive_us").and_then(|v| v.parse().ok()),
                    json_field(line, "replans").and_then(|v| v.parse().ok()),
                    json_field(line, "build_swaps").and_then(|v| v.parse().ok()),
                ) {
                    out.policies.push(PolicyEntry {
                        policy,
                        static_us: s,
                        adaptive_us: a,
                        replans: r,
                        build_swaps: b,
                    });
                }
            }
            Some("scale") => {
                if let (Some(nodes), Some(jobs), Some(w), Some(conv)) = (
                    json_field(line, "nodes").and_then(|v| v.parse().ok()),
                    json_field(line, "jobs").and_then(|v| v.parse().ok()),
                    json_field(line, "wall_ms").and_then(|v| v.parse().ok()),
                    json_field(line, "converged").and_then(|v| v.parse().ok()),
                ) {
                    out.scale.push(ScaleEntry {
                        nodes,
                        jobs,
                        wall_ms: w,
                        converged: conv,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// The committed-file gate (`sched-bench check`), hardware-independent
/// parts: the 10k-node queue speedup floor, adaptive strictly beating
/// static under every policy, and every scale run converged — including
/// the 10k-node one, which must be present. Returns human-readable
/// violations (empty = pass).
pub fn find_committed_problems(results: &SchedResults) -> Vec<String> {
    let mut problems = Vec::new();
    match results.queue.iter().find(|q| q.nodes == 10_000) {
        None => problems.push("queue: no 10k-node entry".into()),
        Some(q) if q.speedup() < QUEUE_SPEEDUP_FLOOR => problems.push(format!(
            "queue @ 10k nodes: calendar only {:.2}x the heap baseline, need {QUEUE_SPEEDUP_FLOOR}x",
            q.speedup()
        )),
        Some(_) => {}
    }
    if results.policies.is_empty() {
        problems.push("policy: no entries".into());
    }
    for p in &results.policies {
        if p.adaptive_us >= p.static_us {
            problems.push(format!(
                "policy {}: adaptive makespan {}us did not beat static {}us",
                p.policy, p.adaptive_us, p.static_us
            ));
        }
        if p.replans == 0 {
            problems.push(format!(
                "policy {}: adaptive run never re-planned",
                p.policy
            ));
        }
    }
    match results.scale.iter().find(|e| e.nodes == 10_000) {
        None => problems.push("scale: no 10k-node chaos entry".into()),
        Some(e) if !e.converged => {
            problems.push("scale @ 10k nodes: chaos run did not converge".into())
        }
        Some(_) => {}
    }
    for e in &results.scale {
        if !e.converged {
            problems.push(format!(
                "scale @ {} nodes: chaos run did not converge",
                e.nodes
            ));
        }
    }
    problems
}

/// Pretty stdout tables for all three sections.
pub fn render_table(results: &SchedResults) -> String {
    let mut s = format!(
        "{:<8} {:>9} {:>12} {:>14} {:>9}\n",
        "queue", "nodes", "heap_eps", "calendar_eps", "speedup"
    );
    for q in &results.queue {
        s.push_str(&format!(
            "{:<8} {:>9} {:>12} {:>14} {:>8.2}x\n",
            "",
            q.nodes,
            q.heap_eps,
            q.calendar_eps,
            q.speedup()
        ));
    }
    s.push_str(&format!(
        "{:<14} {:>11} {:>12} {:>8} {:>6} {:>7}\n",
        "policy", "static_us", "adaptive_us", "replans", "swaps", "gain"
    ));
    for p in &results.policies {
        s.push_str(&format!(
            "{:<14} {:>11} {:>12} {:>8} {:>6} {:>6.2}x\n",
            p.policy,
            p.static_us,
            p.adaptive_us,
            p.replans,
            p.build_swaps,
            p.gain()
        ));
    }
    s.push_str(&format!(
        "{:<8} {:>9} {:>6} {:>9} {:>10}\n",
        "scale", "nodes", "jobs", "wall_ms", "converged"
    ));
    for e in &results.scale {
        s.push_str(&format!(
            "{:<8} {:>9} {:>6} {:>9} {:>10}\n",
            "", e.nodes, e.jobs, e.wall_ms, e.converged
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The heap replica and the calendar queue must agree delivery by
    /// delivery (fingerprint asserted inside the suite), and the 10k
    /// regime must clear the committed speedup floor on this host.
    #[test]
    fn queue_shapes_agree_and_calendar_wins_at_scale() {
        let entries = run_queue_suite(&[100, 10_000], 5);
        assert_eq!(entries.len(), 2);
        let big = &entries[1];
        assert!(
            big.speedup() > 1.0,
            "calendar slower than the heap at 10k nodes: {:?}",
            big
        );
    }

    #[test]
    fn policy_suite_shows_adaptive_beating_static() {
        let entries = run_policy_suite();
        assert_eq!(entries.len(), PlacementPolicy::ALL.len());
        for p in &entries {
            assert!(
                p.adaptive_us < p.static_us,
                "{}: adaptive {}us vs static {}us",
                p.policy,
                p.adaptive_us,
                p.static_us
            );
            assert!(p.replans > 0 && p.build_swaps > 0, "{p:?}");
        }
    }

    #[test]
    fn json_roundtrips_and_gate_fires() {
        let results = SchedResults {
            queue: vec![QueueEntry {
                nodes: 10_000,
                events: 50_000,
                heap_eps: 1_000_000,
                calendar_eps: 6_000_000,
            }],
            policies: vec![PolicyEntry {
                policy: "data-centric".into(),
                static_us: 900,
                adaptive_us: 700,
                replans: 1,
                build_swaps: 8,
            }],
            scale: vec![ScaleEntry {
                nodes: 10_000,
                jobs: 6,
                wall_ms: 1234,
                converged: true,
            }],
        };
        let text = render_json("test", &results.queue, &results.policies, &results.scale);
        assert_eq!(parse_results(&text), results);
        assert!(find_committed_problems(&results).is_empty());

        // Each gate fires on its own violation.
        let mut slow = results.clone();
        slow.queue[0].calendar_eps = 2_000_000;
        assert_eq!(find_committed_problems(&slow).len(), 1);
        let mut regressed = results.clone();
        regressed.policies[0].adaptive_us = 901;
        assert_eq!(find_committed_problems(&regressed).len(), 1);
        let mut diverged = results.clone();
        diverged.scale[0].converged = false;
        assert_eq!(find_committed_problems(&diverged).len(), 2);
        let missing = SchedResults::default();
        assert_eq!(find_committed_problems(&missing).len(), 3);
    }

    /// Small-scale chaos through the scaled runner, invariants on.
    #[test]
    fn scale_suite_converges_at_small_size() {
        let entries = run_scale_suite(&[64], 3);
        assert!(entries[0].converged, "{:?}", entries[0]);
    }
}

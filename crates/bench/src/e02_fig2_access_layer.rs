//! E2 / Figure 2 (top half): the tiered access layer — declarations
//! lower onto one logical graph, get optimized, then shard into a
//! physical graph whose parallelism is a lowering decision.

use skadi::flowgraph::lower::{lower_graph, LowerConfig};
use skadi::flowgraph::optimize::optimize_graph;
use skadi::frontends::catalog::Catalog;
use skadi::frontends::ml::TrainingPipeline;
use skadi::frontends::sql::plan_sql;
use skadi::ir::BackendPolicy;
use skadi::prelude::*;

use crate::table::Table;

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "fig2_access",
        "Access layer: logical graph -> optimized -> physical sharded graph",
        "Domain declarations (SQL + ML) lower onto one FlowGraph; predefined \
         rules optimize it; lowering decides parallelism and creates sharded \
         vertices along keyed edges (paper §2.1, Figure 2).",
        &[
            "parallelism",
            "logical_v",
            "optimized_v",
            "physical_v",
            "physical_e",
            "shuffle_e",
            "makespan",
        ],
    );

    let catalog = Catalog::demo();
    for par in [1u32, 2, 4, 8, 16] {
        // One SQL declaration, one ML declaration — same access layer.
        let (mut g, _) = plan_sql(
            "SELECT kind, sum(value) FROM events WHERE value > 0.5 GROUP BY kind",
            &catalog,
        )
        .expect("valid sql");
        let logical = g.len();
        optimize_graph(&mut g);
        let optimized = g.len();
        let phys =
            lower_graph(&g, &LowerConfig::new(par, BackendPolicy::cost_based())).expect("lowers");
        let shuffles = phys
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, skadi::flowgraph::PEdgeKind::Shuffle { .. }))
            .count();

        let session = Session::builder()
            .topology(presets::small_disagg_cluster())
            .catalog(Catalog::demo())
            .parallelism(par)
            .build();
        let report = session
            .sql("SELECT kind, sum(value) FROM events WHERE value > 0.5 GROUP BY kind")
            .expect("runs");

        t.row(vec![
            par.to_string(),
            logical.to_string(),
            optimized.to_string(),
            phys.len().to_string(),
            phys.edges().len().to_string(),
            shuffles.to_string(),
            report.stats.makespan.to_string(),
        ]);
    }

    // One ML pipeline for the cross-domain point.
    let ml = TrainingPipeline::new("features", 1 << 14, 8 << 20, 2 << 20).steps(2);
    let (g, _) = ml.to_flowgraph().expect("builds");
    t.takeaway(format!(
        "physical vertices scale with the parallelism decision (shuffles are \
         all-to-all: p^2 edges); the same FlowGraph also hosts the {}-vertex ML stage",
        g.len()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_scales_with_parallelism() {
        let t = run();
        let pv = |r: usize| t.cell_f64(r, "physical_v").unwrap();
        let sh = |r: usize| t.cell_f64(r, "shuffle_e").unwrap();
        assert!(pv(4) > pv(0), "more shards at higher parallelism");
        // Shuffle edges grow quadratically: 16^2 vs 1.
        assert_eq!(sh(0), 1.0);
        assert_eq!(sh(4), 256.0);
        // Logical size is parallelism-independent.
        assert_eq!(
            t.cell(0, "optimized_v").unwrap(),
            t.cell(4, "optimized_v").unwrap()
        );
    }
}

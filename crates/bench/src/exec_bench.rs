//! `exec` micro-benchmarks: vectorized kernels vs the row-at-a-time
//! baseline engine.
//!
//! The baseline functions here are faithful replicas of the engine
//! *before* the vectorization pass: per-row [`Value`] boxing, stringly
//! `BTreeMap` join/group-by keys, `Vec<f64>` staging per group. They
//! serve two purposes: the "before" series in `BENCH_exec.json`, and a
//! semantics reference for the golden equivalence tests (every benchmark
//! cross-checks `baseline == vectorized` on the full result batch before
//! timing anything).
//!
//! Modes (see the `exec-bench` binary):
//!
//! - `smoke`: quick pass at 10k/100k rows; rewrites `BENCH_exec.json` at
//!   the repo root.
//! - `full`: adds the 1M-row points and longer timing budgets.
//! - `check`: re-measures the vectorized kernels and fails (non-zero
//!   exit) if any is >2x slower than the committed `BENCH_exec.json` —
//!   the CI regression gate.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use skadi_arrow::array::{Array, Value};
use skadi_arrow::batch::RecordBatch;
use skadi_arrow::buffer::Bitmap;
use skadi_arrow::compute::{self, CmpOp};
use skadi_arrow::datatype::DataType;
use skadi_arrow::schema::{Field, Schema};
use skadi_dcsim::rng::DetRng;
use skadi_frontends::exec::{self, pool};
use skadi_frontends::sql::{parse, tokenize, Query};

/// Path of the recorded perf trajectory, relative to this crate.
pub const RESULTS_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");

/// One measured kernel at one size.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Kernel name (`filter`, `join`, `filter_join`, `filter_join_hi`,
    /// `filter_join_dict`, `group_by`, `group_by_dict`, `sort`, `topn`,
    /// `popcount`, `mask_scan`).
    pub name: String,
    /// Input row count.
    pub rows: usize,
    /// Best-of-N wall time of the row-at-a-time baseline.
    pub baseline_ns: u64,
    /// Best-of-N wall time of the vectorized engine.
    pub vectorized_ns: u64,
}

impl BenchEntry {
    /// baseline / vectorized (higher is better).
    pub fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.vectorized_ns.max(1) as f64
    }
}

// ---------------------------------------------------------------------
// Datasets
// ---------------------------------------------------------------------

const KINDS: [&str; 4] = ["click", "view", "scroll", "purchase"];
const COUNTRIES: [&str; 8] = ["DE", "US", "FR", "JP", "BR", "IN", "GB", "KE"];

/// `n` events: `user_id` over `n/10` users, one of four kinds, a float
/// value with ~5% nulls. Deterministic for a given `(n, seed)`.
pub fn events_batch(n: usize, seed: u64) -> RecordBatch {
    let mut rng = DetRng::seed(seed);
    let users = (n / 10).max(1) as u64;
    let mut ids = Vec::with_capacity(n);
    let mut kinds = Vec::with_capacity(n);
    let mut values: Vec<Option<f64>> = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(rng.below(users) as i64);
        kinds.push(*rng.pick(&KINDS));
        values.push((!rng.chance(0.05)).then(|| rng.unit() * 100.0));
    }
    RecordBatch::try_new(
        Schema::new(vec![
            Field::new("user_id", DataType::Int64, false),
            Field::new("kind", DataType::Utf8, false),
            Field::new("value", DataType::Float64, true),
        ]),
        vec![
            Array::from_i64(ids),
            Array::from_utf8(&kinds),
            Array::from_opt_f64(values),
        ],
    )
    .expect("events batch")
}

/// Number of distinct string codes in [`coded_events_batch`]: low
/// cardinality relative to the row count, so the dictionary policy
/// (`distinct * 2 <= len`) encodes the key column.
pub const N_CODES: usize = 256;

/// `n` events keyed by a low-cardinality string `code` (zero-padded so
/// lexicographic order equals natural order) plus the usual float value.
/// The dictionary-friendly counterpart of [`events_batch`].
pub fn coded_events_batch(n: usize, seed: u64) -> RecordBatch {
    let mut rng = DetRng::seed(seed);
    let codes: Vec<String> = (0..n)
        .map(|_| format!("c{:04}", rng.below(N_CODES as u64)))
        .collect();
    let code_refs: Vec<&str> = codes.iter().map(String::as_str).collect();
    let values: Vec<f64> = (0..n).map(|_| rng.unit() * 100.0).collect();
    RecordBatch::try_new(
        Schema::new(vec![
            Field::new("code", DataType::Utf8, false),
            Field::new("value", DataType::Float64, false),
        ]),
        vec![Array::from_utf8(&code_refs), Array::from_f64(values)],
    )
    .expect("coded events batch")
}

/// One row per code `c0000..c{N_CODES-1}` with a region attribute — the
/// dimension side of the dict-keyed join.
pub fn codes_batch(seed: u64) -> RecordBatch {
    let mut rng = DetRng::seed(seed);
    let codes: Vec<String> = (0..N_CODES).map(|i| format!("c{i:04}")).collect();
    let code_refs: Vec<&str> = codes.iter().map(String::as_str).collect();
    let regions: Vec<&str> = (0..N_CODES).map(|_| *rng.pick(&COUNTRIES)).collect();
    RecordBatch::try_new(
        Schema::new(vec![
            Field::new("code", DataType::Utf8, false),
            Field::new("region", DataType::Utf8, false),
        ]),
        vec![Array::from_utf8(&code_refs), Array::from_utf8(&regions)],
    )
    .expect("codes batch")
}

/// One row per user id `0..n_users` with a country attribute.
pub fn users_batch(n_users: usize, seed: u64) -> RecordBatch {
    let mut rng = DetRng::seed(seed);
    let countries: Vec<&str> = (0..n_users).map(|_| *rng.pick(&COUNTRIES)).collect();
    RecordBatch::try_new(
        Schema::new(vec![
            Field::new("user_id", DataType::Int64, false),
            Field::new("country", DataType::Utf8, false),
        ]),
        vec![
            Array::from_i64((0..n_users as i64).collect()),
            Array::from_utf8(&countries),
        ],
    )
    .expect("users batch")
}

// ---------------------------------------------------------------------
// Baseline engine (pre-vectorization replica)
// ---------------------------------------------------------------------

fn gather_by_rows(batch: &RecordBatch, rows: &[usize]) -> RecordBatch {
    let columns: Vec<Array> = (0..batch.num_columns())
        .map(|c| {
            let values: Vec<Value> = rows.iter().map(|&r| batch.column(c).value_at(r)).collect();
            Array::from_values(batch.column(c).data_type(), &values).expect("gather")
        })
        .collect();
    RecordBatch::try_new(batch.schema().clone(), columns).expect("gather batch")
}

fn value_cmp(v: &Value, op: CmpOp, rhs: &Value) -> bool {
    // Row-at-a-time comparison over boxed values, numeric via f64.
    let ord = match (v, rhs) {
        (Value::Null, _) | (_, Value::Null) => return false,
        (Value::Str(a), Value::Str(b)) => a.as_str().cmp(b.as_str()),
        (a, b) => {
            let num = |x: &Value| match x {
                Value::I64(i) => Some(*i as f64),
                Value::F64(f) => Some(*f),
                _ => None,
            };
            match (num(a), num(b)) {
                (Some(x), Some(y)) => match x.partial_cmp(&y) {
                    Some(o) => o,
                    None => return false,
                },
                _ => return false,
            }
        }
    };
    match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

/// Row-at-a-time conjunctive filter: box every cell, keep matching rows.
pub fn baseline_filter(batch: &RecordBatch, conjuncts: &[(&str, CmpOp, Value)]) -> RecordBatch {
    let cols: Vec<usize> = conjuncts
        .iter()
        .map(|(c, _, _)| batch.schema().index_of(c).expect("filter column"))
        .collect();
    let rows: Vec<usize> = (0..batch.num_rows())
        .filter(|&r| {
            conjuncts
                .iter()
                .zip(&cols)
                .all(|((_, op, rhs), &c)| value_cmp(&batch.column(c).value_at(r), *op, rhs))
        })
        .collect();
    gather_by_rows(batch, &rows)
}

/// Stringly hash join: build a `BTreeMap<String, Vec<usize>>` over the
/// rendered right key, probe with rendered left keys (the old engine).
pub fn baseline_join(
    left: &RecordBatch,
    right: &RecordBatch,
    left_key: &str,
    right_key: &str,
) -> RecordBatch {
    let lk = left.schema().index_of(left_key).expect("left key");
    let rk = right.schema().index_of(right_key).expect("right key");

    let mut index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for r in 0..right.num_rows() {
        let key = right.column(rk).value_at(r);
        if key == Value::Null {
            continue;
        }
        index.entry(key.to_string()).or_default().push(r);
    }
    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<usize> = Vec::new();
    for l in 0..left.num_rows() {
        let key = left.column(lk).value_at(l);
        if key == Value::Null {
            continue;
        }
        if let Some(matches) = index.get(&key.to_string()) {
            for &r in matches {
                left_rows.push(l);
                right_rows.push(r);
            }
        }
    }

    let mut fields: Vec<Field> = left.schema().fields().to_vec();
    let mut right_cols: Vec<usize> = Vec::new();
    for (i, f) in right.schema().fields().iter().enumerate() {
        if i == rk || fields.iter().any(|lf| lf.name == f.name) {
            continue;
        }
        fields.push(f.clone());
        right_cols.push(i);
    }
    let mut columns: Vec<Array> = Vec::with_capacity(fields.len());
    for c in 0..left.num_columns() {
        let values: Vec<Value> = left_rows
            .iter()
            .map(|&r| left.column(c).value_at(r))
            .collect();
        columns.push(Array::from_values(left.column(c).data_type(), &values).expect("join gather"));
    }
    for &c in &right_cols {
        let values: Vec<Value> = right_rows
            .iter()
            .map(|&r| right.column(c).value_at(r))
            .collect();
        columns
            .push(Array::from_values(right.column(c).data_type(), &values).expect("join gather"));
    }
    RecordBatch::try_new(Schema::new(fields), columns).expect("join batch")
}

/// Stringly group-by: rendered keys into a `BTreeMap`, `Vec<f64>` per
/// group, emitting `group_col, sum(val) AS s, count(*) AS n`.
pub fn baseline_group_sum_count(
    batch: &RecordBatch,
    group_col: &str,
    val_col: &str,
) -> RecordBatch {
    let g = batch.schema().index_of(group_col).expect("group column");
    let v = batch.schema().index_of(val_col).expect("value column");
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for r in 0..batch.num_rows() {
        groups
            .entry(batch.column(g).value_at(r).to_string())
            .or_default()
            .push(r);
    }
    let mut key_vals: Vec<Value> = Vec::with_capacity(groups.len());
    let mut sums: Vec<Value> = Vec::with_capacity(groups.len());
    let mut counts: Vec<Value> = Vec::with_capacity(groups.len());
    for rows in groups.values() {
        key_vals.push(batch.column(g).value_at(rows[0]));
        let nums: Vec<f64> = rows
            .iter()
            .filter_map(|&r| match batch.column(v).value_at(r) {
                Value::I64(x) => Some(x as f64),
                Value::F64(x) => Some(x),
                _ => None,
            })
            .collect();
        sums.push(if nums.is_empty() {
            Value::Null
        } else {
            Value::F64(nums.iter().sum())
        });
        counts.push(Value::I64(rows.len() as i64));
    }
    RecordBatch::try_new(
        Schema::new(vec![
            batch.schema().field(g).clone(),
            Field::new("s", DataType::Float64, true),
            Field::new("n", DataType::Int64, true),
        ]),
        vec![
            Array::from_values(batch.column(g).data_type(), &key_vals).expect("group keys"),
            Array::from_values(DataType::Float64, &sums).expect("group sums"),
            Array::from_values(DataType::Int64, &counts).expect("group counts"),
        ],
    )
    .expect("group batch")
}

/// Row-at-a-time sort: comparator over boxed values (nulls lowest),
/// then a boxed gather.
pub fn baseline_sort(batch: &RecordBatch, column: &str, descending: bool) -> RecordBatch {
    let c = batch.schema().index_of(column).expect("sort column");
    let col = batch.column(c);
    let mut rows: Vec<usize> = (0..batch.num_rows()).collect();
    let key_ord = |a: usize, b: usize| -> std::cmp::Ordering {
        match (col.value_at(a), col.value_at(b)) {
            (Value::Null, Value::Null) => std::cmp::Ordering::Equal,
            (Value::Null, _) => std::cmp::Ordering::Less,
            (_, Value::Null) => std::cmp::Ordering::Greater,
            (Value::I64(x), Value::I64(y)) => x.cmp(&y),
            (Value::F64(x), Value::F64(y)) => {
                x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
            }
            (Value::Str(x), Value::Str(y)) => x.cmp(&y),
            (Value::Bool(x), Value::Bool(y)) => x.cmp(&y),
            (x, y) => x.to_string().cmp(&y.to_string()),
        }
    };
    rows.sort_by(|&a, &b| {
        let o = key_ord(a, b);
        if descending {
            o.reverse()
        } else {
            o
        }
    });
    gather_by_rows(batch, &rows)
}

/// Baseline TopN: full row-at-a-time sort, then keep the first `n`.
pub fn baseline_topn(batch: &RecordBatch, column: &str, n: usize) -> RecordBatch {
    let sorted = baseline_sort(batch, column, true);
    let keep: Vec<usize> = (0..n.min(sorted.num_rows())).collect();
    gather_by_rows(&sorted, &keep)
}

// ---------------------------------------------------------------------
// Vectorized counterparts
// ---------------------------------------------------------------------

/// Fused vectorized filter: one typed mask per conjunct, combined with
/// `compute::and`, one gather.
pub fn vectorized_filter(batch: &RecordBatch, conjuncts: &[(&str, CmpOp, Value)]) -> RecordBatch {
    let mut mask: Option<Array> = None;
    for (col, op, rhs) in conjuncts {
        let c = batch.column_by_name(col).expect("filter column");
        let m = compute::cmp_scalar(c, *op, rhs).expect("cmp_scalar");
        mask = Some(match mask {
            Some(prev) => compute::and(&prev, &m).expect("and"),
            None => m,
        });
    }
    compute::filter(batch, &mask.expect("at least one conjunct")).expect("filter")
}

/// Filter-then-join with the intermediate batch materialized: the mask
/// is gathered into a new batch, which the join then probes. This is the
/// pre-pushdown shape of the filter→join boundary.
pub fn materialized_filter_join(
    left: &RecordBatch,
    right: &RecordBatch,
    conjuncts: &[(&str, CmpOp, Value)],
    left_key: &str,
    right_key: &str,
) -> RecordBatch {
    let filtered = vectorized_filter(left, conjuncts);
    exec::hash_join(&filtered, right, left_key, right_key).expect("hash_join")
}

/// Selection-vector pushdown across the filter→join boundary: the filter
/// produces only passing row indices, the join probes them directly, and
/// the filtered columns are gathered exactly once — as join output.
pub fn pushdown_filter_join(
    left: &RecordBatch,
    right: &RecordBatch,
    conjuncts: &[(&str, CmpOp, Value)],
    left_key: &str,
    right_key: &str,
) -> RecordBatch {
    let mut mask: Option<Array> = None;
    for (col, op, rhs) in conjuncts {
        let c = left.column_by_name(col).expect("filter column");
        let m = compute::cmp_scalar(c, *op, rhs).expect("cmp_scalar");
        mask = Some(match mask {
            Some(prev) => compute::and(&prev, &m).expect("and"),
            None => m,
        });
    }
    let b = mask.expect("at least one conjunct");
    let b = b.as_bool().expect("mask");
    let sel: Vec<usize> = (0..left.num_rows())
        .filter(|&i| b.get(i) == Some(true))
        .collect();
    exec::hash_join_sel(left, &sel, right, left_key, right_key).expect("hash_join_sel")
}

/// Vectorized sort via the typed `sort_to_indices` kernel.
pub fn vectorized_sort(batch: &RecordBatch, column: &str, descending: bool) -> RecordBatch {
    let col = batch.column_by_name(column).expect("sort column");
    let order = if descending {
        compute::SortOrder::Descending
    } else {
        compute::SortOrder::Ascending
    };
    let indices = compute::sort_to_indices(col, order);
    compute::take(batch, &indices).expect("take")
}

/// Vectorized TopN: typed sort indices, late-materialize only `n` rows.
pub fn vectorized_topn(batch: &RecordBatch, column: &str, n: usize) -> RecordBatch {
    let col = batch.column_by_name(column).expect("sort column");
    let indices = compute::sort_to_indices(col, compute::SortOrder::Descending);
    let idx = indices.as_i64().expect("indices");
    let head: Vec<usize> = idx
        .iter_raw()
        .take(n.min(batch.num_rows()))
        .map(|i| i as usize)
        .collect();
    compute::take_indices(batch, &head).expect("take_indices")
}

fn group_query(group_col: &str, val_col: &str, table: &str) -> Query {
    let sql = format!(
        "SELECT {group_col}, sum({val_col}) AS s, count(*) AS n FROM {table} GROUP BY {group_col}"
    );
    parse(&tokenize(&sql).expect("tokenize")).expect("parse")
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

/// Best-of-N wall time: warm up once, then repeat until the budget is
/// spent (at least 3 timed iterations unless one iteration alone blows
/// far past the budget).
pub fn time_ns(budget: Duration, mut f: impl FnMut()) -> u64 {
    f();
    let wall = Instant::now();
    let mut best = u64::MAX;
    let mut iters = 0u32;
    loop {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as u64);
        iters += 1;
        let spent = wall.elapsed();
        if (iters >= 3 && spent >= budget) || spent >= budget * 8 {
            return best;
        }
    }
}

/// Runs every kernel at every size, cross-checking baseline and
/// vectorized results for exact equality before timing them.
pub fn run_suite(sizes: &[usize], budget: Duration) -> Vec<BenchEntry> {
    let mut out = Vec::new();
    for &n in sizes {
        let events = events_batch(n, 42);
        let users = users_batch((n / 10).max(1), 7);
        let conjuncts: Vec<(&str, CmpOp, Value)> = vec![
            ("kind", CmpOp::Eq, Value::Str("click".into())),
            ("value", CmpOp::Gt, Value::F64(50.0)),
        ];
        // High-pass-rate variant of the filter→join boundary: ~90% of
        // rows survive (`value > 5` over uniform 0..100 with ~5% nulls),
        // so the materialized plan pays a near-full-batch intermediate
        // gather that pushdown skips. See the `filter_join` comment below.
        let conjuncts_hi: Vec<(&str, CmpOp, Value)> = vec![("value", CmpOp::Gt, Value::F64(5.0))];
        let q = group_query("user_id", "value", "events");

        // Dict-keyed datasets: the fact side's string key dictionary-
        // encodes (256 distinct codes), so joins and group-bys run over
        // u32 keys instead of string bytes. The stringly baseline sees
        // the plain batches; both sides produce plain output (the dict
        // path pays its decode inside the timed region).
        let coded = coded_events_batch(n, 11);
        let codes = codes_batch(5);
        let coded_dict = coded.dict_encoded();
        let codes_dict = codes.dict_encoded();
        assert!(
            matches!(coded_dict.column(0), Array::DictUtf8(_)),
            "code column should dictionary-encode at {n} rows"
        );
        let conjuncts_val: Vec<(&str, CmpOp, Value)> = vec![("value", CmpOp::Gt, Value::F64(50.0))];
        let q_dict = group_query("code", "value", "coded");

        // Golden cross-checks: the two engines must agree exactly.
        assert_eq!(
            baseline_filter(&events, &conjuncts),
            vectorized_filter(&events, &conjuncts),
            "filter mismatch at {n} rows"
        );
        assert_eq!(
            baseline_join(&events, &users, "user_id", "user_id"),
            exec::hash_join(&events, &users, "user_id", "user_id").expect("hash_join"),
            "join mismatch at {n} rows"
        );
        assert_eq!(
            materialized_filter_join(&events, &users, &conjuncts, "user_id", "user_id"),
            pushdown_filter_join(&events, &users, &conjuncts, "user_id", "user_id"),
            "filter_join pushdown mismatch at {n} rows"
        );
        assert_eq!(
            materialized_filter_join(&events, &users, &conjuncts_hi, "user_id", "user_id"),
            pushdown_filter_join(&events, &users, &conjuncts_hi, "user_id", "user_id"),
            "filter_join_hi pushdown mismatch at {n} rows"
        );
        assert_eq!(
            baseline_group_sum_count(&events, "user_id", "value"),
            exec::aggregate(&q, &events).expect("aggregate"),
            "group_by mismatch at {n} rows"
        );
        assert_eq!(
            baseline_join(
                &baseline_filter(&coded, &conjuncts_val),
                &codes,
                "code",
                "code"
            ),
            pushdown_filter_join(&coded_dict, &codes_dict, &conjuncts_val, "code", "code")
                .dict_decoded(),
            "filter_join_dict mismatch at {n} rows"
        );
        assert_eq!(
            baseline_group_sum_count(&coded, "code", "value"),
            exec::aggregate(&q_dict, &coded_dict)
                .expect("aggregate")
                .dict_decoded(),
            "group_by_dict mismatch at {n} rows"
        );
        assert_eq!(
            baseline_sort(&events, "value", false),
            vectorized_sort(&events, "value", false),
            "sort mismatch at {n} rows"
        );
        assert_eq!(
            baseline_topn(&events, "value", 10),
            vectorized_topn(&events, "value", 10),
            "topn mismatch at {n} rows"
        );

        let mut push = |name: &str, baseline_ns: u64, vectorized_ns: u64| {
            out.push(BenchEntry {
                name: name.to_string(),
                rows: n,
                baseline_ns,
                vectorized_ns,
            });
        };
        push(
            "filter",
            time_ns(budget, || {
                std::hint::black_box(baseline_filter(&events, &conjuncts));
            }),
            time_ns(budget, || {
                std::hint::black_box(vectorized_filter(&events, &conjuncts));
            }),
        );
        push(
            "join",
            time_ns(budget, || {
                std::hint::black_box(baseline_join(&events, &users, "user_id", "user_id"));
            }),
            time_ns(budget, || {
                std::hint::black_box(
                    exec::hash_join(&events, &users, "user_id", "user_id").expect("hash_join"),
                );
            }),
        );
        // Why `filter_join` plateaus at ~1.0x (BENCH_exec.json records
        // 1.00x/1.04x at 10k/100k): the engine's filter-selectivity
        // profile (see `filter_selectivity_explains_filter_join_plateau`)
        // measures the combined pass rate of `kind='click' AND value>50`
        // at ~0.12. Both plans pay identical mask compute (a Utf8
        // equality scan plus a float compare over the full batch), so
        // pushdown only avoids materializing the ~12% of rows that pass
        // — a gather too small to matter next to the shared mask cost
        // and the join's own build/probe. The win appears when the
        // filter keeps most rows: `filter_join_hi` (~0.90 pass rate,
        // same profile) makes the skipped intermediate gather nearly a
        // full batch copy, and measures ~1.1–1.2x — still bounded above
        // by the join dominating both plans.
        push(
            "filter_join",
            time_ns(budget, || {
                std::hint::black_box(materialized_filter_join(
                    &events, &users, &conjuncts, "user_id", "user_id",
                ));
            }),
            time_ns(budget, || {
                std::hint::black_box(pushdown_filter_join(
                    &events, &users, &conjuncts, "user_id", "user_id",
                ));
            }),
        );
        push(
            "filter_join_hi",
            time_ns(budget, || {
                std::hint::black_box(materialized_filter_join(
                    &events,
                    &users,
                    &conjuncts_hi,
                    "user_id",
                    "user_id",
                ));
            }),
            time_ns(budget, || {
                std::hint::black_box(pushdown_filter_join(
                    &events,
                    &users,
                    &conjuncts_hi,
                    "user_id",
                    "user_id",
                ));
            }),
        );
        // The dict-keyed join: the stringly baseline renders every probe
        // key into a `String` and walks a `BTreeMap`; the dict path
        // probes a hash table with precomputed per-entry hashes over u32
        // keys, then decodes the output back to plain strings.
        push(
            "filter_join_dict",
            time_ns(budget, || {
                std::hint::black_box(baseline_join(
                    &baseline_filter(&coded, &conjuncts_val),
                    &codes,
                    "code",
                    "code",
                ));
            }),
            time_ns(budget, || {
                std::hint::black_box(
                    pushdown_filter_join(&coded_dict, &codes_dict, &conjuncts_val, "code", "code")
                        .dict_decoded(),
                );
            }),
        );
        push(
            "group_by",
            time_ns(budget, || {
                std::hint::black_box(baseline_group_sum_count(&events, "user_id", "value"));
            }),
            time_ns(budget, || {
                std::hint::black_box(exec::aggregate(&q, &events).expect("aggregate"));
            }),
        );
        push(
            "group_by_dict",
            time_ns(budget, || {
                std::hint::black_box(baseline_group_sum_count(&coded, "code", "value"));
            }),
            time_ns(budget, || {
                std::hint::black_box(
                    exec::aggregate(&q_dict, &coded_dict)
                        .expect("aggregate")
                        .dict_decoded(),
                );
            }),
        );
        push(
            "sort",
            time_ns(budget, || {
                std::hint::black_box(baseline_sort(&events, "value", false));
            }),
            time_ns(budget, || {
                std::hint::black_box(vectorized_sort(&events, "value", false));
            }),
        );
        push(
            "topn",
            time_ns(budget, || {
                std::hint::black_box(baseline_topn(&events, "value", 10));
            }),
            time_ns(budget, || {
                std::hint::black_box(vectorized_topn(&events, "value", 10));
            }),
        );

        // Bit-level kernels: the u64-word popcount/scan fast paths vs
        // their bit-at-a-time predecessors. The mask is the real
        // `value > 50` comparison output (nullable input, so the scan
        // must consult validity exactly like `mask_to_indices` does).
        let mask = compute::cmp_scalar(
            events.column_by_name("value").expect("value column"),
            CmpOp::Gt,
            &Value::F64(50.0),
        )
        .expect("cmp_scalar");
        let bits = Bitmap::from_bools(&(0..n).map(|i| i % 3 != 0).collect::<Vec<bool>>());
        assert_eq!(
            (0..bits.len()).filter(|&i| bits.get(i)).count(),
            bits.count_set(),
            "popcount mismatch at {n} bits"
        );
        assert_eq!(
            bitwise_mask_scan(&mask),
            compute::mask_to_indices(&mask).expect("mask_to_indices"),
            "mask_scan mismatch at {n} rows"
        );
        push(
            "popcount",
            time_ns(budget, || {
                std::hint::black_box((0..bits.len()).filter(|&i| bits.get(i)).count());
            }),
            time_ns(budget, || {
                std::hint::black_box(bits.count_set());
            }),
        );
        push(
            "mask_scan",
            time_ns(budget, || {
                std::hint::black_box(bitwise_mask_scan(&mask));
            }),
            time_ns(budget, || {
                std::hint::black_box(compute::mask_to_indices(&mask).expect("mask_to_indices"));
            }),
        );
    }
    out
}

/// Bit-at-a-time replica of `mask_to_indices` (the pre-word-scan shape):
/// one `get` per row, null-checked through the boxed accessor.
fn bitwise_mask_scan(mask: &Array) -> Vec<usize> {
    let b = mask.as_bool().expect("bool mask");
    (0..b.len()).filter(|&i| b.get(i) == Some(true)).collect()
}

// ---------------------------------------------------------------------
// Shuffle bytes: compression on vs off through the distributed plane
// ---------------------------------------------------------------------

/// Total `measured_output_bytes` of one distributed query, run twice:
/// shuffle compression off, then on. Everything else (topology,
/// parallelism, tables, query) is identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ShuffleBytesReport {
    /// The SQL that was shuffled.
    pub query: String,
    /// Fact-table row count.
    pub rows: usize,
    /// Sum of per-task measured output bytes, compression off.
    pub plain_bytes: u64,
    /// Sum of per-task measured output bytes, compression on.
    pub compressed_bytes: u64,
}

impl ShuffleBytesReport {
    /// compressed / plain (lower is better; < 1.0 means compression won).
    pub fn ratio(&self) -> f64 {
        self.compressed_bytes as f64 / self.plain_bytes.max(1) as f64
    }
}

/// Runs a join+group-by over the simulated cluster at parallelism 4 and
/// reports shuffled bytes with compression off vs on. Feeds the
/// `"shuffle"` line of `BENCH_exec.json`.
pub fn shuffle_bytes_report(rows: usize) -> ShuffleBytesReport {
    use skadi::prelude::*;
    let db = exec::MemDb::new()
        .register("events", events_batch(rows, 42))
        .register("users", users_batch((rows / 10).max(1), 7));
    let q = "SELECT country, sum(value) AS total, count(*) AS n FROM events \
             JOIN users ON user_id = user_id GROUP BY country ORDER BY total DESC";
    let total = |compress: bool| -> u64 {
        let session = Session::builder()
            .topology(presets::small_disagg_cluster())
            .parallelism(4)
            .shuffle_compression(compress)
            .build();
        let run = session.sql_distributed(&db, q).expect("distributed run");
        run.report.stats.measured_output_bytes.values().sum()
    };
    ShuffleBytesReport {
        query: q.to_string(),
        rows,
        plain_bytes: total(false),
        compressed_bytes: total(true),
    }
}

// ---------------------------------------------------------------------
// Parallel scaling: the same kernel across pool sizes
// ---------------------------------------------------------------------

/// Thread counts the parallel suite sweeps (and the JSON records).
pub const PARALLEL_THREADS: [usize; 4] = [1, 2, 4, 8];

/// One kernel at one size, timed at every [`PARALLEL_THREADS`] pool size.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelEntry {
    /// Kernel name (`join`, `group_by`, `sort`, `topn`).
    pub kernel: String,
    /// Input row count.
    pub rows: usize,
    /// `(threads, best-of-N wall ns)` per swept pool size.
    pub threads_ns: Vec<(usize, u64)>,
}

impl ParallelEntry {
    /// Wall-time speedup of `threads` vs 1 thread (higher is better).
    pub fn speedup_at(&self, threads: usize) -> Option<f64> {
        let t1 = self.threads_ns.iter().find(|&&(t, _)| t == 1)?.1;
        let tn = self.threads_ns.iter().find(|&&(t, _)| t == threads)?.1;
        Some(t1 as f64 / tn.max(1) as f64)
    }
}

/// The `"parallel"` section of `BENCH_exec.json`: scaling measurements
/// plus the core count of the machine that produced them — scaling is a
/// property of the host, so the regression gate reads its thresholds
/// from `host_cores` instead of assuming CI hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelReport {
    /// `available_parallelism()` of the recording host.
    pub host_cores: usize,
    /// One entry per (kernel, rows).
    pub entries: Vec<ParallelEntry>,
}

/// Cores of the current host (what [`run_parallel_suite`] records).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sweeps join/group_by/sort/topn over `sizes` × [`PARALLEL_THREADS`],
/// resizing the shared pool between runs. Before timing anything, every
/// kernel's output at every thread count is asserted byte-identical to
/// its 1-thread output — the determinism contract the engine documents.
///
/// Restores the pool to its original size before returning.
/// A named result-producing kernel closure measured by the parallel sweep.
type NamedKernel<'a> = (&'a str, Box<dyn Fn() -> RecordBatch + 'a>);

pub fn run_parallel_suite(sizes: &[usize], budget: Duration) -> ParallelReport {
    let restore = pool::global_threads();
    let mut entries = Vec::new();
    for &n in sizes {
        let events = events_batch(n, 42);
        let users = users_batch((n / 10).max(1), 7);
        let q = group_query("user_id", "value", "events");
        let db = exec::MemDb::new().register("events", events_batch(n, 42));
        let sort_sql = "SELECT user_id, kind, value FROM events ORDER BY value";
        let topn_sql = "SELECT user_id, kind, value FROM events ORDER BY value DESC LIMIT 10";

        let kernels: Vec<NamedKernel<'_>> = vec![
            (
                "join",
                Box::new(|| {
                    exec::hash_join(&events, &users, "user_id", "user_id").expect("hash_join")
                }),
            ),
            (
                "group_by",
                Box::new(|| exec::aggregate(&q, &events).expect("aggregate")),
            ),
            ("sort", Box::new(|| db.query(sort_sql).expect("sort query"))),
            ("topn", Box::new(|| db.query(topn_sql).expect("topn query"))),
        ];

        for (name, f) in &kernels {
            pool::set_global_threads(1);
            let reference = f();
            let mut threads_ns = Vec::with_capacity(PARALLEL_THREADS.len());
            for &t in &PARALLEL_THREADS {
                pool::set_global_threads(t);
                assert_eq!(
                    f(),
                    reference,
                    "{name} at {n} rows changed output at {t} threads"
                );
                threads_ns.push((
                    t,
                    time_ns(budget, || {
                        std::hint::black_box(f());
                    }),
                ));
            }
            entries.push(ParallelEntry {
                kernel: name.to_string(),
                rows: n,
                threads_ns,
            });
        }
    }
    pool::set_global_threads(restore);
    ParallelReport {
        host_cores: host_cores(),
        entries,
    }
}

/// The 4-thread speedup a host with `cores` cores must reach on the
/// join/group_by scaling entries. Honest about hardware: a 1-core
/// machine cannot speed up at all (the bound there only rejects gross
/// pool overhead), 2–3 cores can overlap half the work, and ≥4 cores
/// must show real morsel scaling.
pub fn required_speedup(cores: usize) -> f64 {
    if cores >= 4 {
        2.5
    } else if cores >= 2 {
        1.4
    } else {
        0.6
    }
}

/// The parallel scaling gate: join and group_by at the largest recorded
/// size must reach [`required_speedup`] for the recording host's cores
/// at 4 threads. Returns human-readable violations (empty = pass).
pub fn find_scaling_regressions(report: &ParallelReport) -> Vec<String> {
    find_scaling_regressions_with(report, required_speedup(report.host_cores))
}

/// [`find_scaling_regressions`] with an explicit speedup bar — the
/// `check` binary uses a relaxed bar for its fresh 100k-row re-measure
/// (morsel granularity caps speedup well below the 1M-row figures).
pub fn find_scaling_regressions_with(report: &ParallelReport, need: f64) -> Vec<String> {
    let mut problems = Vec::new();
    let largest = report.entries.iter().map(|e| e.rows).max().unwrap_or(0);
    for kernel in ["join", "group_by"] {
        let entry = report
            .entries
            .iter()
            .find(|e| e.kernel == kernel && e.rows == largest);
        match entry {
            None => problems.push(format!("parallel: no {kernel} entry at {largest} rows")),
            Some(e) => match e.speedup_at(4) {
                None => problems.push(format!(
                    "parallel: {kernel} @ {largest} rows lacks 1- or 4-thread timings"
                )),
                Some(s) if s < need => problems.push(format!(
                    "parallel: {kernel} @ {largest} rows: {s:.2}x at 4 threads, \
                     need {need:.1}x on a {}-core host",
                    report.host_cores
                )),
                Some(_) => {}
            },
        }
    }
    problems
}

// ---------------------------------------------------------------------
// BENCH_exec.json (hand-rolled; the tree has no serde)
// ---------------------------------------------------------------------

/// Renders the result file: one entry object per line so the parser in
/// [`parse_results`] stays line-oriented. The optional shuffle report
/// becomes a single `"shuffle"` line that [`parse_results`] ignores (no
/// `"name"` field), so the regression gate sees exactly the kernels. The
/// optional parallel report renders one `"kernel"`-keyed line per entry
/// — likewise invisible to the `"name"`-keyed kernel parser.
pub fn render_json(
    mode: &str,
    entries: &[BenchEntry],
    shuffle: Option<&ShuffleBytesReport>,
    parallel: Option<&ParallelReport>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"suite\": \"exec\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"unit\": \"ns, best-of-N wall time\",\n");
    if let Some(sh) = shuffle {
        s.push_str(&format!(
            "  \"shuffle\": {{\"rows\": {}, \"plain_bytes\": {}, \"compressed_bytes\": {}, \"ratio\": {:.3}}},\n",
            sh.rows, sh.plain_bytes, sh.compressed_bytes, sh.ratio()
        ));
    }
    if let Some(p) = parallel {
        s.push_str(&format!(
            "  \"parallel\": {{\"host_cores\": {}, \"entries\": [\n",
            p.host_cores
        ));
        for (i, e) in p.entries.iter().enumerate() {
            let comma = if i + 1 == p.entries.len() { "" } else { "," };
            let mut fields = String::new();
            for &(t, ns) in &e.threads_ns {
                fields.push_str(&format!(", \"t{t}_ns\": {ns}"));
            }
            let speedup = e
                .speedup_at(4)
                .map_or(String::new(), |x| format!(", \"speedup4\": {x:.2}"));
            s.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"rows\": {}{fields}{speedup}}}{comma}\n",
                e.kernel, e.rows
            ));
        }
        s.push_str("  ]},\n");
    }
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"baseline_ns\": {}, \"vectorized_ns\": {}, \"speedup\": {:.2}}}{comma}\n",
            e.name, e.rows, e.baseline_ns, e.vectorized_ns, e.speedup()
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Parses a file produced by [`render_json`] back into entries.
pub fn parse_results(text: &str) -> Vec<BenchEntry> {
    text.lines()
        .filter_map(|line| {
            let name = json_field(line, "name")?.to_string();
            Some(BenchEntry {
                name,
                rows: json_field(line, "rows")?.parse().ok()?,
                baseline_ns: json_field(line, "baseline_ns")?.parse().ok()?,
                vectorized_ns: json_field(line, "vectorized_ns")?.parse().ok()?,
            })
        })
        .collect()
}

/// Parses the `"parallel"` section back out of a [`render_json`] file.
/// Returns `None` when the file predates the section.
pub fn parse_parallel(text: &str) -> Option<ParallelReport> {
    let host_cores: usize = text
        .lines()
        .find(|l| l.contains("\"host_cores\""))
        .and_then(|l| json_field(l, "host_cores"))
        .and_then(|v| v.parse().ok())?;
    let entries: Vec<ParallelEntry> = text
        .lines()
        .filter_map(|line| {
            let kernel = json_field(line, "kernel")?.to_string();
            let rows = json_field(line, "rows")?.parse().ok()?;
            let threads_ns: Vec<(usize, u64)> = PARALLEL_THREADS
                .iter()
                .filter_map(|&t| {
                    let ns = json_field(line, &format!("t{t}_ns"))?.parse().ok()?;
                    Some((t, ns))
                })
                .collect();
            Some(ParallelEntry {
                kernel,
                rows,
                threads_ns,
            })
        })
        .collect();
    Some(ParallelReport {
        host_cores,
        entries,
    })
}

/// Pretty scaling table for stdout.
pub fn render_parallel_table(report: &ParallelReport) -> String {
    let mut s = format!(
        "parallel scaling ({}-core host)\n{:<10} {:>9}",
        report.host_cores, "kernel", "rows"
    );
    for t in PARALLEL_THREADS {
        s.push_str(&format!(" {:>11}", format!("t{t}_ns")));
    }
    s.push_str("  speedup@4\n");
    for e in &report.entries {
        s.push_str(&format!("{:<10} {:>9}", e.kernel, e.rows));
        for &(_, ns) in &e.threads_ns {
            s.push_str(&format!(" {ns:>11}"));
        }
        match e.speedup_at(4) {
            Some(x) => s.push_str(&format!("   {x:>6.2}x\n")),
            None => s.push('\n'),
        }
    }
    s
}

/// Pretty table for stdout.
pub fn render_table(entries: &[BenchEntry]) -> String {
    let mut s = format!(
        "{:<10} {:>9} {:>14} {:>14} {:>9}\n",
        "kernel", "rows", "baseline_ns", "vectorized_ns", "speedup"
    );
    for e in entries {
        s.push_str(&format!(
            "{:<10} {:>9} {:>14} {:>14} {:>8.2}x\n",
            e.name,
            e.rows,
            e.baseline_ns,
            e.vectorized_ns,
            e.speedup()
        ));
    }
    s
}

/// Compares a fresh vectorized measurement against the committed
/// baseline file; returns the list of regressions (>`factor`x slower).
/// Entries under 20µs are skipped — scheduler jitter dominates there.
/// Committed entries at row counts the fresh run never measured are
/// skipped too, so a `full`-mode artifact (with 1M-row points) can be
/// gated by a smoke-size re-measurement without false "missing" hits;
/// a kernel absent at a size the fresh run *did* cover still fails.
pub fn find_regressions(
    committed: &[BenchEntry],
    fresh: &[BenchEntry],
    factor: f64,
) -> Vec<String> {
    let fresh_sizes: std::collections::BTreeSet<usize> = fresh.iter().map(|f| f.rows).collect();
    let mut problems = Vec::new();
    for c in committed {
        if c.vectorized_ns < 20_000 || !fresh_sizes.contains(&c.rows) {
            continue;
        }
        match fresh.iter().find(|f| f.name == c.name && f.rows == c.rows) {
            None => problems.push(format!(
                "{} @ {} rows: missing from fresh run",
                c.name, c.rows
            )),
            Some(f) => {
                if f.vectorized_ns as f64 > c.vectorized_ns as f64 * factor {
                    problems.push(format!(
                        "{} @ {} rows: {}ns vs committed {}ns (>{factor:.1}x)",
                        c.name, c.rows, f.vectorized_ns, c.vectorized_ns
                    ));
                }
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_json_roundtrips() {
        let entries = run_suite(&[2_000], Duration::from_millis(5));
        assert_eq!(entries.len(), 11);
        let text = render_json("test", &entries, None, None);
        let back = parse_results(&text);
        assert_eq!(entries, back);
        assert!(find_regressions(&entries, &entries, 2.0).is_empty());
    }

    /// The parallel section renders, round-trips, stays invisible to the
    /// kernel-entry parser, and the scaling gate reads its thresholds
    /// from the recorded host cores.
    #[test]
    fn parallel_section_roundtrips_and_gates() {
        let report = ParallelReport {
            host_cores: 8,
            entries: ["join", "group_by", "sort", "topn"]
                .iter()
                .map(|k| ParallelEntry {
                    kernel: k.to_string(),
                    rows: 1_000_000,
                    threads_ns: vec![
                        (1, 4_000_000),
                        (2, 2_100_000),
                        (4, 1_500_000),
                        (8, 1_400_000),
                    ],
                })
                .collect(),
        };
        let entries = vec![BenchEntry {
            name: "join".into(),
            rows: 100,
            baseline_ns: 10,
            vectorized_ns: 5,
        }];
        let text = render_json("test", &entries, None, Some(&report));
        assert_eq!(
            parse_results(&text),
            entries,
            "parallel lines leaked into kernel entries"
        );
        assert_eq!(parse_parallel(&text).as_ref(), Some(&report));

        // 4M/1.5M ns = 2.67x: passes the 4-core bar, and trivially the
        // 1-core one.
        assert!(find_scaling_regressions(&report).is_empty());
        let one_core = ParallelReport {
            host_cores: 1,
            ..report.clone()
        };
        assert!(find_scaling_regressions(&one_core).is_empty());

        // Flat scaling on a multi-core host must fire for join and
        // group_by (and only those — sort/topn are recorded, not gated).
        let mut flat = report.clone();
        for e in &mut flat.entries {
            e.threads_ns = vec![
                (1, 1_000_000),
                (2, 1_000_000),
                (4, 1_000_000),
                (8, 1_000_000),
            ];
        }
        assert_eq!(find_scaling_regressions(&flat).len(), 2);
        // The same flat numbers are acceptable on a 1-core host…
        flat.host_cores = 1;
        assert!(find_scaling_regressions(&flat).is_empty());
        // …but gross pool overhead (4 threads 2x slower than 1) is not.
        for e in &mut flat.entries {
            e.threads_ns = vec![
                (1, 1_000_000),
                (2, 1_500_000),
                (4, 2_000_000),
                (8, 2_000_000),
            ];
        }
        assert_eq!(find_scaling_regressions(&flat).len(), 2);
    }

    /// A tiny end-to-end sweep: outputs must be byte-identical at every
    /// pool size (asserted inside the suite) and every entry must carry
    /// all four thread timings.
    #[test]
    fn parallel_suite_is_thread_invariant() {
        let _guard = pool_test_lock();
        let report = run_parallel_suite(&[2_000], Duration::from_millis(2));
        assert_eq!(report.entries.len(), 4);
        for e in &report.entries {
            assert_eq!(e.threads_ns.len(), PARALLEL_THREADS.len());
        }
        assert_eq!(report.host_cores, host_cores());
    }

    /// Serializes tests that resize the process-wide pool.
    fn pool_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The `"shuffle"` line must not confuse the line-oriented entry
    /// parser, and compression must strictly shrink shuffled bytes on a
    /// real distributed run.
    #[test]
    fn shuffle_compression_strictly_shrinks_measured_bytes() {
        let report = shuffle_bytes_report(4_000);
        assert!(
            report.compressed_bytes < report.plain_bytes,
            "compression on shipped {} bytes, off shipped {}",
            report.compressed_bytes,
            report.plain_bytes
        );
        let entries = vec![BenchEntry {
            name: "join".into(),
            rows: 100,
            baseline_ns: 10,
            vectorized_ns: 5,
        }];
        let text = render_json("test", &entries, Some(&report), None);
        assert!(text.contains("\"shuffle\""));
        assert_eq!(parse_results(&text), entries);
    }

    /// The investigation behind the `filter_join` comment in
    /// [`run_suite`]: measure the benchmark's filter pass rates with the
    /// engine's own selectivity profile instead of guessing.
    #[test]
    fn filter_selectivity_explains_filter_join_plateau() {
        use skadi_frontends::exec::MemDb;
        let db = MemDb::new().register("events", events_batch(10_000, 42));
        // Combined selectivity across every filter op in the profile
        // (the planner may keep conjuncts fused or split them).
        let sel_of = |sql: &str| -> f64 {
            let (_, profile) = db.query_profiled(sql).expect("profiled query");
            profile
                .ops
                .iter()
                .flat_map(|o| o.shards.iter().filter_map(|s| s.selectivity))
                .product()
        };
        let low = sel_of("SELECT user_id FROM events WHERE kind = 'click' AND value > 50");
        let hi = sel_of("SELECT user_id FROM events WHERE value > 5");
        println!("filter_join selectivity: low={low:.4} hi={hi:.4}");
        assert!(
            (0.08..=0.16).contains(&low),
            "low-pass selectivity {low} — the plateau explanation assumes ~12%"
        );
        assert!(
            hi > 0.85,
            "high-pass selectivity {hi} — filter_join_hi assumes ~90%"
        );
    }

    #[test]
    fn regression_gate_fires() {
        let committed = vec![BenchEntry {
            name: "join".into(),
            rows: 100_000,
            baseline_ns: 1_000_000,
            vectorized_ns: 100_000,
        }];
        let mut fresh = committed.clone();
        fresh[0].vectorized_ns = 300_000;
        assert_eq!(find_regressions(&committed, &fresh, 2.0).len(), 1);
        // Sub-20µs entries are noise-exempt.
        let tiny = vec![BenchEntry {
            name: "filter".into(),
            rows: 10,
            baseline_ns: 10_000,
            vectorized_ns: 1_000,
        }];
        let mut tiny_fresh = tiny.clone();
        tiny_fresh[0].vectorized_ns = 9_000;
        assert!(find_regressions(&tiny, &tiny_fresh, 2.0).is_empty());
        // Committed sizes the fresh run never measured are skipped (a
        // full-mode artifact gated by a smoke re-measurement), but a
        // kernel missing at a size the fresh run covered still fails.
        let full = vec![
            BenchEntry {
                name: "join".into(),
                rows: 100_000,
                baseline_ns: 1_000_000,
                vectorized_ns: 100_000,
            },
            BenchEntry {
                name: "join".into(),
                rows: 1_000_000,
                baseline_ns: 10_000_000,
                vectorized_ns: 1_000_000,
            },
        ];
        let smoke_fresh = vec![full[0].clone()];
        assert!(find_regressions(&full, &smoke_fresh, 2.0).is_empty());
        let wrong_kernel = vec![BenchEntry {
            name: "sort".into(),
            rows: 100_000,
            baseline_ns: 1_000_000,
            vectorized_ns: 100_000,
        }];
        assert_eq!(find_regressions(&full, &wrong_kernel, 2.0).len(), 1);
    }
}

//! E4 / Figure 3(a): pull-based future resolution stalls short-lived
//! ops; the push-based model removes the stalls.

use skadi::dcsim::network::{LinkParams, Network};
use skadi::dcsim::time::SimTime;
use skadi::dcsim::topology::presets;
use skadi::ownership::resolve::{resolve_pull, resolve_push, ResolveScenario, RoutePolicy};

use crate::table::Table;

/// Stall of one resolution between two devices at the given op duration,
/// for both protocols (fresh network each, so NIC state doesn't leak).
pub fn stalls_at(op_us: u64, route: RoutePolicy) -> (f64, f64) {
    let topo = presets::device_rack();
    let devs = topo.accel_devices(None);
    let t = SimTime::from_micros(op_us);
    let scenario = ResolveScenario {
        owner: topo.servers()[0],
        producer: devs[0],
        consumer: devs[1],
        bytes: 4 << 10,
        value_ready: t,
        consumer_ready: t,
    };
    let mut n1 = Network::new(&topo, LinkParams::default());
    let pull = resolve_pull(&mut n1, &scenario, &route);
    let mut n2 = Network::new(&topo, LinkParams::default());
    let push = resolve_push(&mut n2, &scenario, &route);
    (pull.stall.as_micros_f64(), push.stall.as_micros_f64())
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "fig3_pullpush",
        "Future resolution: pull vs push between two devices",
        "Ray's pull model makes the consumer fetch on demand through the owner \
         — 4 control messages before any data moves — which 'creates long \
         stalls for short-lived ops'; Skadi adds a push model where the \
         producer sends data proactively (paper §2.3.2).",
        &[
            "op_us",
            "pull_stall_us",
            "push_stall_us",
            "stall_ratio",
            "pull_overhead_%",
            "push_overhead_%",
        ],
    );
    for op_us in [1u64, 5, 10, 50, 100, 500, 1000, 10_000] {
        let (pull, push) = stalls_at(op_us, RoutePolicy::GEN1);
        t.row(vec![
            op_us.to_string(),
            format!("{pull:.2}"),
            format!("{push:.2}"),
            format!("{:.1}x", pull / push.max(1e-9)),
            format!("{:.1}", 100.0 * pull / op_us as f64),
            format!("{:.1}", 100.0 * push / op_us as f64),
        ]);
    }
    let (pull_1us, push_1us) = stalls_at(1, RoutePolicy::GEN1);
    t.takeaway(format!(
        "for a 1 us op, pull stalls {:.0}x the op itself; push cuts the stall {:.1}x",
        pull_1us,
        pull_1us / push_1us.max(1e-9)
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_always_stalls_more() {
        for op in [1, 100, 10_000] {
            let (pull, push) = stalls_at(op, RoutePolicy::GEN1);
            assert!(pull > push, "op {op}: pull {pull} push {push}");
        }
    }

    #[test]
    fn stall_is_duration_independent() {
        // The absolute stall is protocol overhead, roughly constant.
        let (p1, _) = stalls_at(1, RoutePolicy::GEN1);
        let (p2, _) = stalls_at(10_000, RoutePolicy::GEN1);
        assert!((p1 - p2).abs() / p1 < 0.1, "{p1} vs {p2}");
    }

    #[test]
    fn gen2_routing_shrinks_both() {
        let (pull_g1, push_g1) = stalls_at(10, RoutePolicy::GEN1);
        let (pull_g2, push_g2) = stalls_at(10, RoutePolicy::GEN2);
        assert!(pull_g2 < pull_g1);
        assert!(push_g2 <= push_g1);
    }
}

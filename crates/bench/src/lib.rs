//! # skadi-bench — the experiment harness
//!
//! One module per experiment of DESIGN.md's per-experiment index; each
//! exposes `run() -> Table` so the `experiments` binary, the integration
//! tests, and the Criterion benches all drive the same code.
//!
//! The Skadi paper is a HotOS vision paper: its "evaluation" artifacts
//! are Figures 1-3 and Table 1, which encode *qualitative* claims. Each
//! experiment here regenerates one claim as a measured series on the
//! simulated cluster; EXPERIMENTS.md records claim-vs-measured for all
//! of them.

pub mod exec_bench;
pub mod sched_bench;
pub mod table;

pub mod e01_fig1_deployments;
pub mod e02_fig2_access_layer;
pub mod e03_fig2_cache_tiers;
pub mod e04_fig3_pull_push;
pub mod e05_fig3_generations;
pub mod e06_table1_baselines;
pub mod e07_fault_tolerance;
pub mod e08_scheduling;
pub mod e09_shared_format;
pub mod e10_fusion;
pub mod e11_autoscale;
pub mod e12_gang;
pub mod e13_backends;
pub mod e14_pipeline_parallelism;
pub mod e15_eviction_policies;
pub mod e16_fabric_sensitivity;
pub mod e17_actor_serving;
pub mod e18_fanout_broadcast;
pub mod e19_consolidation;
pub mod e20_tightly_coupled;

pub use table::Table;

/// An experiment entry: its id plus the function regenerating its table.
pub type Experiment = (&'static str, fn() -> Table);

/// Every experiment, in order: `(id, title, runner)`.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("fig1", e01_fig1_deployments::run as fn() -> Table),
        ("fig2_access", e02_fig2_access_layer::run),
        ("fig2_cache", e03_fig2_cache_tiers::run),
        ("fig3_pullpush", e04_fig3_pull_push::run),
        ("fig3_gen", e05_fig3_generations::run),
        ("table1", e06_table1_baselines::run),
        ("e7_ft", e07_fault_tolerance::run),
        ("e8_sched", e08_scheduling::run),
        ("e9_format", e09_shared_format::run),
        ("e10_fusion", e10_fusion::run),
        ("e11_autoscale", e11_autoscale::run),
        ("e12_gang", e12_gang::run),
        ("e13_backends", e13_backends::run),
        ("e14_pipeline", e14_pipeline_parallelism::run),
        ("e15_eviction", e15_eviction_policies::run),
        ("e16_fabric", e16_fabric_sensitivity::run),
        ("e17_serving", e17_actor_serving::run),
        ("e18_fanout", e18_fanout_broadcast::run),
        ("e19_consolidation", e19_consolidation::run),
        ("e20_pod", e20_tightly_coupled::run),
    ]
}

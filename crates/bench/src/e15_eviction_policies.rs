//! E15 (ablation): caching-layer eviction policies.
//!
//! The paper leaves "tiering policies etc." to the caching layer (Figure
//! 2, note 5). This ablation compares LRU, LFU, and cost-aware eviction
//! on the Figure-2 cache workload.

use skadi::store::policy::EvictionPolicy;

use crate::e03_fig2_cache_tiers::run_working_set;
use crate::table::Table;

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e15_eviction",
        "Eviction policy ablation on the tiered cache (Zipf-0.99 gets)",
        "The caching layer owns tiering policy (paper Figure 2 note 5); the \
         right policy keeps the hot head in HBM under skewed access.",
        &["ws_MiB", "policy", "hbm_%", "disagg_%", "mean_ns"],
    );
    for ws_objects in [16u64, 32, 64] {
        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::CostAware,
        ] {
            let mix = run_working_set(ws_objects, 8 << 20, policy);
            t.row(vec![
                (ws_objects * 8).to_string(),
                policy.to_string(),
                format!("{:.1}", 100.0 * mix.hbm_frac()),
                format!("{:.1}", 100.0 * mix.disagg as f64 / mix.gets as f64),
                format!("{:.0}", mix.mean_ns()),
            ]);
        }
    }
    t.takeaway(
        "frequency-based policies (LFU, and cost-aware, which degenerates to \
         LFU on uniform-sized objects) hold the Zipf head in HBM better than \
         recency alone — about 13 points more HBM hits at the largest set"
            .to_string(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_beats_durable() {
        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::CostAware,
        ] {
            let mix = run_working_set(64, 8 << 20, policy);
            assert_eq!(mix.durable, 0, "{policy}");
            assert!(mix.hbm_frac() > 0.2, "{policy}: {}", mix.hbm_frac());
        }
    }

    #[test]
    fn table_has_nine_rows() {
        assert_eq!(run().rows.len(), 9);
    }
}

//! `sched-bench` — scheduler-core benchmarks at 10k-node scale.
//!
//! Usage: `sched-bench [smoke|full|check]`
//!
//! - `smoke` (default): short event budgets; rewrites `BENCH_sched.json`
//!   at the repo root (queue events/sec at 100/1k/10k nodes, per-policy
//!   static-vs-adaptive makespans, multi-job chaos at every scale).
//! - `full`: longer event budgets and more staggered jobs; also
//!   rewrites the results file.
//! - `check`: gates the committed `BENCH_sched.json` — the calendar
//!   queue must hold ≥5x events/sec over the heap baseline at 10k
//!   nodes, adaptive lowering must beat static under every policy, and
//!   every recorded chaos run (including the 10k-node one) must have
//!   converged — then re-measures the policy suite and a relaxed
//!   10k-node queue point on this host (CI gate).

use std::process::ExitCode;

use skadi_bench::sched_bench::{
    find_committed_problems, parse_results, render_json, render_table, run_policy_suite,
    run_queue_suite, run_scale_suite, SchedResults, NODE_COUNTS, RESULTS_PATH,
};

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "smoke".into());
    match mode.as_str() {
        "smoke" | "full" => {
            let (events_per_node, jobs) = if mode == "full" { (40, 8) } else { (10, 4) };
            let results = SchedResults {
                queue: run_queue_suite(&NODE_COUNTS, events_per_node),
                policies: run_policy_suite(),
                scale: run_scale_suite(&NODE_COUNTS, jobs),
            };
            print!("{}", render_table(&results));
            let problems = find_committed_problems(&results);
            for p in &problems {
                eprintln!("WARNING: fresh run misses a gate: {p}");
            }
            let json = render_json(&mode, &results.queue, &results.policies, &results.scale);
            if let Err(e) = std::fs::write(RESULTS_PATH, &json) {
                eprintln!("failed to write {RESULTS_PATH}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {RESULTS_PATH}");
            if problems.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "check" => {
            let text = match std::fs::read_to_string(RESULTS_PATH) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {RESULTS_PATH}: {e} (run `sched-bench smoke` first)");
                    return ExitCode::FAILURE;
                }
            };
            let committed = parse_results(&text);
            print!("{}", render_table(&committed));
            let mut problems = find_committed_problems(&committed);

            // Fresh re-measures on this host. The policy suite is pure
            // simulation (deterministic makespans), so it must pass the
            // same strict gate; the queue point is wall-clock, so CI
            // hardware gets a relaxed 2x bar instead of the committed 5x.
            let fresh_policies = run_policy_suite();
            for p in &fresh_policies {
                if p.adaptive_us >= p.static_us {
                    problems.push(format!(
                        "fresh policy {}: adaptive makespan {}us did not beat static {}us",
                        p.policy, p.adaptive_us, p.static_us
                    ));
                }
            }
            let fresh_queue = run_queue_suite(&[10_000], 5);
            let q = &fresh_queue[0];
            println!(
                "fresh queue @ 10k nodes: heap {} eps, calendar {} eps ({:.2}x)",
                q.heap_eps,
                q.calendar_eps,
                q.speedup()
            );
            if q.speedup() < 2.0 {
                problems.push(format!(
                    "fresh queue @ 10k nodes: calendar only {:.2}x the heap baseline, need 2x",
                    q.speedup()
                ));
            }

            if problems.is_empty() {
                println!("sched-bench check OK: queue, policy, and scale gates all hold");
                ExitCode::SUCCESS
            } else {
                for p in &problems {
                    eprintln!("REGRESSION: {p}");
                }
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown mode {other:?}; expected smoke|full|check");
            ExitCode::FAILURE
        }
    }
}

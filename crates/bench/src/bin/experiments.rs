//! Regenerates every table and figure of the Skadi reproduction.
//!
//! ```text
//! cargo run -p skadi-bench --bin experiments            # all experiments
//! cargo run -p skadi-bench --bin experiments -- fig3_gen table1
//! cargo run -p skadi-bench --bin experiments -- --list
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = skadi_bench::all_experiments();

    if args.iter().any(|a| a == "--list") {
        for (id, _) in &all {
            println!("{id}");
        }
        return;
    }

    let selected: Vec<&skadi_bench::Experiment> = if args.is_empty() {
        all.iter().collect()
    } else {
        all.iter()
            .filter(|(id, _)| args.iter().any(|a| a == id))
            .collect()
    };

    if selected.is_empty() {
        eprintln!("no experiment matches {args:?}; try --list");
        std::process::exit(1);
    }

    println!("skadi reproduction — experiment harness");
    println!("(virtual-time results from the deterministic simulator; see EXPERIMENTS.md)\n");
    for (_, run) in selected {
        let table = run();
        println!("{table}");
    }
}

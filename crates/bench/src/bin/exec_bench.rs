//! `exec-bench` — micro-benchmarks for the local SQL engine.
//!
//! Usage: `exec-bench [smoke|full|check]`
//!
//! - `smoke` (default): 10k/100k rows, short budgets; rewrites
//!   `BENCH_exec.json` at the repo root (including a 100k-row parallel
//!   scaling sweep).
//! - `full`: adds 1M-row points and longer budgets; also rewrites the
//!   results file. The parallel sweep covers 100k and 1M rows.
//! - `check`: re-measures and exits non-zero if any vectorized kernel
//!   is more than 2x slower than the committed `BENCH_exec.json`, if
//!   the committed parallel section misses the scaling bar its
//!   recording host's core count demands, or if a fresh parallel sweep
//!   on this machine shows the morsel path has stopped scaling (CI
//!   gate).

use std::process::ExitCode;
use std::time::Duration;

use skadi_bench::exec_bench::{
    find_regressions, find_scaling_regressions, find_scaling_regressions_with, host_cores,
    parse_parallel, parse_results, render_json, render_parallel_table, render_table,
    required_speedup, run_parallel_suite, run_suite, shuffle_bytes_report, RESULTS_PATH,
};

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "smoke".into());
    match mode.as_str() {
        "smoke" | "full" => {
            let (sizes, parallel_sizes, budget): (&[usize], &[usize], _) = if mode == "full" {
                (
                    &[10_000, 100_000, 1_000_000],
                    &[100_000, 1_000_000],
                    Duration::from_millis(500),
                )
            } else {
                (&[10_000, 100_000], &[100_000], Duration::from_millis(120))
            };
            let entries = run_suite(sizes, budget);
            print!("{}", render_table(&entries));
            let parallel = run_parallel_suite(parallel_sizes, budget);
            print!("{}", render_parallel_table(&parallel));
            let shuffle = shuffle_bytes_report(if mode == "full" { 100_000 } else { 10_000 });
            println!(
                "shuffle bytes @ {} rows: plain {} compressed {} ({:.1}% of plain)",
                shuffle.rows,
                shuffle.plain_bytes,
                shuffle.compressed_bytes,
                shuffle.ratio() * 100.0
            );
            let json = render_json(&mode, &entries, Some(&shuffle), Some(&parallel));
            if let Err(e) = std::fs::write(RESULTS_PATH, &json) {
                eprintln!("failed to write {RESULTS_PATH}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {RESULTS_PATH}");
            ExitCode::SUCCESS
        }
        "check" => {
            let text = match std::fs::read_to_string(RESULTS_PATH) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {RESULTS_PATH}: {e} (run `exec-bench smoke` first)");
                    return ExitCode::FAILURE;
                }
            };
            let committed = parse_results(&text);
            if committed.is_empty() {
                eprintln!("{RESULTS_PATH} holds no entries");
                return ExitCode::FAILURE;
            }
            let fresh = run_suite(&[10_000, 100_000], Duration::from_millis(120));
            print!("{}", render_table(&fresh));
            let mut problems = find_regressions(&committed, &fresh, 2.0);

            // Scaling gates: the committed parallel section must satisfy
            // the bar for the host that recorded it, and a fresh sweep
            // must show the morsel path still overlaps work on *this*
            // host (relaxed bar: 100k rows is only ~7 morsels).
            match parse_parallel(&text) {
                None => problems.push(format!("{RESULTS_PATH} lacks a \"parallel\" section")),
                Some(report) => problems.extend(find_scaling_regressions(&report)),
            }
            let fresh_parallel = run_parallel_suite(&[100_000], Duration::from_millis(120));
            print!("{}", render_parallel_table(&fresh_parallel));
            let relaxed = required_speedup(host_cores().min(2));
            problems.extend(find_scaling_regressions_with(&fresh_parallel, relaxed));

            if problems.is_empty() {
                println!(
                    "bench check OK: no kernel >2x slower than committed baseline, \
                     parallel scaling within bounds"
                );
                ExitCode::SUCCESS
            } else {
                for p in &problems {
                    eprintln!("REGRESSION: {p}");
                }
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown mode {other:?}; expected smoke|full|check");
            ExitCode::FAILURE
        }
    }
}

//! `exec-bench` — micro-benchmarks for the local SQL engine.
//!
//! Usage: `exec-bench [smoke|full|check]`
//!
//! - `smoke` (default): 10k/100k rows, short budgets; rewrites
//!   `BENCH_exec.json` at the repo root.
//! - `full`: adds 1M-row points and longer budgets; also rewrites the
//!   results file.
//! - `check`: re-measures and exits non-zero if any vectorized kernel is
//!   >2x slower than the committed `BENCH_exec.json` (CI gate).

use std::process::ExitCode;
use std::time::Duration;

use skadi_bench::exec_bench::{
    find_regressions, parse_results, render_json, render_table, run_suite, shuffle_bytes_report,
    RESULTS_PATH,
};

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "smoke".into());
    match mode.as_str() {
        "smoke" | "full" => {
            let (sizes, budget): (&[usize], _) = if mode == "full" {
                (&[10_000, 100_000, 1_000_000], Duration::from_millis(500))
            } else {
                (&[10_000, 100_000], Duration::from_millis(120))
            };
            let entries = run_suite(sizes, budget);
            print!("{}", render_table(&entries));
            let shuffle = shuffle_bytes_report(if mode == "full" { 100_000 } else { 10_000 });
            println!(
                "shuffle bytes @ {} rows: plain {} compressed {} ({:.1}% of plain)",
                shuffle.rows,
                shuffle.plain_bytes,
                shuffle.compressed_bytes,
                shuffle.ratio() * 100.0
            );
            let json = render_json(&mode, &entries, Some(&shuffle));
            if let Err(e) = std::fs::write(RESULTS_PATH, &json) {
                eprintln!("failed to write {RESULTS_PATH}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {RESULTS_PATH}");
            ExitCode::SUCCESS
        }
        "check" => {
            let committed = match std::fs::read_to_string(RESULTS_PATH) {
                Ok(text) => parse_results(&text),
                Err(e) => {
                    eprintln!("cannot read {RESULTS_PATH}: {e} (run `exec-bench smoke` first)");
                    return ExitCode::FAILURE;
                }
            };
            if committed.is_empty() {
                eprintln!("{RESULTS_PATH} holds no entries");
                return ExitCode::FAILURE;
            }
            let fresh = run_suite(&[10_000, 100_000], Duration::from_millis(120));
            print!("{}", render_table(&fresh));
            let problems = find_regressions(&committed, &fresh, 2.0);
            if problems.is_empty() {
                println!("bench check OK: no kernel >2x slower than committed baseline");
                ExitCode::SUCCESS
            } else {
                for p in &problems {
                    eprintln!("REGRESSION: {p}");
                }
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown mode {other:?}; expected smoke|full|check");
            ExitCode::FAILURE
        }
    }
}

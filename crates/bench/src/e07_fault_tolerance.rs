//! E7 / §2.1 failure handling: lineage re-execution vs a reliable
//! caching layer (replication / erasure coding) under node failure.

use skadi::dcsim::time::SimTime;
use skadi::prelude::*;
use skadi::runtime::task::TaskSpec;
use skadi::runtime::{Cluster, Job, TaskId};
use skadi::store::ec::EcConfig;

use crate::table::Table;

/// The workload: 4 chains x 6 stages joined at the end.
pub fn diamond_job() -> Job {
    let mut tasks = Vec::new();
    let (chains, stages) = (4u64, 6u64);
    for c in 0..chains {
        for s in 0..stages {
            let id = c * stages + s;
            let mut t = TaskSpec::new(id, 4_000.0, 8 << 20);
            if s > 0 {
                t = t.after(TaskId(id - 1), 8 << 20);
            }
            tasks.push(t);
        }
    }
    let mut join = TaskSpec::new(chains * stages, 8_000.0, 1 << 20);
    for c in 0..chains {
        join = join.after(TaskId(c * stages + stages - 1), 8 << 20);
    }
    tasks.push(join);
    Job::new("diamond", tasks).expect("valid job")
}

/// Runs the workload with one server killed mid-job.
pub fn run_ft(ft: FtMode) -> JobStats {
    let topo = presets::small_disagg_cluster();
    let victim = topo.servers()[1];
    let failures = FailurePlan::none().kill(victim, SimTime::from_millis(12));
    let mut cluster = Cluster::new(&topo, RuntimeConfig::skadi_gen2().with_ft(ft));
    cluster
        .run_with_failures(&diamond_job(), &failures)
        .expect("job completes")
}

/// Clean (failure-free) run for the overhead baseline.
pub fn run_clean() -> JobStats {
    let topo = presets::small_disagg_cluster();
    let mut cluster = Cluster::new(&topo, RuntimeConfig::skadi_gen2());
    cluster.run(&diamond_job()).expect("job completes")
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e7_ft",
        "Fault tolerance: lineage vs reliable caching (replication / EC)",
        "Lineage re-executes the graph on loss (cheap in the common case, \
         expensive at failure time); a reliable caching layer pays storage \
         and replication bandwidth up front to mask failures (paper §2.1).",
        &[
            "mode",
            "makespan",
            "overhead_%",
            "re-execs",
            "extra_MB",
            "storage_x",
        ],
    );
    let clean = run_clean();
    let base = clean.makespan.as_secs_f64();
    t.row(vec![
        "no-failure".into(),
        clean.makespan.to_string(),
        "0.0".into(),
        "0".into(),
        "0.0".into(),
        "1.0".into(),
    ]);
    let modes: Vec<(&str, FtMode, f64)> = vec![
        ("lineage", FtMode::Lineage, 1.0),
        ("replication-2x", FtMode::Replication(2), 2.0),
        (
            "ec-rs(4,2)",
            FtMode::ErasureCoding(EcConfig::RS_4_2),
            EcConfig::RS_4_2.overhead(),
        ),
    ];
    for (name, ft, storage) in modes {
        let s = run_ft(ft);
        let extra = s.metrics.counter("replica_bytes") + s.metrics.counter("ec_bytes");
        t.row(vec![
            name.into(),
            s.makespan.to_string(),
            format!("{:.1}", 100.0 * (s.makespan.as_secs_f64() / base - 1.0)),
            s.retries.to_string(),
            format!("{:.1}", extra as f64 / 1e6),
            format!("{storage:.1}"),
        ]);
    }
    t.takeaway(
        "replication masks the loss (fewest re-executions) at 2x storage; EC \
         halves that storage premium; lineage stores nothing but recomputes"
            .to_string(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_complete() {
        for ft in [
            FtMode::Lineage,
            FtMode::Replication(2),
            FtMode::ErasureCoding(EcConfig::RS_4_2),
        ] {
            let s = run_ft(ft);
            assert_eq!(s.finished, 25, "{ft:?}");
            assert_eq!(s.abandoned, 0, "{ft:?}");
        }
    }

    #[test]
    fn replication_needs_fewer_reexecutions_than_lineage() {
        let lineage = run_ft(FtMode::Lineage);
        let repl = run_ft(FtMode::Replication(2));
        assert!(repl.retries <= lineage.retries);
        assert!(repl.metrics.counter("replica_bytes") > 0);
    }
}

//! E14 / §1 data-plane benefit 3: futures untie data systems within an
//! integrated pipeline, "enabling pipeline parallelism across system
//! boundaries" and reducing trips to durable storage.

use skadi::prelude::*;
use skadi::runtime::task::TaskSpec;
use skadi::runtime::{Cluster, Job, TaskId};

use crate::table::Table;

/// A two-system pipeline: `width` SQL producer shards each feeding an ML
/// consumer shard (shard i -> shard i), so consumers *can* start as soon
/// as their own producer finishes — if the boundary doesn't force a
/// durable barrier.
pub fn two_system_pipeline(width: u64, mb: u64) -> Job {
    let bytes = mb << 20;
    let mut tasks = Vec::new();
    for i in 0..width {
        // Staggered producers: earlier shards finish much earlier.
        tasks.push(TaskSpec::new(i, ((i + 1) * 2_000) as f64, bytes).in_system("sql"));
    }
    for i in 0..width {
        tasks.push(
            TaskSpec::new(width + i, 3_000.0, bytes / 4)
                .after(TaskId(i), bytes)
                .in_system("ml"),
        );
    }
    let mut join = TaskSpec::new(2 * width, 1_000.0, 1 << 10).in_system("ml");
    for i in 0..width {
        join = join.after(TaskId(width + i), bytes / 4);
    }
    tasks.push(join);
    Job::new("two-system", tasks).expect("valid")
}

/// Runs the pipeline under a deployment config.
pub fn run_cfg(cfg: RuntimeConfig) -> JobStats {
    let topo = presets::small_disagg_cluster();
    let mut c = Cluster::new(&topo, cfg);
    c.run(&two_system_pipeline(6, 16)).expect("runs")
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e14_pipeline",
        "Pipeline parallelism across system boundaries (futures vs durable barrier)",
        "Futures + the caching layer untie data systems within an integrated \
         pipeline, enabling pipeline parallelism across system boundaries and \
         reducing the number of trips to durable storage (paper §1).",
        &["boundary", "makespan", "durable_trips", "cross_system_lat"],
    );
    let configs = [
        ("futures (skadi)", RuntimeConfig::skadi_gen2()),
        ("durable (serverful)", RuntimeConfig::serverful()),
        ("durable (stateless)", RuntimeConfig::stateless_serverless()),
    ];
    let mut results = Vec::new();
    for (name, cfg) in configs {
        let s = run_cfg(cfg);
        t.row(vec![
            name.to_string(),
            s.makespan.to_string(),
            s.durable_trips.to_string(),
            s.mean_stall().to_string(),
        ]);
        results.push(s);
    }
    t.takeaway(format!(
        "crossing the system boundary through futures is {:.1}x faster than \
         through durable storage",
        results[2].makespan.as_secs_f64() / results[0].makespan.as_secs_f64()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn futures_beat_durable_barriers() {
        let skadi = run_cfg(RuntimeConfig::skadi_gen2());
        let serverful = run_cfg(RuntimeConfig::serverful());
        assert_eq!(skadi.durable_trips, 0);
        assert!(serverful.durable_trips > 0);
        assert!(skadi.makespan < serverful.makespan);
    }

    #[test]
    fn consumers_overlap_producers_under_futures() {
        // With futures, ML shard 0 starts long before SQL shard 5
        // finishes: the makespan is far below the durable-barrier one.
        let skadi = run_cfg(RuntimeConfig::skadi_gen2());
        let stateless = run_cfg(RuntimeConfig::stateless_serverless());
        assert!(
            stateless.makespan.as_secs_f64() > skadi.makespan.as_secs_f64() * 1.5,
            "stateless {} vs skadi {}",
            stateless.makespan,
            skadi.makespan
        );
    }
}

//! E8 / §2.3: data-centric scheduling — move compute to where data
//! resides to reduce data transfer (the paper's data-plane benefit 1).

use skadi::prelude::*;
use skadi::runtime::task::TaskSpec;
use skadi::runtime::{Cluster, Job, TaskId};

use crate::table::Table;

/// A locality-sensitive workload: several concurrent chains with large
/// intermediates, so load-balancing and locality genuinely conflict.
pub fn chain_job(stages: u64, mb_per_edge: u64) -> Job {
    let bytes = mb_per_edge << 20;
    let chains = 6u64;
    let mut tasks = Vec::new();
    for c in 0..chains {
        for s in 0..stages {
            let id = c * stages + s;
            let mut t = TaskSpec::new(id, 500.0, bytes);
            if s > 0 {
                t = t.after(TaskId(id - 1), bytes);
            }
            tasks.push(t);
        }
    }
    Job::new("chains", tasks).expect("valid")
}

/// Runs the chain under a placement policy.
pub fn run_policy(policy: PlacementPolicy, mb: u64) -> JobStats {
    let topo = presets::small_disagg_cluster();
    let mut c = Cluster::new(&topo, RuntimeConfig::skadi_gen2().with_placement(policy));
    c.run(&chain_job(12, mb)).expect("runs")
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e8_sched",
        "Data-centric vs locality-oblivious scheduling",
        "The caching layer 'decouples compute from states so compute can be \
         opportunistically migrated to where data reside to reduce data \
         transfer' (paper §1); the control plane 'embraces data-centric \
         scheduling' (§2.3).",
        &[
            "edge_MB",
            "policy",
            "network_MB",
            "makespan",
            "bytes_saved_%",
        ],
    );
    for mb in [1u64, 8, 32, 128] {
        let dc = run_policy(PlacementPolicy::DataCentric, mb);
        let rr = run_policy(PlacementPolicy::RoundRobin, mb);
        let lo = run_policy(PlacementPolicy::LoadOnly, mb);
        let base = rr.net.network_bytes() as f64;
        for (name, s) in [
            ("data-centric", &dc),
            ("load-only", &lo),
            ("round-robin", &rr),
        ] {
            t.row(vec![
                mb.to_string(),
                name.to_string(),
                format!("{:.1}", s.net.network_bytes() as f64 / 1e6),
                s.makespan.to_string(),
                format!(
                    "{:.1}",
                    100.0 * (1.0 - s.net.network_bytes() as f64 / base.max(1.0))
                ),
            ]);
        }
    }
    let dc = run_policy(PlacementPolicy::DataCentric, 128);
    let rr = run_policy(PlacementPolicy::RoundRobin, 128);
    t.takeaway(format!(
        "at 128 MB edges, data-centric moves {:.0}% less data and finishes {:.1}x faster",
        100.0 * (1.0 - dc.net.network_bytes() as f64 / rr.net.network_bytes() as f64),
        rr.makespan.as_secs_f64() / dc.makespan.as_secs_f64()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_centric_moves_least_data() {
        let dc = run_policy(PlacementPolicy::DataCentric, 32);
        let rr = run_policy(PlacementPolicy::RoundRobin, 32);
        assert!(dc.net.network_bytes() < rr.net.network_bytes());
    }

    #[test]
    fn advantage_grows_with_edge_size() {
        let small_dc = run_policy(PlacementPolicy::DataCentric, 1);
        let small_rr = run_policy(PlacementPolicy::RoundRobin, 1);
        let big_dc = run_policy(PlacementPolicy::DataCentric, 128);
        let big_rr = run_policy(PlacementPolicy::RoundRobin, 128);
        let small_gain = small_rr.makespan.as_secs_f64() / small_dc.makespan.as_secs_f64();
        let big_gain = big_rr.makespan.as_secs_f64() / big_dc.makespan.as_secs_f64();
        assert!(
            big_gain > small_gain,
            "big {big_gain:.2} vs small {small_gain:.2}"
        );
    }
}

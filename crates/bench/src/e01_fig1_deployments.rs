//! E1 / Figure 1: serverful vs stateless serverless vs distributed
//! runtime on one integrated pipeline (ingest -> SQL -> ML).

use skadi::pipeline::fig1_pipeline;
use skadi::prelude::*;

use crate::table::Table;

fn session(cfg: RuntimeConfig) -> Session {
    Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .runtime(cfg)
        .build()
}

/// Runs the pipeline under one deployment, returning its stats.
pub fn run_deployment(cfg: RuntimeConfig, scale: u64) -> JobStats {
    let s = session(cfg);
    fig1_pipeline(&s, scale)
        .expect("pipeline builds")
        .run()
        .expect("pipeline runs")
        .stats
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "fig1",
        "Integrated pipeline under three deployment models",
        "Stateless serverless bounces data via durable storage (Fig 1b); the \
         distributed runtime keeps it in the caching layer (Fig 1c); serverful \
         pays only at system boundaries but reserves whole clusters (Fig 1a).",
        &[
            "deployment",
            "makespan",
            "durable_trips",
            "network_MB",
            "durable_MB",
            "cost",
        ],
    );
    let configs = [
        ("serverful", RuntimeConfig::serverful()),
        (
            "stateless-serverless",
            RuntimeConfig::stateless_serverless(),
        ),
        ("distributed-runtime", RuntimeConfig::skadi_gen2()),
    ];
    let mut results = Vec::new();
    for (name, cfg) in configs {
        let s = run_deployment(cfg, 1);
        t.row(vec![
            name.to_string(),
            s.makespan.to_string(),
            s.durable_trips.to_string(),
            format!("{:.1}", s.net.network_bytes() as f64 / 1e6),
            format!("{:.1}", s.net.durable_bytes as f64 / 1e6),
            format!("{:.3}", s.cost_units),
        ]);
        results.push((name, s));
    }
    let skadi = &results[2].1;
    let stateless = &results[1].1;
    let serverful = &results[0].1;
    t.takeaway(format!(
        "distributed runtime: {:.1}x faster than stateless serverless ({} vs {} durable trips), {:.0}x cheaper than serverful reservation",
        stateless.makespan.as_secs_f64() / skadi.makespan.as_secs_f64(),
        skadi.durable_trips,
        stateless.durable_trips,
        serverful.cost_units / skadi.cost_units.max(1e-9),
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure_1() {
        let t = run();
        assert_eq!(t.rows.len(), 3);
        let durable = |r: usize| t.cell_f64(r, "durable_trips").unwrap();
        // Stateless bounces everything; skadi bounces nothing; serverful
        // sits in between.
        assert_eq!(durable(2), 0.0);
        assert!(durable(0) > 0.0);
        assert!(durable(1) > durable(0));
    }
}

//! E17 (extension): stateful actors serving short lookups from
//! accelerator memory.
//!
//! Table 1 lists actor-based query-serving systems (DPA) as one family the
//! distributed runtime must subsume, and §2.3.1 notes Ray's API launches
//! "stateless tasks or stateful actors". This experiment serves embedding
//! lookups from actors pinned to GPU devices — each method is short, so
//! the Gen-1 DPU detour and pull-based resolution dominate tail latency,
//! and Gen-2's device raylets win.

use skadi::prelude::*;
use skadi::runtime::task::{ActorId, TaskSpec};
use skadi::runtime::{Cluster, Job, TaskId};

use crate::table::Table;

/// A serving job: `shards` GPU-resident actors, each handling `lookups`
/// sequential method calls fed by a router task.
pub fn serving_job(shards: u64, lookups: u64, method_us: f64) -> Job {
    let mut tasks = Vec::new();
    // Router: receives the batch of requests.
    tasks.push(TaskSpec::new(0, 50.0, 64 << 10).named("router"));
    let mut id = 1u64;
    for s in 0..shards {
        let actor = ActorId(s);
        for _ in 0..lookups {
            tasks.push(
                TaskSpec::new(id, method_us, 4 << 10)
                    .after(TaskId(0), 4 << 10)
                    .on(Backend::Gpu)
                    .on_actor(actor)
                    .named("lookup"),
            );
            id += 1;
        }
    }
    Job::new("serving", tasks).expect("valid serving job")
}

/// Runs the serving job under a config; returns `(stats, p50_us, p99_us)`
/// where the percentiles are per-request completion latencies (request
/// issue is the router finish, so dispatch + queueing + resolution +
/// method time all count).
pub fn run_serving(cfg: RuntimeConfig, method_us: f64) -> (JobStats, f64, f64) {
    let topo = presets::device_rack();
    let mut c = Cluster::new(&topo, cfg);
    let job = serving_job(4, 16, method_us);
    let n = job.len() as u64;
    let stats = c.run(&job).expect("serving runs");
    let issue = c.task_finished_at(TaskId(0)).expect("router ran");
    let mut lat: Vec<f64> = (1..n)
        .filter_map(|i| c.task_finished_at(TaskId(i)))
        .map(|t| t.saturating_since(issue).as_micros_f64())
        .collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |q: f64| -> f64 {
        let idx = ((lat.len() - 1) as f64 * q).round() as usize;
        lat[idx]
    };
    (stats, pct(0.5), pct(0.99))
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e17_serving",
        "Actor-based query serving from accelerator memory (DPA-style)",
        "The runtime hosts query-serving systems as stateful actors (paper \
         Table 1 / §2.3.1); lookups are short-lived device ops, so Gen-2's \
         device raylets and push futures cut serving tails.",
        &["method_us", "generation", "p50_us", "p99_us", "makespan"],
    );
    for method_us in [20.0f64, 100.0, 1000.0] {
        for (name, cfg) in [
            ("gen1", RuntimeConfig::skadi_gen1()),
            ("gen2", RuntimeConfig::skadi_gen2()),
        ] {
            let (stats, p50, p99) = run_serving(cfg, method_us);
            t.row(vec![
                format!("{method_us:.0}"),
                name.to_string(),
                format!("{p50:.0}"),
                format!("{p99:.0}"),
                stats.makespan.to_string(),
            ]);
        }
    }
    let (_, _, p99_g1) = run_serving(RuntimeConfig::skadi_gen1(), 20.0);
    let (_, _, p99_g2) = run_serving(RuntimeConfig::skadi_gen2(), 20.0);
    t.takeaway(format!(
        "at 20 us lookups, Gen-2 cuts p99 serving latency {:.1}x ({:.0} -> {:.0} us)",
        p99_g1 / p99_g2,
        p99_g1,
        p99_g2
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_completes_and_serializes_per_actor() {
        let (stats, p50, p99) = run_serving(RuntimeConfig::skadi_gen2(), 20.0);
        assert_eq!(stats.abandoned, 0);
        assert!(p99 >= p50);
        // 16 sequential 20 us lookups per actor: p99 must exceed the pure
        // serial method time of a single shard's queue tail.
        assert!(p99 >= 16.0 * 20.0 * 0.5, "p99 {p99}");
    }

    #[test]
    fn gen2_cuts_short_lookup_tail() {
        let (_, _, p99_g1) = run_serving(RuntimeConfig::skadi_gen1(), 20.0);
        let (_, _, p99_g2) = run_serving(RuntimeConfig::skadi_gen2(), 20.0);
        assert!(
            p99_g2 < p99_g1,
            "gen2 p99 {p99_g2} should beat gen1 {p99_g1}"
        );
    }

    #[test]
    fn long_methods_drown_the_difference() {
        let (_, _, g1) = run_serving(RuntimeConfig::skadi_gen1(), 1000.0);
        let (_, _, g2) = run_serving(RuntimeConfig::skadi_gen2(), 1000.0);
        let short_gain = {
            let (_, _, a) = run_serving(RuntimeConfig::skadi_gen1(), 20.0);
            let (_, _, b) = run_serving(RuntimeConfig::skadi_gen2(), 20.0);
            a / b
        };
        let long_gain = g1 / g2;
        assert!(
            short_gain > long_gain,
            "short {short_gain} vs long {long_gain}"
        );
    }
}

//! E13 / §2.2 + Figure 2 vertices D1/D2: one hardware-agnostic IR op
//! lowered to *every* supporting backend for a direct comparison, with
//! the selection policy picking the winner.

use skadi::ir::dialect::{rel, tensor};
use skadi::ir::lower::lower_to_all_backends;
use skadi::ir::types::{frame_ty, IrType, ScalarType};
use skadi::ir::{BackendPolicy, Module};
use skadi::prelude::*;

use crate::table::Table;

/// Builds a module with one op of each interesting kind; returns the
/// module and `(name, op_id)` pairs.
pub fn rep_ops() -> (Module, Vec<(String, skadi::ir::OpId)>) {
    let mut m = Module::new();
    let f = rel::scan(
        &mut m,
        "t",
        frame_ty(&[("k", ScalarType::I64), ("v", ScalarType::F64)]),
    );
    let filt = rel::filter(&mut m, f, "v > 0");
    let agg = rel::aggregate(&mut m, filt, &["k"], "sum(v)");
    let x = tensor::source(&mut m, "x", IrType::matrix(ScalarType::F64));
    let w = tensor::source(&mut m, "w", IrType::matrix(ScalarType::F64));
    let mm = tensor::matmul(&mut m, x, w).expect("tensors");
    let mapped = tensor::map(&mut m, mm, "relu");
    m.mark_output(agg);
    m.mark_output(mapped);
    let ids = ["rel.filter", "rel.aggregate", "tensor.matmul", "tensor.map"]
        .iter()
        .map(|n| {
            (
                n.to_string(),
                m.ops().iter().find(|o| o.name == *n).expect("op exists").id,
            )
        })
        .collect();
    (m, ids)
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e13_backends",
        "One IR op lowered to every backend (the D1/D2 comparison)",
        "Hardware-agnostic IR lets Skadi lower a single piece of code to \
         multiple hardware backends and compare directly — vertex D becomes \
         GPU D1 and FPGA D2 in the paper's Figure 2 (§2.2).",
        &["op", "elements", "cpu_us", "gpu_us", "fpga_us", "winner"],
    );
    let (m, ids) = rep_ops();
    let policy = BackendPolicy::cost_based();
    for (name, id) in &ids {
        for elements in [1u64 << 10, 1 << 16, 1 << 22] {
            let variants = lower_to_all_backends(&m, *id, elements).expect("lowers");
            let cost_of = |b: Backend| -> String {
                variants
                    .iter()
                    .find(|(vb, _)| *vb == b)
                    .map(|(_, c)| format!("{:.1}", c.total_us()))
                    .unwrap_or_else(|| "n/a".to_string())
            };
            let op = m.ops().iter().find(|o| o.id == *id).expect("exists");
            let winner = policy
                .select(op, elements)
                .map(|(b, _)| b.to_string())
                .unwrap_or_default();
            t.row(vec![
                name.clone(),
                elements.to_string(),
                cost_of(Backend::Cpu),
                cost_of(Backend::Gpu),
                cost_of(Backend::Fpga),
                winner,
            ]);
        }
    }
    t.takeaway(
        "small streaming inputs win on FPGA (lowest launch overhead); large \
         batch ops go GPU; matmul never lowers to FPGA — one source, many \
         backends, policy picks"
            .to_string(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_has_no_fpga_variant() {
        let (m, ids) = rep_ops();
        let mm = ids.iter().find(|(n, _)| n == "tensor.matmul").unwrap().1;
        let variants = lower_to_all_backends(&m, mm, 1 << 20).unwrap();
        assert!(variants.iter().all(|(b, _)| *b != Backend::Fpga));
        assert_eq!(variants.len(), 2);
    }

    #[test]
    fn winner_shifts_with_scale() {
        let (m, ids) = rep_ops();
        let mm_op = {
            let id = ids.iter().find(|(n, _)| n == "tensor.matmul").unwrap().1;
            m.ops().iter().find(|o| o.id == id).unwrap().clone()
        };
        let policy = BackendPolicy::cost_based();
        let (small, _) = policy.select(&mm_op, 8).unwrap();
        let (large, _) = policy.select(&mm_op, 1 << 24).unwrap();
        assert_eq!(small, Backend::Cpu);
        assert_eq!(large, Backend::Gpu);
    }
}

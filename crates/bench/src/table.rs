//! Plain-text result tables.

use std::fmt;

/// One experiment's output: a titled table plus the claim it tests.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment identifier (e.g. `fig3_gen`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The paper claim this experiment reproduces.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// One-line takeaway computed from the data.
    pub takeaway: String,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, claim: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            claim: claim.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            takeaway: String::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Sets the takeaway line.
    pub fn takeaway(&mut self, s: String) {
        self.takeaway = s;
    }

    /// A cell by header name and row index (test helper).
    pub fn cell(&self, row: usize, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Parses a numeric cell (test helper).
    pub fn cell_f64(&self, row: usize, header: &str) -> Option<f64> {
        self.cell(row, header)?
            .trim_end_matches(['x', '%', 's', 'B'])
            .trim()
            .parse()
            .ok()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        writeln!(f, "   claim: {}", self.claim)?;
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "   ")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:>w$}  ", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &dashes)?;
        for row in &self.rows {
            line(f, row)?;
        }
        if !self.takeaway.is_empty() {
            writeln!(f, "   => {}", self.takeaway)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = Table::new("x", "demo", "a claim", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.takeaway("done".into());
        let s = t.to_string();
        assert!(s.contains("== x — demo"));
        assert!(s.contains("a claim"));
        assert!(s.contains("=> done"));
        assert_eq!(t.cell(0, "bb"), Some("2"));
        assert_eq!(t.cell_f64(0, "a"), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        let mut t = Table::new("x", "demo", "c", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}

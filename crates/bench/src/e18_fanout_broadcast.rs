//! E18 (extension): fanning one object out to many consumers.
//!
//! The paper's caching layer "can hide the location and movement of data"
//! (§2.1), and its Ray lineage cites Hoplite for efficient collectives.
//! Here, one producer's output feeds N consumers on distinct nodes. With
//! plasma-style fetch caching (every remote fetch leaves a copy at the
//! consumer), later consumers read the nearest replica and the fan-out
//! self-organizes into a distribution chain; without it, every consumer
//! hammers the producer's NIC serially.

use skadi::prelude::*;
use skadi::runtime::task::TaskSpec;
use skadi::runtime::{Cluster, Job, TaskId};

use crate::table::Table;

/// One producer of a `mb`-MiB object feeding `consumers` tasks.
pub fn fanout_job(consumers: u64, mb: u64) -> Job {
    let bytes = mb << 20;
    let mut tasks = vec![TaskSpec::new(0, 1_000.0, bytes).named("producer")];
    for i in 1..=consumers {
        tasks.push(
            TaskSpec::new(i, 500.0, 1 << 10)
                .after(TaskId(0), bytes)
                .named("consumer"),
        );
    }
    Job::new("fanout", tasks).expect("valid fanout")
}

/// Runs the fan-out with fetch-copy caching on or off. Placement is
/// deliberately locality-oblivious so consumers land on distinct nodes.
pub fn run_fanout(cache_copies: bool, consumers: u64, mb: u64) -> JobStats {
    let topo = presets::small_disagg_cluster();
    let mut cfg = RuntimeConfig::skadi_gen2().with_placement(PlacementPolicy::RoundRobin);
    cfg.cache_fetched_copies = cache_copies;
    let mut c = Cluster::new(&topo, cfg);
    c.run(&fanout_job(consumers, mb)).expect("runs")
}

/// Runs the full experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "e18_fanout",
        "Fan-out of one cached object to N consumers (fetch-copy ablation)",
        "The caching layer manages locations and replication (paper Figure 2 \
         note 5): caching fetched copies turns a hot-object fan-out into a \
         distribution chain instead of serializing on the producer's NIC \
         (the effect Hoplite-style collectives formalize).",
        &[
            "consumers",
            "fetch_copies",
            "makespan",
            "net_MB",
            "copies_in_cluster",
        ],
    );
    for consumers in [2u64, 4, 8] {
        for cache_copies in [false, true] {
            let s = run_fanout(cache_copies, consumers, 64);
            t.row(vec![
                consumers.to_string(),
                (if cache_copies { "on" } else { "off" }).to_string(),
                s.makespan.to_string(),
                format!("{:.1}", s.net.network_bytes() as f64 / 1e6),
                if cache_copies {
                    ">1".to_string()
                } else {
                    "1".to_string()
                },
            ]);
        }
    }
    let off = run_fanout(false, 8, 64);
    let on = run_fanout(true, 8, 64);
    t.takeaway(format!(
        "at 8 consumers x 64 MiB, fetch-copying finishes {:.2}x faster by \
         spreading transfer load off the producer's NIC",
        off.makespan.as_secs_f64() / on.makespan.as_secs_f64()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_copies_speed_up_wide_fanouts() {
        let off = run_fanout(false, 8, 64);
        let on = run_fanout(true, 8, 64);
        assert!(
            on.makespan < off.makespan,
            "on {} vs off {}",
            on.makespan,
            off.makespan
        );
    }

    #[test]
    fn narrow_fanouts_are_insensitive() {
        let off = run_fanout(false, 1, 64);
        let on = run_fanout(true, 1, 64);
        // One consumer: a single transfer either way.
        let ratio = off.makespan.as_secs_f64() / on.makespan.as_secs_f64();
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn both_modes_complete() {
        for mode in [false, true] {
            let s = run_fanout(mode, 8, 64);
            assert_eq!(s.abandoned, 0);
            assert_eq!(s.finished, 9);
        }
    }
}

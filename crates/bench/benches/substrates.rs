//! Substrate micro-benchmarks: the simulator's event queue, the network
//! pricer, erasure coding, and the end-to-end session path. These guard
//! the implementation itself (the virtual-time experiment results live in
//! the `experiments` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use skadi::dcsim::engine::EventQueue;
use skadi::dcsim::network::{LinkParams, Network};
use skadi::dcsim::time::{SimDuration, SimTime};
use skadi::dcsim::topology::presets;
use skadi::prelude::*;
use skadi::store::ec::{decode, encode, EcConfig};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let mut q: EventQueue<u64> = EventQueue::new();
                for i in 0..n {
                    q.schedule_at(SimTime::from_nanos((i * 7919) % 1_000_000), i);
                }
                let mut acc = 0u64;
                while let Some((_, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_network_pricing(c: &mut Criterion) {
    let topo = presets::small_disagg_cluster();
    let servers = topo.servers();
    c.bench_function("network_transfer_pricing", |b| {
        let mut net = Network::new(&topo, LinkParams::default());
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(1);
            net.transfer(t, servers[0], servers[5], 1 << 20)
        })
    });
}

fn bench_erasure_coding(c: &mut Criterion) {
    let mut g = c.benchmark_group("erasure_coding");
    for kb in [64usize, 1024] {
        let payload = vec![0xA5u8; kb * 1024];
        g.throughput(Throughput::Bytes((kb * 1024) as u64));
        g.bench_function(BenchmarkId::new("encode_rs42", kb), |b| {
            b.iter(|| encode(&payload, EcConfig::RS_4_2).expect("encodes"))
        });
        let enc = encode(&payload, EcConfig::RS_4_2).expect("encodes");
        let mut shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[4] = None;
        g.bench_function(BenchmarkId::new("decode_2_erasures", kb), |b| {
            b.iter(|| decode(&shards, enc.original_len, enc.config).expect("decodes"))
        });
    }
    g.finish();
}

fn bench_session_sql(c: &mut Criterion) {
    let session = Session::builder()
        .topology(presets::small_disagg_cluster())
        .catalog(Catalog::demo())
        .build();
    let mut g = c.benchmark_group("session");
    g.sample_size(20);
    g.bench_function("sql_end_to_end", |b| {
        b.iter(|| {
            session
                .sql("SELECT kind, sum(value) FROM events WHERE value > 0.5 GROUP BY kind")
                .expect("runs")
        })
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_event_queue,
    bench_network_pricing,
    bench_erasure_coding,
    bench_session_sql
);
criterion_main!(substrates);

//! E9 as a Criterion bench: shared columnar format (zero-copy IPC) vs
//! row-at-a-time marshalling — the real-wall-clock half of the
//! reproduction (the claim is literally about CPU cost per exchange).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use skadi::arrow::{compute, ipc, marshal};
use skadi_bench::e09_shared_format::sample_batch;

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    for rows in [1_000usize, 10_000, 100_000] {
        let batch = sample_batch(rows);
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_function(BenchmarkId::new("ipc", rows), |b| {
            b.iter(|| ipc::encode(&batch))
        });
        g.bench_function(BenchmarkId::new("marshal", rows), |b| {
            b.iter(|| marshal::to_rows(&batch))
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode");
    for rows in [1_000usize, 10_000, 100_000] {
        let batch = sample_batch(rows);
        let ipc_bytes = ipc::encode(&batch);
        let row_bytes = marshal::to_rows(&batch);
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_function(BenchmarkId::new("ipc", rows), |b| {
            b.iter(|| ipc::decode(ipc_bytes.clone()).expect("decodes"))
        });
        g.bench_function(BenchmarkId::new("marshal", rows), |b| {
            b.iter(|| marshal::from_rows(&row_bytes).expect("decodes"))
        });
    }
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    let batch = sample_batch(100_000);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("sum_i64", |b| {
        b.iter(|| compute::sum_i64(batch.column(0)).expect("sums"))
    });
    g.bench_function("cmp_scalar", |b| {
        b.iter(|| {
            compute::cmp_scalar(
                batch.column(1),
                compute::CmpOp::Gt,
                &skadi::arrow::array::Value::F64(25_000.0),
            )
            .expect("compares")
        })
    });
    g.bench_function("hash_partition_8", |b| {
        b.iter(|| compute::hash_partition(&batch, &[0], 8).expect("partitions"))
    });
    g.finish();
}

criterion_group!(formats, bench_encode, bench_decode, bench_kernels);
criterion_main!(formats);

//! Criterion benches over the figure/table experiments: each bench runs
//! one experiment's core simulation, so regressions in the runtime or
//! simulator show up as wall-clock changes here. One bench group per
//! paper artifact (Figure 1, Figure 2, Figure 3, Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skadi::prelude::*;
use skadi_bench::{
    e01_fig1_deployments, e03_fig2_cache_tiers, e05_fig3_generations, e06_table1_baselines,
    e07_fault_tolerance, e08_scheduling, e10_fusion, e12_gang, e14_pipeline_parallelism,
    e17_actor_serving, e18_fanout_broadcast, e19_consolidation,
};
use skadi_store::policy::EvictionPolicy;

fn bench_fig1_deployments(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_deployments");
    g.sample_size(10);
    for (name, cfg) in [
        ("serverful", RuntimeConfig::serverful()),
        ("stateless", RuntimeConfig::stateless_serverless()),
        ("skadi", RuntimeConfig::skadi_gen2()),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| e01_fig1_deployments::run_deployment(cfg.clone(), 1))
        });
    }
    g.finish();
}

fn bench_fig2_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_cache_tiers");
    g.sample_size(10);
    for ws in [8u64, 64] {
        g.bench_function(BenchmarkId::from_parameter(format!("ws{ws}")), |b| {
            b.iter(|| e03_fig2_cache_tiers::run_working_set(ws, 8 << 20, EvictionPolicy::Lru))
        });
    }
    g.finish();
}

fn bench_fig3_generations(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_generations");
    g.sample_size(20);
    for (name, cfg) in [
        ("gen1", RuntimeConfig::skadi_gen1()),
        ("gen2", RuntimeConfig::skadi_gen2()),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| e05_fig3_generations::jct(cfg.clone(), 10.0))
        });
    }
    g.finish();
}

fn bench_table1_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_baselines");
    g.sample_size(10);
    for b_row in e06_table1_baselines::baselines() {
        g.bench_function(BenchmarkId::from_parameter(b_row.name), move |b| {
            b.iter(|| e06_table1_baselines::run_baseline(&b_row))
        });
    }
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("e7_ft_lineage", |b| {
        b.iter(|| e07_fault_tolerance::run_ft(FtMode::Lineage))
    });
    g.bench_function("e8_sched_datacentric", |b| {
        b.iter(|| e08_scheduling::run_policy(PlacementPolicy::DataCentric, 32))
    });
    g.bench_function("e10_fusion_on", |b| {
        b.iter(|| e10_fusion::run_variant(true, 1 << 20, 64 << 20))
    });
    g.bench_function("e12_gang_on", |b| b.iter(|| e12_gang::run_gang(true, 4)));
    g.bench_function("e14_pipeline_futures", |b| {
        b.iter(|| e14_pipeline_parallelism::run_cfg(RuntimeConfig::skadi_gen2()))
    });
    g.bench_function("e17_serving_gen2", |b| {
        b.iter(|| e17_actor_serving::run_serving(RuntimeConfig::skadi_gen2(), 20.0))
    });
    g.bench_function("e18_fanout_copies", |b| {
        b.iter(|| e18_fanout_broadcast::run_fanout(true, 8, 64))
    });
    g.bench_function("e19_consolidation_shared", |b| {
        b.iter(|| e19_consolidation::compare(4))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1_deployments,
    bench_fig2_cache,
    bench_fig3_generations,
    bench_table1_baselines,
    bench_ablations
);
criterion_main!(figures);

//! # skadi-frontends — the declarative tier of the access layer
//!
//! "The input consists of several domain-specific declarations like SQL
//! statements and ML training. Skadi [...] invokes domain-specific
//! parsers to translate declarations onto a common graph called
//! FlowGraph" (§2.1). This crate provides those parsers/builders:
//!
//! - [`sql`]: a SQL subset (SELECT/JOIN/WHERE/GROUP BY/ORDER BY/LIMIT)
//!   with a lexer, recursive-descent parser, and a planner producing
//!   FlowGraph.
//! - [`mapreduce`]: classic map/shuffle/reduce jobs.
//! - [`graph`]: Pregel-style iterative vertex programs (supersteps are
//!   unrolled onto the DAG).
//! - [`ml`]: mini-batch training pipelines (forward, loss, backward,
//!   optimizer step; weights broadcast between steps).
//!
//! [`exec`] additionally provides a *local execution engine* that runs
//! parsed SQL against real in-memory record batches (via `skadi-arrow`),
//! validating the planner's semantics with actual answers.
//!
//! All four lower onto *one* [`FlowGraph`](skadi_flowgraph::FlowGraph),
//! which is the point: one execution graph hosts data-parallel,
//! task-parallel, and iterative patterns at once.

pub mod catalog;
pub mod exec;
pub mod graph;
pub mod mapreduce;
pub mod ml;
pub mod shard;
pub mod sql;
pub mod streaming;

pub use catalog::{Catalog, TableDef};
pub use sql::plan_sql;

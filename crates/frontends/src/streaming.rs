//! Streaming frontend (micro-batch, D-Streams style).
//!
//! Streaming is one of the execution models the paper's runtime must host
//! (§1: "BSP, task-parallel, streaming, graph, ML"). Following Discretized
//! Streams, a stream is a sequence of micro-batches; each batch flows
//! through a per-batch transform, and a *stateful* windowed aggregation
//! chains batch to batch (state carried on a FlowGraph edge, the same way
//! the ML frontend threads weights).

use skadi_flowgraph::{FlowGraph, GraphError, VertexId};

/// A declared micro-batch streaming job.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamJob {
    /// Stream source name.
    pub source: String,
    /// Events per micro-batch.
    pub batch_rows: u64,
    /// Bytes per micro-batch.
    pub batch_bytes: u64,
    /// Key for the windowed aggregation.
    pub key: String,
    /// Micro-batches to unroll.
    pub batches: u32,
    /// Fraction of events surviving the per-batch transform.
    pub transform_selectivity: f64,
}

impl StreamJob {
    /// A job over `source` keyed by `key`.
    pub fn new(source: &str, batch_rows: u64, batch_bytes: u64, key: &str) -> Self {
        StreamJob {
            source: source.to_string(),
            batch_rows,
            batch_bytes,
            key: key.to_string(),
            batches: 4,
            transform_selectivity: 0.5,
        }
    }

    /// Number of micro-batches to unroll.
    pub fn batches(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one micro-batch");
        self.batches = n;
        self
    }

    /// Per-batch transform selectivity.
    pub fn transform_selectivity(mut self, s: f64) -> Self {
        assert!(s > 0.0 && s <= 1.0, "selectivity must be in (0, 1]");
        self.transform_selectivity = s;
        self
    }

    /// Builds the FlowGraph, returning `(graph, sink)`.
    pub fn to_flowgraph(&self) -> Result<(FlowGraph, VertexId), GraphError> {
        let mut g = FlowGraph::new();
        let t_rows = ((self.batch_rows as f64) * self.transform_selectivity).max(1.0) as u64;
        let t_bytes = ((self.batch_bytes as f64) * self.transform_selectivity).max(1.0) as u64;
        // Window state is small relative to the batch.
        let state_bytes = (t_bytes / 16).max(64);

        let mut window_state: Option<VertexId> = None;
        for b in 0..self.batches {
            let src = g.add_source(
                &format!("{}-batch-{b}", self.source),
                self.batch_rows,
                self.batch_bytes,
            );
            // Per-batch stateless transform (fusable per-row work).
            let transform = g.add_ir_op("rel.filter", self.batch_rows, t_bytes);
            g.connect(src, transform)?;
            // Stateful windowed aggregation: shuffled by key, fed by the
            // previous window's state.
            let window = g.add_ir_op("rel.aggregate", t_rows, state_bytes);
            g.connect_keyed(transform, window, &self.key)?;
            if let Some(prev) = window_state {
                g.connect_keyed(prev, window, &self.key)?;
            }
            window_state = Some(window);
        }
        let sink = g.add_sink(&format!("{}-windows", self.source));
        g.connect(window_state.expect("at least one batch"), sink)?;
        g.validate()?;
        Ok((g, sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_flowgraph::EdgeKind;

    #[test]
    fn unrolls_micro_batches() {
        let (g, _) = StreamJob::new("clicks", 10_000, 1 << 20, "user")
            .batches(5)
            .to_flowgraph()
            .unwrap();
        // 5 x (source + transform + window) + sink.
        assert_eq!(g.len(), 16);
        let windows = g
            .vertices()
            .iter()
            .filter(|v| v.body.name() == "rel.aggregate")
            .count();
        assert_eq!(windows, 5);
    }

    #[test]
    fn window_state_chains_batches() {
        let (g, sink) = StreamJob::new("clicks", 100, 1 << 10, "user")
            .batches(3)
            .to_flowgraph()
            .unwrap();
        // Each window after the first has two keyed inputs: the batch
        // transform and the previous window.
        let windows: Vec<VertexId> = g
            .vertices()
            .iter()
            .filter(|v| v.body.name() == "rel.aggregate")
            .map(|v| v.id)
            .collect();
        assert_eq!(g.inputs_of(windows[0]).len(), 1);
        assert_eq!(g.inputs_of(windows[1]).len(), 2);
        assert_eq!(g.inputs_of(windows[2]).len(), 2);
        // Only the last window reaches the sink.
        assert_eq!(g.inputs_of(sink), vec![windows[2]]);
    }

    #[test]
    fn edges_keyed_on_stream_key() {
        let (g, _) = StreamJob::new("clicks", 100, 1 << 10, "user")
            .batches(2)
            .to_flowgraph()
            .unwrap();
        let keyed = g
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Keyed("user".into()))
            .count();
        // 2 transform->window + 1 window->window.
        assert_eq!(keyed, 3);
    }

    #[test]
    fn selectivity_shrinks_transform_output() {
        let (g, _) = StreamJob::new("s", 1000, 1 << 20, "k")
            .transform_selectivity(0.1)
            .to_flowgraph()
            .unwrap();
        let t = g
            .vertices()
            .iter()
            .find(|v| v.body.name() == "rel.filter")
            .unwrap();
        assert_eq!(t.rows_hint, 1000);
        assert_eq!(t.output_bytes_hint, (1u64 << 20) / 10);
    }

    #[test]
    #[should_panic(expected = "at least one micro-batch")]
    fn zero_batches_panics() {
        let _ = StreamJob::new("s", 1, 1, "k").batches(0);
    }
}

//! Graph-processing frontend (Pregel-style vertex programs).
//!
//! Iterative graph computation (PageRank, SSSP, connected components) is
//! expressed as supersteps; each superstep gathers messages shuffled by
//! destination vertex, applies the vertex program, and scatters new
//! messages. FlowGraph is a DAG, so the supersteps are *unrolled* — the
//! paper notes that whether to finalize such structure at compile time or
//! reshape at runtime is an open question (§2.2); unrolling is the
//! compile-time answer.

use skadi_flowgraph::{FlowGraph, GraphError, VertexId};

/// A declared iterative vertex program.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexProgram {
    /// Graph dataset name.
    pub graph: String,
    /// Vertex count.
    pub vertices: u64,
    /// Edge count.
    pub edges: u64,
    /// The per-superstep compute op name (for diagnostics).
    pub program: String,
    /// Number of supersteps to unroll.
    pub supersteps: u32,
}

impl VertexProgram {
    /// PageRank over the named graph.
    pub fn pagerank(graph: &str, vertices: u64, edges: u64, iterations: u32) -> Self {
        VertexProgram {
            graph: graph.to_string(),
            vertices,
            edges,
            program: "pagerank".to_string(),
            supersteps: iterations,
        }
    }

    /// Estimated bytes of one superstep's message volume.
    fn message_bytes(&self) -> u64 {
        // One 16-byte message per edge.
        self.edges.saturating_mul(16).max(64)
    }

    /// Builds the unrolled FlowGraph, returning `(graph, sink)`.
    pub fn to_flowgraph(&self) -> Result<(FlowGraph, VertexId), GraphError> {
        assert!(self.supersteps > 0, "need at least one superstep");
        let mut g = FlowGraph::new();
        let topo_bytes = self.edges.saturating_mul(8).max(64);
        let src = g.add_source(&self.graph, self.vertices, topo_bytes);
        let msg_bytes = self.message_bytes();
        let mut head = src;
        for _ in 0..self.supersteps {
            // Gather + apply: aggregate messages by destination vertex.
            let apply = g.add_ir_op("rel.aggregate", self.edges, msg_bytes);
            g.connect_keyed(head, apply, "dst")?;
            head = apply;
        }
        let sink = g.add_sink(&format!("{}-{}", self.graph, self.program));
        g.connect(head, sink)?;
        g.validate()?;
        Ok((g, sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_flowgraph::EdgeKind;

    #[test]
    fn unrolls_supersteps() {
        let (g, _) = VertexProgram::pagerank("web", 1_000_000, 10_000_000, 5)
            .to_flowgraph()
            .unwrap();
        // source + 5 supersteps + sink.
        assert_eq!(g.len(), 7);
        let aggs = g
            .vertices()
            .iter()
            .filter(|v| v.body.name() == "rel.aggregate")
            .count();
        assert_eq!(aggs, 5);
    }

    #[test]
    fn supersteps_form_a_keyed_chain() {
        let (g, sink) = VertexProgram::pagerank("web", 100, 1000, 3)
            .to_flowgraph()
            .unwrap();
        // Every non-sink edge is keyed on dst.
        let keyed = g
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Keyed("dst".into()))
            .count();
        assert_eq!(keyed, 3);
        // The chain ends at the sink.
        let last = g.inputs_of(sink)[0];
        assert_eq!(g.vertex(last).body.name(), "rel.aggregate");
    }

    #[test]
    fn message_volume_scales_with_edges() {
        let small = VertexProgram::pagerank("a", 10, 100, 1);
        let big = VertexProgram::pagerank("b", 10, 100_000, 1);
        let (gs, _) = small.to_flowgraph().unwrap();
        let (gb, _) = big.to_flowgraph().unwrap();
        let s = gs
            .vertices()
            .iter()
            .find(|v| v.body.name() == "rel.aggregate")
            .unwrap();
        let b = gb
            .vertices()
            .iter()
            .find(|v| v.body.name() == "rel.aggregate")
            .unwrap();
        assert!(b.output_bytes_hint > s.output_bytes_hint * 100);
    }

    #[test]
    #[should_panic(expected = "at least one superstep")]
    fn zero_supersteps_panics() {
        let _ = VertexProgram::pagerank("x", 1, 1, 0).to_flowgraph();
    }
}

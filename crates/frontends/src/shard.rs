//! Single-shard execution of physical-graph operators.
//!
//! The distributed runtime executes a physical graph one task per shard;
//! each task's compute is described by an [`ExecOp`] attached during SQL
//! planning. This module interprets those descriptors over real
//! [`RecordBatch`]es, reusing the local engine's vectorized kernels
//! (`exec::join_rows`, `exec::aggregate_spec`, ...), so the distributed
//! data plane and the single-process reference engine share one code
//! path per operator.
//!
//! # Determinism and byte-identity
//!
//! The contract is that collecting a distributed run yields a batch
//! **byte-identical** to [`MemDb`](crate::exec::MemDb) at any
//! parallelism. Two hidden columns make that possible:
//!
//! - `__rid` ([`RID`]): a row id threaded from the scans. Shard `i` of an
//!   `n`-row table scans the contiguous row range `[i*n/N, (i+1)*n/N)`,
//!   so a row's id is its position in the full table; a join emits
//!   `left_rid * right_table_rows + right_rid`, which reproduces the
//!   reference engine's probe-order output as an ascending sort key.
//! - `__gkey` ([`GKEY`]): the rendered group key of an aggregate output
//!   row. The reference engine orders groups by rendered key; sorting
//!   shard outputs by `__gkey` merges hash-partitioned groups back into
//!   that order (with min-`__rid` kept as a deterministic tiebreak).
//!
//! Every shard first puts its gathered input into **canonical order**
//! (stable sort by `__rid`, then by `__gkey` — so the group key is the
//! primary key where present). That makes per-group fold order equal to
//! the reference engine's row order bit-for-bit (floating-point sums
//! included), no matter how batches were partitioned or which failed
//! task recomputed them. The sink strips both hidden columns.
//!
//! # Shuffle-hash compatibility
//!
//! [`partition_by_key`] buckets rows by `hash_key_column(col) % parts` —
//! the same FNV-1a-over-key-bytes scheme the physical graph's
//! [`Partitioner::Hash`](skadi_flowgraph::Partitioner) prices, and the
//! same hash the join/aggregate kernels probe with. Edges into a join
//! pass `coerce = true` so mixed `Int64`/`Float64` key pairs co-locate
//! by their `f64` bit pattern.

use std::collections::BTreeMap;

use skadi_arrow::array::Array;
use skadi_arrow::batch::RecordBatch;
use skadi_arrow::compute;
use skadi_arrow::datatype::DataType;
use skadi_arrow::schema::{Field, Schema};
use skadi_flowgraph::{ExecAgg, ExecCompare, ExecLiteral, ExecOp};

use crate::exec::{self, sort_by, wrap};
use crate::sql::ast::{Comparison, Literal};
use crate::sql::SqlError;

/// Hidden row-id column threaded from scans through joins.
pub const RID: &str = "__rid";
/// Hidden rendered-group-key column emitted by aggregate shards.
pub const GKEY: &str = "__gkey";

/// True if `name` is reserved for the data plane's hidden columns.
pub fn is_hidden(name: &str) -> bool {
    name == RID || name == GKEY
}

/// Per-shard kernel measurements from one [`execute_shard_stats`] call:
/// hash-table counters from join/group-by kernels plus filter-step row
/// counts (for selectivity). Chains with several filter steps accumulate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardExecStats {
    /// Join / group-by hash-table counters.
    pub kernel: exec::KernelStats,
    /// Rows entering filter steps.
    pub filter_rows_in: u64,
    /// Rows surviving filter steps.
    pub filter_rows_out: u64,
    /// Joins that built their hash table on the nominal probe side
    /// because the adaptive executor observed the build input to be the
    /// larger one. Zero unless adaptive execution is on.
    pub build_swaps: u64,
}

impl ShardExecStats {
    /// Fraction of rows surviving the shard's filter steps, if any ran
    /// over a non-empty input.
    pub fn selectivity(&self) -> Option<f64> {
        (self.filter_rows_in > 0).then(|| self.filter_rows_out as f64 / self.filter_rows_in as f64)
    }
}

/// Executes one shard's operator chain. `port0` holds the (probe-side)
/// input batches in producer shard order, `port1` the build side of a
/// join; scans ignore both and read `tables` directly.
pub fn execute_shard(
    op: &ExecOp,
    tables: &BTreeMap<String, RecordBatch>,
    shard: u32,
    shards: u32,
    port0: &[RecordBatch],
    port1: &[RecordBatch],
) -> Result<RecordBatch, SqlError> {
    execute_shard_stats(
        op,
        tables,
        shard,
        shards,
        port0,
        port1,
        &mut ShardExecStats::default(),
    )
}

/// [`execute_shard`] with kernel measurements accumulated into `stats`.
#[allow(clippy::too_many_arguments)]
pub fn execute_shard_stats(
    op: &ExecOp,
    tables: &BTreeMap<String, RecordBatch>,
    shard: u32,
    shards: u32,
    port0: &[RecordBatch],
    port1: &[RecordBatch],
    stats: &mut ShardExecStats,
) -> Result<RecordBatch, SqlError> {
    execute_shard_adaptive(op, tables, shard, shards, port0, port1, false, stats)
}

/// When the nominal build input of an adaptive join holds more than this
/// multiple of the probe input's rows, the join builds on the probe side
/// instead. A pure function of gathered row counts — never of timing.
pub const SWAP_BUILD_MULTIPLE: usize = 2;

/// [`execute_shard_stats`] with adaptive execution: when `adaptive` is
/// true, a join whose gathered build side (`port1`) exceeds
/// [`SWAP_BUILD_MULTIPLE`]× the probe side builds its hash table on the
/// smaller side and restores probe order afterwards, so the output stays
/// byte-identical to the static plan (see [`join_shard`]).
#[allow(clippy::too_many_arguments)]
pub fn execute_shard_adaptive(
    op: &ExecOp,
    tables: &BTreeMap<String, RecordBatch>,
    shard: u32,
    shards: u32,
    port0: &[RecordBatch],
    port1: &[RecordBatch],
    adaptive: bool,
    stats: &mut ShardExecStats,
) -> Result<RecordBatch, SqlError> {
    let mut current: Option<RecordBatch> = None;
    for step in op.clone().flatten() {
        let out = match step {
            ExecOp::Scan { table } => {
                let t = tables
                    .get(&table)
                    .ok_or_else(|| SqlError::Plan(format!("unknown table {table:?}")))?;
                scan_shard(t, shard, shards)?
            }
            ExecOp::Join {
                left_key,
                right_key,
                right_rows,
            } => {
                if current.is_some() {
                    return Err(SqlError::Plan("join cannot be mid-chain".into()));
                }
                join_shard(
                    port0, port1, &left_key, &right_key, right_rows, adaptive, stats,
                )?
            }
            other => {
                let input = match current.take() {
                    Some(b) => b,
                    None => gather(port0)?,
                };
                match other {
                    ExecOp::Filter { conjuncts } => {
                        stats.filter_rows_in += input.num_rows() as u64;
                        let out = filter_shard(&input, &conjuncts)?;
                        stats.filter_rows_out += out.num_rows() as u64;
                        out
                    }
                    ExecOp::Project { columns } => project_shard(&input, &columns)?,
                    ExecOp::Aggregate { group_by, aggs } => {
                        aggregate_shard(&input, &group_by, &aggs, &mut stats.kernel)?
                    }
                    ExecOp::Sort { column, descending } => sort_by(&input, &column, descending)?,
                    ExecOp::Limit { n, order } => {
                        let cur = match order {
                            Some((col, desc)) => sort_by(&input, &col, desc)?,
                            None => input,
                        };
                        truncate(&cur, n as usize)?
                    }
                    ExecOp::Collect { order_by, limit } => {
                        let mut cur = input;
                        if let Some((col, desc)) = order_by {
                            cur = sort_by(&cur, &col, desc)?;
                        }
                        if let Some(n) = limit {
                            cur = truncate(&cur, n as usize)?;
                        }
                        // Output boundary: deliver plain columns so the
                        // result matches the reference engine regardless
                        // of which columns ran dictionary-encoded.
                        strip_hidden(&cur)?.dict_decoded()
                    }
                    ExecOp::Scan { .. } | ExecOp::Join { .. } | ExecOp::Fused(_) => {
                        unreachable!("handled above / flattened")
                    }
                }
            }
        };
        current = Some(out);
    }
    current.ok_or_else(|| SqlError::Plan("empty exec descriptor".into()))
}

/// Splits `batch` into hash partitions on `key`, preserving row order
/// within each partition. The partition index is
/// `hash_key_column(row) % parts` — byte-compatible with the physical
/// graph's FNV-1a `Partitioner::Hash` and with the hash the join and
/// group-by kernels bucket on. `coerce` hashes `Int64` keys through
/// their `f64` bit pattern (used for edges into joins, where a mixed
/// `Int64`/`Float64` key pair must co-locate).
pub fn partition_by_key(
    batch: &RecordBatch,
    key: &str,
    parts: usize,
    coerce: bool,
) -> Result<Vec<RecordBatch>, SqlError> {
    let col = batch.column_by_name(key).map_err(wrap)?;
    let hashes = compute::hash_key_column(col, coerce);
    let parts = parts.max(1);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for (r, &h) in hashes.iter().enumerate() {
        buckets[(h % parts as u64) as usize].push(r);
    }
    buckets
        .iter()
        .map(|idx| compute::take_indices(batch, idx).map_err(wrap))
        .collect()
}

/// Splits `batch` into `parts` contiguous even slices (scatter edges).
pub fn split_even(batch: &RecordBatch, parts: usize) -> Result<Vec<RecordBatch>, SqlError> {
    let n = batch.num_rows();
    let parts = parts.max(1);
    (0..parts)
        .map(|i| {
            let lo = i * n / parts;
            let hi = (i + 1) * n / parts;
            let idx: Vec<usize> = (lo..hi).collect();
            compute::take_indices(batch, &idx).map_err(wrap)
        })
        .collect()
}

/// Concatenates input batches (producer shard order) and puts the result
/// into canonical order.
fn gather(parts: &[RecordBatch]) -> Result<RecordBatch, SqlError> {
    if parts.is_empty() {
        return Err(SqlError::Plan("operator shard received no input".into()));
    }
    let all = RecordBatch::concat(parts).map_err(wrap)?;
    canonicalize(&all)
}

/// Canonical order: stable sort by `__rid`, then (stable) by `__gkey`,
/// making the group key primary where both exist. Batches with neither
/// column pass through unchanged.
pub fn canonicalize(batch: &RecordBatch) -> Result<RecordBatch, SqlError> {
    let mut out = batch.clone();
    if out.schema().index_of(RID).is_ok() {
        out = sort_by(&out, RID, false)?;
    }
    if out.schema().index_of(GKEY).is_ok() {
        out = sort_by(&out, GKEY, false)?;
    }
    Ok(out)
}

/// Drops the hidden columns (the sink does this before delivering).
fn strip_hidden(batch: &RecordBatch) -> Result<RecordBatch, SqlError> {
    let keep: Vec<&str> = batch
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .filter(|n| !is_hidden(n))
        .collect();
    batch.project(&keep).map_err(wrap)
}

fn truncate(batch: &RecordBatch, n: usize) -> Result<RecordBatch, SqlError> {
    let keep: Vec<usize> = (0..n.min(batch.num_rows())).collect();
    compute::take_indices(batch, &keep).map_err(wrap)
}

fn append_column(batch: &RecordBatch, field: Field, col: Array) -> Result<RecordBatch, SqlError> {
    let mut fields = batch.schema().fields().to_vec();
    fields.push(field);
    let mut cols = batch.columns().to_vec();
    cols.push(col);
    RecordBatch::try_new(Schema::new(fields), cols).map_err(wrap)
}

/// Shard `shard` of a base-table scan: the contiguous row range
/// `[shard*n/shards, (shard+1)*n/shards)` plus its `__rid` column.
///
/// Eligible `Utf8` columns dictionary-encode here, at the data plane's
/// entry point, so every downstream shuffle ships keys instead of string
/// bytes. The encode decision is made on the *whole table* (not the
/// slice) so every shard agrees on the column type; slices then share
/// the table-level dictionary via O(1) clones. The Collect sink decodes,
/// keeping results byte-identical to the plain reference engine.
fn scan_shard(table: &RecordBatch, shard: u32, shards: u32) -> Result<RecordBatch, SqlError> {
    let table = table.dict_encoded();
    let n = table.num_rows() as u64;
    let shards = shards.max(1) as u64;
    let lo = (shard as u64 * n / shards) as usize;
    let hi = ((shard as u64 + 1) * n / shards) as usize;
    let idx: Vec<usize> = (lo..hi).collect();
    let slice = compute::take_indices(&table, &idx).map_err(wrap)?;
    let rid = Array::from_i64((lo..hi).map(|r| r as i64).collect());
    append_column(&slice, Field::new(RID, DataType::Int64, true), rid)
}

fn to_comparisons(conjuncts: &[ExecCompare]) -> Vec<Comparison> {
    conjuncts
        .iter()
        .map(|c| Comparison {
            column: c.column.clone(),
            op: c.op.clone(),
            value: match &c.value {
                ExecLiteral::Int(v) => Literal::Int(*v),
                ExecLiteral::Float(v) => Literal::Float(*v),
                ExecLiteral::Str(s) => Literal::Str(s.clone()),
            },
        })
        .collect()
}

fn filter_shard(input: &RecordBatch, conjuncts: &[ExecCompare]) -> Result<RecordBatch, SqlError> {
    let cs = to_comparisons(conjuncts);
    let refs: Vec<&Comparison> = cs.iter().collect();
    exec::apply_conjuncts(input, &refs)
}

/// Projection keeps the hidden columns alongside the requested ones.
fn project_shard(input: &RecordBatch, columns: &[String]) -> Result<RecordBatch, SqlError> {
    let mut keep: Vec<&str> = columns.iter().map(String::as_str).collect();
    for h in [RID, GKEY] {
        if input.schema().index_of(h).is_ok() && !keep.contains(&h) {
            keep.push(h);
        }
    }
    input.project(&keep).map_err(wrap)
}

fn rid_values(batch: &RecordBatch) -> Result<Vec<i64>, SqlError> {
    let col = batch.column_by_name(RID).map_err(wrap)?;
    let a = col.as_i64().map_err(wrap)?;
    Ok((0..a.len()).map(|r| a.get(r).unwrap_or(0)).collect())
}

/// One shard of a hash join. Both sides are gathered into canonical
/// (row-id) order so the probe order matches the reference engine's,
/// restricted to the keys hashed to this shard. The output row id is
/// `left_rid * right_table_rows + right_rid`, which orders join outputs
/// exactly like the reference engine's probe-order emission.
///
/// # Adaptive build-side swap
///
/// With `adaptive` on and the gathered build side more than
/// [`SWAP_BUILD_MULTIPLE`]× larger than the probe side, the kernel runs
/// with the roles reversed (build on the smaller left side, probe the
/// right) and the match pairs are transposed back. The inner-join pair
/// *set* is symmetric, and the static path's emission order — probe rows
/// ascending, build chains ascending — is exactly ascending row-id order
/// (both inputs are rid-canonical and the rid encoding is lexicographic
/// in `(left_rid, right_rid)`), so a stable sort of the swapped output by
/// row id reproduces the static output byte for byte.
fn join_shard(
    port0: &[RecordBatch],
    port1: &[RecordBatch],
    left_key: &str,
    right_key: &str,
    right_rows: u64,
    adaptive: bool,
    stats: &mut ShardExecStats,
) -> Result<RecordBatch, SqlError> {
    let left = gather(port0)?;
    let right = gather(port1)?;
    let l_rid = rid_values(&left)?;
    let r_rid = rid_values(&right)?;
    let left_vis = strip_hidden(&left)?;
    let right_vis = strip_hidden(&right)?;
    let swap = adaptive && right_vis.num_rows() > SWAP_BUILD_MULTIPLE * left_vis.num_rows();
    let (lrows, rrows) = if swap {
        stats.build_swaps += 1;
        let (probe, build) = exec::join_rows(
            &right_vis,
            &left_vis,
            right_key,
            left_key,
            None,
            &mut stats.kernel,
        )?;
        (build, probe)
    } else {
        exec::join_rows(
            &left_vis,
            &right_vis,
            left_key,
            right_key,
            None,
            &mut stats.kernel,
        )?
    };
    let mut out = exec::assemble_join(&left_vis, &right_vis, right_key, &lrows, &rrows)?;
    let stride = (right_rows as i64).max(1);
    let mut rid: Vec<i64> = lrows
        .iter()
        .zip(&rrows)
        .map(|(&l, &r)| l_rid[l].wrapping_mul(stride).wrapping_add(r_rid[r]))
        .collect();
    if swap {
        let mut order: Vec<usize> = (0..rid.len()).collect();
        order.sort_by_key(|&i| rid[i]);
        out = compute::take_indices(&out, &order).map_err(wrap)?;
        rid = order.iter().map(|&i| rid[i]).collect();
    }
    append_column(
        &out,
        Field::new(RID, DataType::Int64, true),
        Array::from_i64(rid),
    )
}

/// One shard of an aggregation. The gathered input is in row-id order,
/// so per-group folds run in exactly the reference engine's row order.
/// Two extra output columns ride along: `min(__rid)` per group (a
/// deterministic tiebreak, and the canonical secondary sort key) and the
/// rendered `__gkey` (the canonical primary sort key — the reference
/// engine's group output order).
fn aggregate_shard(
    input: &RecordBatch,
    group_by: &[String],
    aggs: &[ExecAgg],
    kernel: &mut exec::KernelStats,
) -> Result<RecordBatch, SqlError> {
    let mut spec: Vec<(String, String, String)> = aggs
        .iter()
        .map(|a| (a.func.clone(), a.column.clone(), a.name.clone()))
        .collect();
    spec.push(("min".into(), RID.into(), RID.into()));
    let out = exec::aggregate_spec(group_by, &spec, input, kernel)?;
    let mut keys: Vec<String> = Vec::with_capacity(out.num_rows());
    for r in 0..out.num_rows() {
        let parts: Vec<String> = group_by
            .iter()
            .map(|g| {
                out.column_by_name(g)
                    .map(|c| c.value_at(r).to_string())
                    .map_err(wrap)
            })
            .collect::<Result<_, _>>()?;
        keys.push(parts.join("\u{1}"));
    }
    let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
    append_column(
        &out,
        Field::new(GKEY, DataType::Utf8, false),
        Array::from_utf8(&refs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use skadi_arrow::array::Value;
    use skadi_flowgraph::Partitioner;

    fn table() -> RecordBatch {
        RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, false),
                Field::new("v", DataType::Float64, true),
            ]),
            vec![
                Array::from_i64(vec![3, 1, 2, 1, 3, 2, 1, 4]),
                Array::from_opt_f64(vec![
                    Some(1.0),
                    Some(2.0),
                    None,
                    Some(4.0),
                    Some(5.0),
                    Some(6.0),
                    Some(7.0),
                    Some(8.0),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn scan_shards_cover_table_contiguously() {
        let t = table();
        let tables = BTreeMap::from([("t".to_string(), t.clone())]);
        let op = ExecOp::Scan { table: "t".into() };
        let mut total = 0;
        let mut next_rid = 0i64;
        for s in 0..3 {
            let out = execute_shard(&op, &tables, s, 3, &[], &[]).unwrap();
            total += out.num_rows();
            let rid = out.column_by_name(RID).unwrap();
            for r in 0..out.num_rows() {
                assert_eq!(rid.value_at(r), Value::I64(next_rid));
                next_rid += 1;
            }
        }
        assert_eq!(total, t.num_rows());
    }

    #[test]
    fn partition_matches_physical_partitioner_on_int_keys() {
        // The shuffle the physical graph prices (FNV-1a over hash_row key
        // bytes) and the shuffle the data plane performs must agree.
        let t = table();
        let parts = 4;
        let split = partition_by_key(&t, "k", parts, false).unwrap();
        let p = Partitioner::Hash;
        let keys = t.column(0).as_i64().unwrap();
        let mut want = vec![0usize; parts];
        for r in 0..t.num_rows() {
            // hash_row's Int64 key-byte encoding.
            let key = keys.get(r).unwrap().to_le_bytes();
            want[p.assign(&key, r as u64, parts as u32) as usize] += 1;
        }
        let got: Vec<usize> = split.iter().map(|b| b.num_rows()).collect();
        assert_eq!(got, want);
        assert_eq!(got.iter().sum::<usize>(), t.num_rows());
    }

    #[test]
    fn canonicalize_restores_row_order_after_shuffle() {
        let t = table();
        let tables = BTreeMap::from([("t".to_string(), t.clone())]);
        let op = ExecOp::Scan { table: "t".into() };
        let a = execute_shard(&op, &tables, 0, 2, &[], &[]).unwrap();
        let b = execute_shard(&op, &tables, 1, 2, &[], &[]).unwrap();
        // Re-partition by key, then gather everything back: canonical
        // order equals the original scan order.
        let mut parts = partition_by_key(&a, "k", 2, false).unwrap();
        parts.extend(partition_by_key(&b, "k", 2, false).unwrap());
        let back = gather(&parts).unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            assert_eq!(
                back.column_by_name(RID).unwrap().value_at(r),
                Value::I64(r as i64)
            );
            assert_eq!(
                back.column_by_name("k").unwrap().value_at(r),
                t.column(0).value_at(r)
            );
        }
    }

    #[test]
    fn adaptive_join_swap_is_byte_identical() {
        // Small probe side, large skewed build side (with null keys):
        // adaptive execution builds on the probe side, yet every shard
        // must emit bytes identical to the static plan.
        let left = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, true),
                Field::new("a", DataType::Int64, false),
            ]),
            vec![
                Array::from_opt_i64(vec![Some(1), Some(2), None, Some(3)]),
                Array::from_i64(vec![10, 20, 25, 30]),
            ],
        )
        .unwrap();
        let rkeys: Vec<Option<i64>> = (0..24i64)
            .map(|i| if i % 7 == 0 { None } else { Some(i % 3 + 1) })
            .collect();
        let right = RecordBatch::try_new(
            Schema::new(vec![
                Field::new("k", DataType::Int64, true),
                Field::new("b", DataType::Int64, false),
            ]),
            vec![
                Array::from_opt_i64(rkeys),
                Array::from_i64((0..24i64).map(|i| i * 100).collect()),
            ],
        )
        .unwrap();
        let tables = BTreeMap::from([("l".to_string(), left), ("r".to_string(), right)]);
        let lscan =
            execute_shard(&ExecOp::Scan { table: "l".into() }, &tables, 0, 1, &[], &[]).unwrap();
        let rscan =
            execute_shard(&ExecOp::Scan { table: "r".into() }, &tables, 0, 1, &[], &[]).unwrap();
        let op = ExecOp::Join {
            left_key: "k".into(),
            right_key: "k".into(),
            right_rows: 24,
        };
        let mut swaps = 0;
        let mut matched = 0;
        for shard in 0..2u32 {
            let p0 = partition_by_key(&lscan, "k", 2, true).unwrap();
            let p1 = partition_by_key(&rscan, "k", 2, true).unwrap();
            let port0 = vec![p0[shard as usize].clone()];
            let port1 = vec![p1[shard as usize].clone()];
            let mut st = ShardExecStats::default();
            let fixed =
                execute_shard_adaptive(&op, &tables, shard, 2, &port0, &port1, false, &mut st)
                    .unwrap();
            assert_eq!(st.build_swaps, 0);
            let mut ad = ShardExecStats::default();
            let swapped =
                execute_shard_adaptive(&op, &tables, shard, 2, &port0, &port1, true, &mut ad)
                    .unwrap();
            assert_eq!(fixed, swapped);
            swaps += ad.build_swaps;
            matched += fixed.num_rows();
        }
        assert!(swaps >= 1, "the skewed shard should have swapped");
        // Null keys never match; every non-null left key matches 7 or 8
        // duplicated right rows.
        assert!(matched > 0);
    }

    #[test]
    fn split_even_is_contiguous_and_total() {
        let t = table();
        let parts = split_even(&t, 3).unwrap();
        assert_eq!(parts.iter().map(|b| b.num_rows()).sum::<usize>(), 8);
        assert_eq!(parts[0].column(0).value_at(0), Value::I64(3));
    }
}
